"""Benchmark configuration.

Every benchmark regenerates one figure or table of the paper via the
corresponding experiment runner and attaches the produced rows to the
benchmark's ``extra_info`` so the numbers appear in the pytest-benchmark
report (``pytest benchmarks/ --benchmark-only``).

The experiment runners are deterministic but expensive, so each benchmark
uses ``benchmark.pedantic`` with a single round/iteration: the timing is a
by-product; the scientific output is the row data.
"""

from __future__ import annotations

import json

import pytest


@pytest.fixture
def run_and_record(benchmark):
    """Fixture: run an experiment once under the benchmark and record its rows."""

    def _run(runner, **kwargs):
        result = benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)
        benchmark.extra_info["experiment"] = result.name
        benchmark.extra_info["metadata"] = json.loads(json.dumps(result.metadata, default=str))
        benchmark.extra_info["rows"] = json.loads(json.dumps(result.rows, default=float))
        return result

    return _run
