"""Perf-trajectory exporter: measure the hot paths, write a JSON baseline.

The repo's performance work (PR 1: centralized round engine, PR 4:
distributed round engine, PR 6: sparse engine tier) needs a *recorded*
trajectory to be measured against, so this runner times the canonical
workloads and writes them to a committed JSON baseline.

``--suite pr4`` (default, writes ``BENCH_PR4.json``):

* centralized round time (batched engine), N in {50, 200, 500};
* distributed round time (legacy and batched backends), N in
  {50, 200, 500}, uniform random deployment;
* the N=200 k=2 corner-cluster *distributed deployment transient*
  (6 rounds) under both backends, plus the batched-over-legacy speedup
  — the acceptance workload of the round-level backend;
* wall-clock of a small serial scenario sweep (cold cache).

``--suite sparse`` (writes ``BENCH_PR7.json``):

* sparse centralized and distributed round times at N in
  {2000, 10000, 50000} with density-scaled transmission range
  (``sqrt(12 * area / (pi * N))`` — constant expected ring population,
  the regime where the N x N wall actually bites);
* the batched backends at N=2000 for the speedup rows (batched cannot
  reach N=50000: the dense pairwise matrices alone would need tens of
  gigabytes — which is the point of the tier);
* the distributed scaling exponent ``log(t_50k / t_10k) / log(5)``,
  committed as evidence of sub-quadratic scaling.

``--suite pr9`` (writes ``BENCH_PR9.json``):

* the sparse centralized and distributed round times at N in
  {2000, 10000}, recorded for every *available* kernel tier (numpy
  always; jit when numba imports) × worker count in {1, cores} — the
  matrix the intra-round threading work (PR 9) is measured against;
* a thread-scaling section over the distributed N=10000 round:
  seconds and parallel efficiency per swept worker count, plus the
  count where scaling saturates (< 10% further improvement);
* recording machines with one core (or without numba) simply record a
  smaller matrix; ``--check`` replays whatever the baseline recorded
  and skips tiers the checking machine cannot build.

``--compare-tiers JIT.json NUMPY.json`` gates the jit tier against the
numpy tier: every kernel-bound round measurement recorded in both
PR7-format baselines must satisfy ``jit <= numpy * machine_scale *
1.1`` (``--tier-factor``), where ``machine_scale`` is the calibration
ratio between the two recordings.  CI records a fresh jit-tier
baseline and compares it against the committed numpy one, so a jit
kernel that silently degenerates to slower-than-numpy fails the job.

``--suite service`` (writes ``BENCH_PR8.json``):

* session-creation throughput: 1000 concurrent creates against a
  :class:`~repro.service.SessionManager` capped at 64 live sessions,
  so checkpoint-eviction is active throughout;
* p99/p50 step latency with all 1000 sessions resident (most of them
  evicted — a step typically pays a resurrection), drained through a
  bounded client pool;
* idle-session resident memory, live (tracemalloc-measured Simulation)
  vs evicted (checkpoint blob bytes) — the memory the eviction tier
  reclaims;
* the eviction-equivalence bit: a session evicted after every round
  must finish bitwise-identical to a direct in-process run.

Usage::

    PYTHONPATH=src python benchmarks/export_bench.py                # write benchmarks/BENCH_PR4.json
    PYTHONPATH=src python benchmarks/export_bench.py --suite sparse # write benchmarks/BENCH_PR7.json
    PYTHONPATH=src python benchmarks/export_bench.py --suite service # write benchmarks/BENCH_PR8.json
    PYTHONPATH=src python benchmarks/export_bench.py --suite pr9    # write benchmarks/BENCH_PR9.json
    PYTHONPATH=src python benchmarks/export_bench.py --check benchmarks/BENCH_PR4.json
    PYTHONPATH=src python benchmarks/export_bench.py --check benchmarks/BENCH_PR9.json
    PYTHONPATH=src python benchmarks/export_bench.py --compare-tiers jit.json benchmarks/BENCH_PR7.json
    PYTHONPATH=src python benchmarks/export_bench.py --profile      # sparse per-stage breakdown
    PYTHONPATH=src python benchmarks/export_bench.py --profile --threads 1,2,4
    PYTHONPATH=src python benchmarks/export_bench.py --profile --profile-out profile.json
    PYTHONPATH=src python benchmarks/export_bench.py --check-overhead benchmarks/BENCH_PR9.json

``--profile`` runs one sparse round per size with ``REPRO_PROFILE=1``
and prints the per-stage wall-clock breakdown (gather / circle_check /
clip / summary) the engines record on their round results — the
first-stop view for future squeezes, replacing ad-hoc profiling runs.
With ``--threads 1,2,4`` the profile becomes a sweep: each round runs
once per worker count and every stage reports its parallel efficiency
``t_1 / (t_n * n)`` against the serial run, showing exactly which
stages scale and where the thread dimension saturates.
``--profile-out PATH`` additionally writes the breakdown as JSON for
machine diffing, and ``--check-overhead BENCH_PR9.json`` gates the
*telemetry-disabled* hot path against the committed PR9 cells — the
observability hooks must cost nothing when no trace is active.

``--check`` re-measures the regression-relevant subset (round times and
the deployment transient; the sweep is skipped — its wall-clock is
dominated by process/cache housekeeping) and exits non-zero when any
measurement exceeds ``baseline * machine_scale * factor`` (factor
defaults to 2.0), a recorded speedup fell below half its recorded
value, or (sparse suite) the scaling exponent reaches quadratic.  The
baseline's ``label`` picks the checker, so one flag serves both
baselines.  ``machine_scale`` is the ratio of a fixed scalar-geometry
calibration workload on the checking machine vs the baseline machine,
so a uniformly slower CI runner does not trip the gate while a genuine
round-engine regression — which leaves the calibration workload
untouched — still does.  The speedup floors and the exponent ceiling
are machine-independent outright.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict

import numpy as np

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_PR4.json"
SPARSE_OUT = Path(__file__).resolve().parent / "BENCH_PR7.json"
SERVICE_OUT = Path(__file__).resolve().parent / "BENCH_PR8.json"
PR9_OUT = Path(__file__).resolve().parent / "BENCH_PR9.json"

#: Sizes of the tier × threads matrix (PR9 suite).  50k is left to the
#: PR7 baseline — the matrix re-measures every cell, and the point here
#: is tier/thread deltas, which 10k already resolves.
PR9_SIZES = (2000, 10000)
#: Allowed jit-over-numpy ratio in ``--compare-tiers`` (after machine
#: calibration): the jit tier must never be meaningfully slower than
#: the numpy reference on a kernel-bound stage.
TIER_COMPARE_FACTOR = 1.1

ROUND_SIZES = (50, 200, 500)
ENGINES = ("legacy", "batched")

#: Sparse-tier sizes: density-scaled gamma keeps the expected ring
#: population constant, so round cost tracks the candidate-pair volume
#: rather than N².  50k is far beyond the dense engines' memory wall.
SPARSE_SIZES = (2000, 10000, 50000)
#: Largest size the batched comparison rows run at (dense N×N beyond
#: this is pointlessly slow on a CI runner).
SPARSE_COMPARE_SIZE = 2000

#: The canonical N=200 k=2 corner-cluster distributed transient — the
#: round-level backend's acceptance workload.  Single source of truth,
#: shared with ``test_bench_microbenchmarks.test_distributed_deployment
#: _n200_k2`` so the committed baseline and the tracked pytest
#: benchmark can never drift onto different workloads.
TRANSIENT_WORKLOAD = dict(
    node_count=200,
    comm_range=0.25,
    placement_seed=11,
    k=2,
    alpha=1.0,
    epsilon=1e-3,
    max_rounds=6,
    seed=11,
)


def build_transient_deployment(engine_name: str) -> Callable[[], object]:
    """Zero-arg callable running the canonical distributed transient."""
    from repro.api import Simulation
    from repro.core.config import LaacadConfig
    from repro.network.network import SensorNetwork
    from repro.regions.shapes import unit_square

    region = unit_square()
    params = TRANSIENT_WORKLOAD

    def deploy():
        network = SensorNetwork.from_corner_cluster(
            region,
            params["node_count"],
            comm_range=params["comm_range"],
            rng=np.random.default_rng(params["placement_seed"]),
        )
        config = LaacadConfig(
            k=params["k"],
            alpha=params["alpha"],
            epsilon=params["epsilon"],
            max_rounds=params["max_rounds"],
            seed=params["seed"],
            engine=engine_name,
        )
        return Simulation(network=network, config=config, kind="distributed").run()

    return deploy


#: Clock behind ``_best_of``.  ``--check-overhead`` swaps in
#: ``time.process_time`` for its single-threaded cells: CPU time is
#: immune to scheduler preemption (the dominant noise on shared
#: runners) yet counts every cycle a hot-path hook would add.
_CLOCK = time.perf_counter


def _best_of(fn: Callable[[], None], repeats: int = 3) -> float:
    """Minimum wall-clock of ``repeats`` runs (noise-robust point estimate)."""
    best = float("inf")
    for _ in range(repeats):
        start = _CLOCK()
        fn()
        best = min(best, _CLOCK() - start)
    return best


def _uniform_network(n: int, seed: int = 7):
    from repro.network.network import SensorNetwork
    from repro.regions.shapes import unit_square

    region = unit_square()
    return SensorNetwork(
        region, region.random_points(n, rng=np.random.default_rng(seed)), comm_range=0.25
    )


def measure_centralized_rounds() -> Dict[str, float]:
    """One batched-engine round of region computation per network size."""
    from repro.core.config import LaacadConfig
    from repro.engine import make_engine

    results: Dict[str, float] = {}
    for n in ROUND_SIZES:
        network = _uniform_network(n)
        engine = make_engine("batched", network, LaacadConfig(k=2, engine="batched"))
        results[str(n)] = _best_of(engine.compute_round)
    return results


def measure_distributed_rounds() -> Dict[str, Dict[str, float]]:
    """One protocol round (gather + regions) per backend per size."""
    from repro.core.config import LaacadConfig
    from repro.runtime.engines import make_distributed_engine
    from repro.runtime.scheduler import SynchronousScheduler

    results: Dict[str, Dict[str, float]] = {engine: {} for engine in ENGINES}
    for engine_name in ENGINES:
        for n in ROUND_SIZES:
            network = _uniform_network(n)
            config = LaacadConfig(k=2, engine=engine_name)
            scheduler = SynchronousScheduler()
            engine = make_distributed_engine(engine_name, network, config, scheduler)
            scheduler.begin_round()
            results[engine_name][str(n)] = _best_of(lambda: engine.run_round(0))
    return results


def measure_distributed_deployment() -> Dict[str, float]:
    """The N=200 k=2 corner-cluster distributed transient (6 rounds)."""
    return {
        engine_name: _best_of(build_transient_deployment(engine_name), repeats=2)
        for engine_name in ENGINES
    }


def measure_calibration() -> float:
    """Machine-speed yardstick: a fixed scalar-geometry workload.

    The regression check normalises the absolute baseline times by the
    ratio of this measurement (check machine vs baseline machine), so a
    uniformly slower runner does not trip the gate while a genuine
    round-engine regression — which leaves this scalar workload
    untouched — still does.
    """
    from repro.regions.shapes import unit_square
    from repro.voronoi.dominating import compute_dominating_region

    region = unit_square()
    sites = region.random_points(200, rng=np.random.default_rng(2))

    def workload():
        for site in sites[:60]:
            others = [p for p in sites if p is not site]
            compute_dominating_region(site, others, region, 2)

    return _best_of(workload, repeats=5)


def measure_sweep() -> float:
    """Serial 2x2 scenario sweep, cold content-addressed cache."""
    from repro.scenarios import SweepRunner, expand_grid, make_scenario

    base = make_scenario("open_field", node_count=20, max_rounds=10)
    specs = expand_grid(base, {"k": [1, 2], "node_count": [15, 25]})
    with tempfile.TemporaryDirectory() as cache_dir:
        runner = SweepRunner(cache_dir=Path(cache_dir), jobs=1)
        start = time.perf_counter()
        runner.run(specs)
        return time.perf_counter() - start


def collect(include_sweep: bool = True) -> Dict[str, object]:
    distributed_rounds = measure_distributed_rounds()
    deployment = measure_distributed_deployment()
    payload: Dict[str, object] = {
        "bench_format_version": 1,
        "label": "PR4",
        "calibration_seconds": measure_calibration(),
        "workloads": {
            "centralized_round_seconds": measure_centralized_rounds(),
            "distributed_round_seconds": distributed_rounds,
            "distributed_deployment_n200_seconds": deployment,
            "distributed_speedup_n200": deployment["legacy"] / deployment["batched"],
        },
    }
    if include_sweep:
        payload["workloads"]["sweep_2x2_seconds"] = measure_sweep()
    return payload


def _density_scaled_network(n: int, seed: int = 7):
    """Uniform deployment whose gamma shrinks with sqrt(1/N).

    ``gamma = sqrt(12 * area / (pi * N))`` keeps ~12 expected nodes per
    transmission disk at every size, the constant-density regime the
    sparse tier targets.
    """
    import math

    from repro.network.network import SensorNetwork
    from repro.regions.shapes import unit_square

    region = unit_square()
    gamma = math.sqrt(12.0 * 1.0 / (math.pi * n))
    return SensorNetwork(
        region,
        region.random_points(n, rng=np.random.default_rng(seed)),
        comm_range=gamma,
    )


def _sparse_repeats(n: int) -> int:
    # Single-shot readings are noise-prone enough (background load
    # spikes) to distort the recorded baseline, so every size takes the
    # best of several runs; small sizes are cheap enough for three.
    return 2 if n >= 50000 else 3


def measure_sparse_centralized_rounds(sizes=SPARSE_SIZES) -> Dict[str, float]:
    """One sparse-engine centralized round per density-scaled size."""
    from repro.core.config import LaacadConfig
    from repro.engine import make_engine

    results: Dict[str, float] = {}
    for n in sizes:
        network = _density_scaled_network(n)
        engine = make_engine("sparse", network, LaacadConfig(k=2, engine="sparse"))
        results[str(n)] = _best_of(engine.compute_round, repeats=_sparse_repeats(n))
    return results


def measure_sparse_distributed_rounds(sizes=SPARSE_SIZES) -> Dict[str, float]:
    """One sparse-backend distributed protocol round per size."""
    from repro.core.config import LaacadConfig
    from repro.runtime.engines import make_distributed_engine
    from repro.runtime.scheduler import SynchronousScheduler

    results: Dict[str, float] = {}
    for n in sizes:
        network = _density_scaled_network(n)
        config = LaacadConfig(k=2, engine="sparse")
        scheduler = SynchronousScheduler()
        engine = make_distributed_engine("sparse", network, config, scheduler)
        scheduler.begin_round()
        results[str(n)] = _best_of(
            lambda: engine.run_round(0), repeats=_sparse_repeats(n)
        )
    return results


def measure_batched_comparison_rounds() -> Dict[str, float]:
    """The dense reference points for the speedup rows (N=2000 only)."""
    from repro.core.config import LaacadConfig
    from repro.engine import make_engine
    from repro.runtime.engines import make_distributed_engine
    from repro.runtime.scheduler import SynchronousScheduler

    network = _density_scaled_network(SPARSE_COMPARE_SIZE)
    engine = make_engine("batched", network, LaacadConfig(k=2, engine="batched"))
    centralized = _best_of(engine.compute_round, repeats=2)

    network = _density_scaled_network(SPARSE_COMPARE_SIZE)
    config = LaacadConfig(k=2, engine="batched")
    scheduler = SynchronousScheduler()
    dist_engine = make_distributed_engine("batched", network, config, scheduler)
    scheduler.begin_round()
    distributed = _best_of(lambda: dist_engine.run_round(0), repeats=2)
    return {"centralized": centralized, "distributed": distributed}


def collect_sparse() -> Dict[str, object]:
    import math

    centralized = measure_sparse_centralized_rounds()
    distributed = measure_sparse_distributed_rounds()
    batched = measure_batched_comparison_rounds()
    n_hi, n_lo = str(SPARSE_SIZES[-1]), str(SPARSE_SIZES[-2])
    exponent = math.log(distributed[n_hi] / distributed[n_lo]) / math.log(
        SPARSE_SIZES[-1] / SPARSE_SIZES[-2]
    )
    from repro.engine.jit_kernels import kernel_tier

    compare = str(SPARSE_COMPARE_SIZE)
    return {
        "bench_format_version": 1,
        "label": "PR7",
        "kernel_tier": kernel_tier(),
        "calibration_seconds": measure_calibration(),
        "workloads": {
            "sparse_centralized_round_seconds": centralized,
            "sparse_distributed_round_seconds": distributed,
            "batched_round_n2000_seconds": batched,
            "sparse_speedup_n2000_centralized": batched["centralized"]
            / centralized[compare],
            "sparse_speedup_n2000_distributed": batched["distributed"]
            / distributed[compare],
            "sparse_distributed_scaling_exponent": exponent,
        },
    }


def _stage_items(profile):
    """Stage → seconds pairs, hottest first (``meta`` skipped upstream)."""
    from repro.engine.profiling import profile_stages

    return sorted(profile_stages(profile).items(), key=lambda kv: -kv[1])


def _profiled_round(kind: str, n: int):
    """One profiled sparse round; returns ``(total_seconds, profile)``."""
    from repro.core.config import LaacadConfig
    from repro.engine import make_engine
    from repro.runtime.engines import make_distributed_engine
    from repro.runtime.scheduler import SynchronousScheduler

    network = _density_scaled_network(n)
    config = LaacadConfig(k=2, engine="sparse")
    if kind == "centralized":
        engine = make_engine("sparse", network, config)
        run = engine.compute_round
    else:
        scheduler = SynchronousScheduler()
        engine = make_distributed_engine("sparse", network, config, scheduler)
        scheduler.begin_round()
        run = lambda: engine.run_round(0)  # noqa: E731
    start = time.perf_counter()
    result = run()
    return time.perf_counter() - start, result.profile or {}


def profile_sparse(sizes=SPARSE_SIZES, thread_counts=None, out=None) -> int:
    """Per-stage breakdown of one sparse round per size (``--profile``).

    Forces ``REPRO_PROFILE=1`` for the measured rounds and prints the
    stage-name → seconds dict each sparse engine records on its round
    result, for both the centralized and the distributed path.  With
    ``thread_counts`` (the ``--threads`` sweep) every round runs once
    per worker count and each stage additionally reports its parallel
    efficiency ``t_1 / (t_n * n)`` against the serial measurement.
    With ``out`` (``--profile-out``) the same measurements are also
    written as machine-readable JSON — one row per (kind, size, threads)
    with the total, the stage dict and the profile's ``meta`` — so two
    profile runs can be diffed by a script instead of by eyeball.
    """
    import os

    from repro.engine.jit_kernels import kernel_tier
    from repro.engine.kernels import KERNEL_THREADS_ENV
    from repro.engine.profiling import profile_meta

    os.environ["REPRO_PROFILE"] = "1"
    print(f"kernel tier: {kernel_tier()}")
    counts = list(thread_counts) if thread_counts else [None]
    rows = []
    for n in sizes:
        for kind in ("centralized", "distributed"):
            serial_stages: Dict[str, float] = {}
            for threads in counts:
                if threads is not None:
                    os.environ[KERNEL_THREADS_ENV] = str(threads)
                total, profile = _profiled_round(kind, n)
                stages = _stage_items(profile)
                rows.append(
                    {
                        "kind": kind,
                        "n": n,
                        "threads": threads,
                        "total_seconds": total,
                        "stages": dict(stages),
                        "meta": profile_meta(profile),
                    }
                )
                tag = "" if threads is None else f" threads={threads}"
                print(f"{kind} n={n}{tag}: {total:.3f}s  "
                      + "  ".join(f"{name}={secs:.3f}" for name, secs in stages))
                if threads == counts[0] and threads is not None:
                    serial_stages = dict(stages)
                elif threads is not None and serial_stages:
                    effs = "  ".join(
                        f"{name}={serial_stages[name] / (secs * threads):.2f}"
                        for name, secs in stages
                        if name in serial_stages and secs > 0.0
                    )
                    print(f"{kind} n={n} threads={threads} efficiency: {effs}")
    if out is not None:
        payload = {
            "profile_format_version": 1,
            "kernel_tier": kernel_tier(),
            "rows": rows,
        }
        Path(out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


def check_sparse(baseline_payload: Dict, factor: float) -> int:
    """Regression gate for the sparse-tier baseline (data-driven).

    Absolute seconds are compared against ``baseline * machine_scale *
    factor``; ``*speedup*`` keys fail below half their recorded value;
    the scaling exponent fails at quadratic (>= 2.0) regardless of the
    baseline — sub-quadratic scaling is the tier's reason to exist.
    """
    baseline = baseline_payload["workloads"]
    current_payload = collect_sparse()
    current = current_payload["workloads"]
    failures = []

    scale = current_payload["calibration_seconds"] / baseline_payload[
        "calibration_seconds"
    ]
    print(f"machine-speed scale vs baseline: {scale:.2f}x "
          f"(calibration {current_payload['calibration_seconds']:.3f}s "
          f"vs {baseline_payload['calibration_seconds']:.3f}s)\n")

    for key, base_value in baseline.items():
        new_value = current[key]
        if "speedup" in key:
            status = "ok"
            if new_value < base_value / 2.0:
                status = "REGRESSION (speedup halved)"
                failures.append(key)
            print(f"{key:55s} baseline {base_value:8.2f}x now {new_value:8.2f}x  {status}")
        elif "scaling_exponent" in key:
            status = "ok" if new_value < 2.0 else "REGRESSION (quadratic scaling)"
            if new_value >= 2.0:
                failures.append(key)
            print(f"{key:55s} baseline {base_value:8.2f}  now {new_value:8.2f}   {status}")
        elif isinstance(base_value, dict):
            for sub, base_seconds in base_value.items():
                new_seconds = current[key][sub]
                status = "ok"
                if new_seconds > base_seconds * scale * factor:
                    status = f"REGRESSION (> {factor:.1f}x speed-scaled baseline)"
                    failures.append(f"{key}[{sub}]")
                print(f"{key + '[' + sub + ']':55s} baseline {base_seconds:8.3f}s "
                      f"now {new_seconds:8.3f}s  {status}")
        else:
            status = "ok"
            if new_value > base_value * scale * factor:
                status = f"REGRESSION (> {factor:.1f}x speed-scaled baseline)"
                failures.append(key)
            print(f"{key:55s} baseline {base_value:8.3f}s now {new_value:8.3f}s  {status}")

    if failures:
        print(f"\nFAILED: {len(failures)} regression(s): {', '.join(failures)}")
        return 1
    print("\nOK: no measurement regressed beyond the allowed factor")
    return 0


def _available_tiers():
    from repro.engine.jit_kernels import numba_available

    return ("numpy", "jit") if numba_available() else ("numpy",)


def _pr9_matrix_cell(sizes) -> Dict[str, Dict[str, float]]:
    """Round seconds for one (tier, threads) cell of the PR9 matrix.

    The tier and worker count are taken from the environment — the
    caller owns ``REPRO_KERNELS`` / ``REPRO_KERNEL_THREADS`` so the
    same cell code serves recording and checking.
    """
    return {
        "sparse_centralized_round_seconds": measure_sparse_centralized_rounds(sizes),
        "sparse_distributed_round_seconds": measure_sparse_distributed_rounds(sizes),
    }


def collect_pr9() -> Dict[str, object]:
    """The tier × threads matrix plus the thread-scaling sweep."""
    import os

    from repro.engine.jit_kernels import KERNELS_ENV, numba_available
    from repro.engine.kernels import KERNEL_THREADS_ENV, _available_cores

    cores = _available_cores()
    thread_counts = sorted({1, cores})
    saved = {
        key: os.environ.get(key) for key in (KERNELS_ENV, KERNEL_THREADS_ENV)
    }
    tiers: Dict[str, object] = {}
    try:
        for tier in _available_tiers():
            os.environ[KERNELS_ENV] = tier
            per_thread: Dict[str, object] = {}
            for threads in thread_counts:
                os.environ[KERNEL_THREADS_ENV] = str(threads)
                per_thread[str(threads)] = _pr9_matrix_cell(PR9_SIZES)
            tiers[tier] = {"threads": per_thread}

        # Thread-scaling sweep on the best available tier: distributed
        # N=10k round at 1, 2, 4, ... cores; saturation is the largest
        # count still buying >= 10% over the previous one.
        sweep_tier = "jit" if numba_available() else "numpy"
        os.environ[KERNELS_ENV] = sweep_tier
        sweep_counts = [1]
        while sweep_counts[-1] * 2 <= cores:
            sweep_counts.append(sweep_counts[-1] * 2)
        if sweep_counts[-1] != cores:
            sweep_counts.append(cores)
        n_probe = PR9_SIZES[-1]
        seconds: Dict[str, float] = {}
        for threads in sweep_counts:
            os.environ[KERNEL_THREADS_ENV] = str(threads)
            seconds[str(threads)] = measure_sparse_distributed_rounds(
                (n_probe,)
            )[str(n_probe)]
        saturation = sweep_counts[0]
        for prev, cur in zip(sweep_counts, sweep_counts[1:]):
            if seconds[str(cur)] < seconds[str(prev)] * 0.9:
                saturation = cur
            else:
                break
        serial = seconds[str(sweep_counts[0])]
        thread_scaling = {
            "tier": sweep_tier,
            "workload": f"sparse_distributed_round_n{n_probe}",
            "seconds": seconds,
            "efficiency": {
                key: serial / (value * int(key)) for key, value in seconds.items()
            },
            "saturation_threads": saturation,
        }
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    return {
        "bench_format_version": 1,
        "label": "PR9",
        "available_cores": cores,
        "numba_available": numba_available(),
        "calibration_seconds": measure_calibration(),
        "tiers": tiers,
        "thread_scaling": thread_scaling,
    }


def check_pr9(baseline_payload: Dict, factor: float) -> int:
    """Regression gate for the tier × threads matrix baseline.

    Every cell the baseline recorded is re-measured under the same
    ``REPRO_KERNELS`` / ``REPRO_KERNEL_THREADS`` setting and compared
    against ``baseline * machine_scale * factor``.  Tiers the checking
    machine cannot build (jit without numba) are skipped with a note —
    the numba CI leg covers them.
    """
    import os

    from repro.engine.jit_kernels import KERNELS_ENV, numba_available
    from repro.engine.kernels import KERNEL_THREADS_ENV

    failures = []
    scale = measure_calibration() / baseline_payload["calibration_seconds"]
    print(f"machine-speed scale vs baseline: {scale:.2f}x\n")

    saved = {
        key: os.environ.get(key) for key in (KERNELS_ENV, KERNEL_THREADS_ENV)
    }
    try:
        for tier, tier_data in baseline_payload["tiers"].items():
            if tier == "jit" and not numba_available():
                print(f"tier {tier}: skipped (numba not importable here; "
                      f"the numba CI leg checks it)")
                continue
            os.environ[KERNELS_ENV] = tier
            for threads, base_cell in tier_data["threads"].items():
                os.environ[KERNEL_THREADS_ENV] = threads
                sizes = tuple(
                    int(n)
                    for n in base_cell["sparse_distributed_round_seconds"]
                )
                cell = _pr9_matrix_cell(sizes)
                for key, per_size in base_cell.items():
                    for n, base_seconds in per_size.items():
                        new_seconds = cell[key][n]
                        label = f"{tier}/threads={threads} {key}[{n}]"
                        status = "ok"
                        if new_seconds > base_seconds * scale * factor:
                            status = (
                                f"REGRESSION (> {factor:.1f}x speed-scaled baseline)"
                            )
                            failures.append(label)
                        print(f"{label:62s} baseline {base_seconds:8.3f}s "
                              f"now {new_seconds:8.3f}s  {status}")
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    if failures:
        print(f"\nFAILED: {len(failures)} regression(s): {', '.join(failures)}")
        return 1
    print("\nOK: no measurement regressed beyond the allowed factor")
    return 0


#: Allowed telemetry-disabled slowdown vs the committed PR9 baseline:
#: the hooks' disabled path is one module-global check, so 2% covers it
#: with margin on a quiet machine.  CI passes a looser ``--overhead-
#: factor`` to absorb shared-runner noise.
OVERHEAD_FACTOR = 1.02


def check_overhead(baseline_payload: Dict, factor: float) -> int:
    """Telemetry-disabled overhead gate (``--check-overhead``).

    Replays the numpy/threads=1 N=2000 cells of a PR9-format baseline
    with tracing and profiling both off — the default hot-path
    configuration — and fails when either round exceeds ``baseline *
    machine_scale * factor``.  This is the enforcement of the obs
    contract: with no active collector, every span site costs one
    module-global check, which must be invisible at round granularity.
    """
    import os

    from repro.engine.jit_kernels import KERNELS_ENV
    from repro.engine.kernels import KERNEL_THREADS_ENV
    from repro.engine.profiling import PROFILE_ENV
    from repro.obs import trace

    if trace.tracing_active():
        raise RuntimeError("--check-overhead must run with tracing off")
    base_cell = baseline_payload["tiers"]["numpy"]["threads"]["1"]

    failures = []
    # The gate's cells are single-threaded and CPU-bound, so measure
    # them on the process CPU clock: time stolen by other processes (the
    # dominant noise on shared single-core runners) does not count,
    # while an extra hot-path attribute check — pure CPU work — counts
    # in full.  The baseline's wall-clock seconds are an upper bound on
    # its CPU seconds, so the budget only gets tighter, never looser.
    global _CLOCK
    saved_clock = _CLOCK
    _CLOCK = time.process_time

    # One-sided machine calibration: a *slower* checking machine gets a
    # proportionally larger budget (as in the other gates), but a faster
    # one keeps the absolute baseline budget — hook cost cannot be
    # negative, so a run on faster hardware must still come in at or
    # under the recorded pre-telemetry seconds.  This keeps a tight
    # factor meaningful when the scalar calibration workload and the
    # numpy-bound rounds speed up by different ratios.
    raw_scale = measure_calibration() / baseline_payload["calibration_seconds"]
    scale = max(1.0, raw_scale)
    print(f"machine-speed scale vs baseline: {raw_scale:.2f}x "
          f"(applied: {scale:.2f}x, one-sided)\n")

    saved = {
        key: os.environ.get(key)
        for key in (KERNELS_ENV, KERNEL_THREADS_ENV, PROFILE_ENV)
    }
    try:
        os.environ[KERNELS_ENV] = "numpy"
        os.environ[KERNEL_THREADS_ENV] = "1"
        os.environ.pop(PROFILE_ENV, None)
        sizes = (PR9_SIZES[0],)
        # A tight factor needs a converging best-of: single-cell
        # readings wobble ±20% under background load, while the floor —
        # which is what a hot-path attribute check would raise — is
        # stable.  Replay the cell until every floor is under budget or
        # the attempts run out; retries cannot mask a real regression
        # because genuine overhead elevates the floor itself.
        cell = _pr9_matrix_cell(sizes)
        for _ in range(5):
            if all(
                cell[key][n] <= base_cell[key][n] * scale * factor
                for key in cell
                for n in cell[key]
            ):
                break
            again = _pr9_matrix_cell(sizes)
            for key, per_size in again.items():
                for n, seconds in per_size.items():
                    cell[key][n] = min(cell[key][n], seconds)
        for key in sorted(cell):
            for n in cell[key]:
                base_seconds = base_cell[key][n]
                new_seconds = cell[key][n]
                label = f"telemetry-off {key}[{n}]"
                status = "ok"
                if new_seconds > base_seconds * scale * factor:
                    status = f"REGRESSION (> {factor:.2f}x speed-scaled baseline)"
                    failures.append(label)
                print(f"{label:62s} baseline {base_seconds:8.3f}s "
                      f"now {new_seconds:8.3f}s  {status}")
    finally:
        _CLOCK = saved_clock
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    if failures:
        print(f"\nFAILED: telemetry hooks cost measurable time when disabled: "
              f"{', '.join(failures)}")
        return 1
    print(f"\nOK: disabled telemetry within {factor:.2f}x of the "
          f"speed-scaled baseline")
    return 0


def compare_tiers(jit_path: Path, numpy_path: Path, factor: float) -> int:
    """Gate the jit tier against the numpy tier (``--compare-tiers``).

    Both arguments are PR7-format baselines (``kernel_tier`` records
    which tier measured them).  Every kernel-bound round measurement
    present in both files must satisfy ``jit <= numpy * machine_scale *
    factor`` — a jit build that is slower than the numpy reference on
    any kernel-bound stage is a regression, not an optimisation.
    """
    jit_payload = json.loads(jit_path.read_text())
    ref_payload = json.loads(numpy_path.read_text())
    print(f"jit baseline:   {jit_path} (tier {jit_payload.get('kernel_tier')})")
    print(f"numpy baseline: {numpy_path} (tier {ref_payload.get('kernel_tier')})")
    scale = jit_payload["calibration_seconds"] / ref_payload["calibration_seconds"]
    print(f"machine-speed scale (jit machine vs numpy machine): {scale:.2f}x\n")

    failures = []
    compared = 0
    for key in (
        "sparse_centralized_round_seconds",
        "sparse_distributed_round_seconds",
    ):
        jit_sizes = jit_payload["workloads"].get(key, {})
        for n, ref_seconds in ref_payload["workloads"].get(key, {}).items():
            jit_seconds = jit_sizes.get(n)
            if jit_seconds is None:
                continue
            compared += 1
            allowed = ref_seconds * scale * factor
            status = "ok"
            if jit_seconds > allowed:
                status = f"REGRESSION (jit > {factor:.2f}x numpy)"
                failures.append(f"{key}[{n}]")
            print(f"{key + '[' + n + ']':55s} numpy {ref_seconds:8.3f}s "
                  f"jit {jit_seconds:8.3f}s (allowed {allowed:8.3f}s)  {status}")

    if compared == 0:
        print("FAILED: the baselines share no kernel-bound measurements")
        return 1
    if failures:
        print(f"\nFAILED: jit tier slower than numpy on: {', '.join(failures)}")
        return 1
    print(f"\nOK: jit tier within {factor:.2f}x of the numpy reference "
          f"on all {compared} kernel-bound measurements")
    return 0


#: Concurrent sessions hosted during the service load test.  The live
#: cap keeps ~94% of them evicted at any moment, so the measured step
#: latency includes resurrection — the honest steady-state cost of a
#: multi-tenant deployment over budget.
SERVICE_SESSION_COUNT = 1000
SERVICE_MAX_LIVE = 64
#: In-flight client requests during the step-latency sweep.  Latency is
#: measured per call under this contention, not under a 1000-deep queue
#: whose p99 would just re-measure queue depth.
SERVICE_STEP_CONCURRENCY = 16
SERVICE_SCENARIO = dict(node_count=8, k=1, max_rounds=8, epsilon=2e-3)
#: Sessions sampled for the idle-memory comparison.
SERVICE_MEMORY_SAMPLE = 32


def measure_service_load() -> Dict[str, object]:
    """Creates/sec and step-latency percentiles at 1000 sessions."""
    import asyncio

    from repro.service import SessionManager

    async def main() -> Dict[str, object]:
        manager = SessionManager(
            max_live_sessions=SERVICE_MAX_LIVE, max_workers=SERVICE_STEP_CONCURRENCY
        )
        names = [f"bench-{i}" for i in range(SERVICE_SESSION_COUNT)]
        start = time.perf_counter()
        await asyncio.gather(
            *(
                manager.create(name, **dict(SERVICE_SCENARIO, seed=i))
                for i, name in enumerate(names)
            )
        )
        create_elapsed = time.perf_counter() - start

        gate = asyncio.Semaphore(SERVICE_STEP_CONCURRENCY)
        latencies: list = []

        async def step_once(name: str) -> None:
            async with gate:
                begin = time.perf_counter()
                await manager.step(name, include_events=False)
                latencies.append(time.perf_counter() - begin)

        await asyncio.gather(*(step_once(name) for name in names))
        stats = manager.stats()
        await manager.close()
        samples = np.asarray(latencies)
        return {
            "concurrent_sessions": SERVICE_SESSION_COUNT,
            "session_creates_per_second": SERVICE_SESSION_COUNT / create_elapsed,
            "step_latency_seconds": {
                "p50": float(np.percentile(samples, 50)),
                "p99": float(np.percentile(samples, 99)),
                "mean": float(samples.mean()),
            },
            "total_evictions": stats["total_evictions"],
            "total_resurrections": stats["total_resurrections"],
        }

    return asyncio.run(main())


def measure_service_idle_memory() -> Dict[str, float]:
    """Idle-session footprint: live Simulation vs evicted checkpoint blob.

    Live bytes are tracemalloc-measured over a sample of constructed
    (and briefly stepped) simulations; evicted bytes are the serialized
    checkpoint's length — exactly what the manager keeps resident for
    an evicted session.
    """
    import gc
    import tracemalloc

    from repro.api import Simulation

    gc.collect()
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    sims = [
        Simulation(**dict(SERVICE_SCENARIO, seed=i))
        for i in range(SERVICE_MEMORY_SAMPLE)
    ]
    for sim in sims:
        sim.step()
        sim.step()
    gc.collect()
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    live_bytes = (after - before) / len(sims)
    evicted_bytes = sum(sim.checkpoint().nbytes for sim in sims) / len(sims)
    return {
        "live_session_idle_bytes": live_bytes,
        "evicted_session_idle_bytes": evicted_bytes,
        "eviction_memory_ratio": evicted_bytes / live_bytes,
    }


def measure_service_equivalence() -> bool:
    """Evict-every-round through the manager == direct in-process run."""
    import asyncio

    from repro.api import Simulation
    from repro.service import SessionManager

    scenario = dict(SERVICE_SCENARIO, seed=17, max_rounds=12)

    async def serviced() -> Dict:
        manager = SessionManager()
        await manager.create("equiv", **scenario)
        while not manager.info("equiv")["done"]:
            await manager.step("equiv", include_events=False)
            await manager.evict("equiv")
        result = await manager.result("equiv")
        await manager.close()
        return result

    return asyncio.run(serviced()) == Simulation(**scenario).run().to_dict()


def collect_service() -> Dict[str, object]:
    workloads: Dict[str, object] = {}
    workloads.update(measure_service_load())
    workloads.update(measure_service_idle_memory())
    workloads["eviction_equivalence"] = measure_service_equivalence()
    return {
        "bench_format_version": 1,
        "label": "PR8",
        "calibration_seconds": measure_calibration(),
        "workloads": workloads,
    }


def check_service(baseline_payload: Dict, factor: float) -> int:
    """Regression gate for the service baseline.

    Throughput (creates/sec) fails below ``baseline / (machine_scale *
    factor)``; p99 step latency fails above ``baseline * machine_scale
    * factor``; the memory claim (evicted footprint below live) and the
    eviction-equivalence bit are machine-independent and must simply
    hold on the checking machine.
    """
    baseline = baseline_payload["workloads"]
    current_payload = collect_service()
    current = current_payload["workloads"]
    failures = []

    scale = current_payload["calibration_seconds"] / baseline_payload[
        "calibration_seconds"
    ]
    print(f"machine-speed scale vs baseline: {scale:.2f}x "
          f"(calibration {current_payload['calibration_seconds']:.3f}s "
          f"vs {baseline_payload['calibration_seconds']:.3f}s)\n")

    base_rate = baseline["session_creates_per_second"]
    new_rate = current["session_creates_per_second"]
    floor = base_rate / (scale * factor)
    status = "ok"
    if new_rate < floor:
        status = f"REGRESSION (< baseline / {factor:.1f}x machine scale)"
        failures.append("session_creates_per_second")
    print(f"{'session creates/sec':55s} baseline {base_rate:8.1f}  "
          f"now {new_rate:8.1f}   {status}")

    for percentile in ("p50", "p99"):
        base_value = baseline["step_latency_seconds"][percentile]
        new_value = current["step_latency_seconds"][percentile]
        status = "ok"
        if new_value > base_value * scale * factor:
            status = f"REGRESSION (> {factor:.1f}x speed-scaled baseline)"
            failures.append(f"step_latency_seconds[{percentile}]")
        print(f"{'step latency ' + percentile:55s} baseline {base_value * 1e3:8.2f}ms "
              f"now {new_value * 1e3:8.2f}ms  {status}")

    live = current["live_session_idle_bytes"]
    evicted = current["evicted_session_idle_bytes"]
    status = "ok"
    if evicted > live:
        status = "REGRESSION (evicted footprint above live)"
        failures.append("evicted_session_idle_bytes")
    print(f"{'idle memory evicted vs live':55s} evicted {evicted / 1024:8.1f}KiB "
          f"live {live / 1024:8.1f}KiB  {status}")

    status = "ok" if current["eviction_equivalence"] else "REGRESSION (diverged)"
    if not current["eviction_equivalence"]:
        failures.append("eviction_equivalence")
    print(f"{'eviction equivalence (bitwise)':55s} "
          f"{'holds' if current['eviction_equivalence'] else 'VIOLATED':>21s}   {status}")

    if failures:
        print(f"\nFAILED: {len(failures)} regression(s): {', '.join(failures)}")
        return 1
    print("\nOK: no measurement regressed beyond the allowed factor")
    return 0


def check(baseline_path: Path, factor: float) -> int:
    """Re-measure and compare; returns a process exit code."""
    baseline_payload = json.loads(baseline_path.read_text())
    if baseline_payload.get("label") == "PR9":
        return check_pr9(baseline_payload, factor)
    if baseline_payload.get("label") == "PR8":
        return check_service(baseline_payload, factor)
    if baseline_payload.get("label") in ("PR6", "PR7"):
        return check_sparse(baseline_payload, factor)
    baseline = baseline_payload["workloads"]
    current_payload = collect(include_sweep=False)
    current = current_payload["workloads"]
    failures = []

    # Normalise for machine speed: the allowed budget scales with how
    # this machine performs on the calibration workload relative to the
    # machine that recorded the baseline.
    scale = current_payload["calibration_seconds"] / baseline_payload[
        "calibration_seconds"
    ]
    print(f"machine-speed scale vs baseline: {scale:.2f}x "
          f"(calibration {current_payload['calibration_seconds']:.3f}s "
          f"vs {baseline_payload['calibration_seconds']:.3f}s)\n")

    def compare(label: str, base_value: float, new_value: float) -> None:
        status = "ok"
        if new_value > base_value * scale * factor:
            status = f"REGRESSION (> {factor:.1f}x speed-scaled baseline)"
            failures.append(label)
        print(f"{label:55s} baseline {base_value:8.3f}s now {new_value:8.3f}s  {status}")

    for n, base_value in baseline["centralized_round_seconds"].items():
        compare(
            f"centralized round n={n}",
            base_value,
            current["centralized_round_seconds"][n],
        )
    for engine_name, per_size in baseline["distributed_round_seconds"].items():
        for n, base_value in per_size.items():
            compare(
                f"distributed round [{engine_name}] n={n}",
                base_value,
                current["distributed_round_seconds"][engine_name][n],
            )
    for engine_name, base_value in baseline[
        "distributed_deployment_n200_seconds"
    ].items():
        compare(
            f"distributed deployment n=200 [{engine_name}]",
            base_value,
            current["distributed_deployment_n200_seconds"][engine_name],
        )

    base_speedup = baseline["distributed_speedup_n200"]
    new_speedup = current["distributed_speedup_n200"]
    print(f"{'distributed n=200 speedup (batched over legacy)':55s} "
          f"baseline {base_speedup:7.2f}x now {new_speedup:7.2f}x")
    if new_speedup < base_speedup / 2.0:
        failures.append("distributed_speedup_n200")
        print("REGRESSION: the deployment-transient speedup halved")

    if failures:
        print(f"\nFAILED: {len(failures)} regression(s): {', '.join(failures)}")
        return 1
    print("\nOK: no measurement regressed beyond the allowed factor")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", type=Path, default=None,
                        help="where to write the baseline JSON")
    parser.add_argument("--suite", choices=("pr4", "sparse", "service", "pr9"),
                        default="pr4",
                        help="which workload suite to record (default pr4)")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare fresh measurements against a committed "
                             "baseline (the suite is picked from its label)")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="allowed slowdown factor in --check mode (default 2.0)")
    parser.add_argument("--compare-tiers", type=Path, nargs=2, default=None,
                        metavar=("JIT_BASELINE", "NUMPY_BASELINE"),
                        help="gate a jit-tier PR7-format baseline against the "
                             "numpy-tier one (jit must not be slower than "
                             "numpy * machine_scale * --tier-factor)")
    parser.add_argument("--tier-factor", type=float, default=TIER_COMPARE_FACTOR,
                        help="allowed jit/numpy ratio in --compare-tiers "
                             f"(default {TIER_COMPARE_FACTOR})")
    parser.add_argument("--profile", action="store_true",
                        help="print the per-stage wall-clock breakdown of one "
                             "sparse round per size (sets REPRO_PROFILE=1)")
    parser.add_argument("--threads", type=str, default=None, metavar="N,N,...",
                        help="with --profile: sweep REPRO_KERNEL_THREADS over "
                             "these counts and report per-stage scaling "
                             "efficiency (start the list at 1)")
    parser.add_argument("--profile-out", type=Path, default=None, metavar="PATH",
                        help="with --profile: also write the breakdown as "
                             "machine-readable JSON for profile diffing")
    parser.add_argument("--check-overhead", type=Path, default=None,
                        metavar="PR9_BASELINE",
                        help="gate the telemetry-disabled hot path: replay the "
                             "numpy/threads=1 N=2000 cells of a PR9-format "
                             "baseline with tracing/profiling off and fail on "
                             "any slowdown beyond --overhead-factor")
    parser.add_argument("--overhead-factor", type=float, default=OVERHEAD_FACTOR,
                        help="allowed telemetry-disabled slowdown in "
                             f"--check-overhead (default {OVERHEAD_FACTOR})")
    args = parser.parse_args(argv)

    if args.profile:
        thread_counts = (
            [int(part) for part in args.threads.split(",") if part.strip()]
            if args.threads
            else None
        )
        return profile_sparse(thread_counts=thread_counts, out=args.profile_out)

    if args.compare_tiers is not None:
        return compare_tiers(*args.compare_tiers, factor=args.tier_factor)

    if args.check_overhead is not None:
        return check_overhead(
            json.loads(args.check_overhead.read_text()), args.overhead_factor
        )

    if args.check is not None:
        return check(args.check, args.factor)

    if args.suite == "service":
        payload = collect_service()
        out = args.out if args.out is not None else SERVICE_OUT
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        workloads = payload["workloads"]
        print(f"wrote {out}")
        latency = workloads["step_latency_seconds"]
        print(f"{workloads['concurrent_sessions']} concurrent sessions "
              f"(max {SERVICE_MAX_LIVE} live): "
              f"{workloads['session_creates_per_second']:.0f} creates/s, "
              f"step p50 {latency['p50'] * 1e3:.2f}ms p99 {latency['p99'] * 1e3:.2f}ms, "
              f"{workloads['total_evictions']} evictions / "
              f"{workloads['total_resurrections']} resurrections")
        print(f"idle session: live {workloads['live_session_idle_bytes'] / 1024:.1f}KiB "
              f"-> evicted {workloads['evicted_session_idle_bytes'] / 1024:.1f}KiB "
              f"({workloads['eviction_memory_ratio']:.2f}x); "
              f"eviction equivalence "
              f"{'holds' if workloads['eviction_equivalence'] else 'VIOLATED'}")
        return 0

    if args.suite == "pr9":
        payload = collect_pr9()
        out = args.out if args.out is not None else PR9_OUT
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
        for tier, tier_data in payload["tiers"].items():
            for threads, cell in tier_data["threads"].items():
                dist = cell["sparse_distributed_round_seconds"]
                print(f"{tier} threads={threads} distributed round: "
                      + ", ".join(f"n={n} {t:.2f}s" for n, t in dist.items()))
        scaling = payload["thread_scaling"]
        print(f"thread scaling ({scaling['tier']} {scaling['workload']}): "
              + ", ".join(f"{t}->{s:.2f}s" for t, s in scaling["seconds"].items())
              + f"; saturates at {scaling['saturation_threads']} thread(s)")
        return 0

    if args.suite == "sparse":
        payload = collect_sparse()
        out = args.out if args.out is not None else SPARSE_OUT
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        workloads = payload["workloads"]
        print(f"wrote {out}")
        dist = workloads["sparse_distributed_round_seconds"]
        print("sparse distributed round: "
              + ", ".join(f"n={n} {t:.2f}s" for n, t in dist.items()))
        print(f"n=2000 speedup over batched: centralized "
              f"{workloads['sparse_speedup_n2000_centralized']:.2f}x, distributed "
              f"{workloads['sparse_speedup_n2000_distributed']:.2f}x")
        print(f"distributed scaling exponent (10k -> 50k): "
              f"{workloads['sparse_distributed_scaling_exponent']:.2f}")
        return 0

    payload = collect()
    out = args.out if args.out is not None else DEFAULT_OUT
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    workloads = payload["workloads"]
    print(f"wrote {out}")
    print(f"distributed n=200 transient: "
          f"legacy {workloads['distributed_deployment_n200_seconds']['legacy']:.2f}s, "
          f"batched {workloads['distributed_deployment_n200_seconds']['batched']:.2f}s "
          f"({workloads['distributed_speedup_n200']:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
