"""Perf-trajectory exporter: measure the hot paths, write ``BENCH_PR4.json``.

The repo's performance work (PR 1: centralized round engine, PR 4:
distributed round engine) needs a *recorded* trajectory to be measured
against, so this runner times the canonical workloads and writes them
to a committed JSON baseline:

* centralized round time (batched engine), N in {50, 200, 500};
* distributed round time (legacy and batched backends), N in
  {50, 200, 500}, uniform random deployment;
* the N=200 k=2 corner-cluster *distributed deployment transient*
  (6 rounds) under both backends, plus the batched-over-legacy speedup
  — the acceptance workload of the round-level backend;
* wall-clock of a small serial scenario sweep (cold cache).

Usage::

    PYTHONPATH=src python benchmarks/export_bench.py                # write benchmarks/BENCH_PR4.json
    PYTHONPATH=src python benchmarks/export_bench.py --out NEW.json
    PYTHONPATH=src python benchmarks/export_bench.py --check benchmarks/BENCH_PR4.json

``--check`` re-measures the regression-relevant subset (round times and
the deployment transient; the sweep is skipped — its wall-clock is
dominated by process/cache housekeeping) and exits non-zero when any
measurement exceeds ``baseline * machine_scale * factor`` (factor
defaults to 2.0) or the deployment-transient speedup fell below half
its recorded value.  ``machine_scale`` is the ratio of a fixed
scalar-geometry calibration workload on the checking machine vs the
baseline machine, so a uniformly slower CI runner does not trip the
gate while a genuine round-engine regression — which leaves the
calibration workload untouched — still does.  The speedup floor is
machine-independent outright.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict

import numpy as np

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_PR4.json"

ROUND_SIZES = (50, 200, 500)
ENGINES = ("legacy", "batched")

#: The canonical N=200 k=2 corner-cluster distributed transient — the
#: round-level backend's acceptance workload.  Single source of truth,
#: shared with ``test_bench_microbenchmarks.test_distributed_deployment
#: _n200_k2`` so the committed baseline and the tracked pytest
#: benchmark can never drift onto different workloads.
TRANSIENT_WORKLOAD = dict(
    node_count=200,
    comm_range=0.25,
    placement_seed=11,
    k=2,
    alpha=1.0,
    epsilon=1e-3,
    max_rounds=6,
    seed=11,
)


def build_transient_deployment(engine_name: str) -> Callable[[], object]:
    """Zero-arg callable running the canonical distributed transient."""
    from repro.api import Simulation
    from repro.core.config import LaacadConfig
    from repro.network.network import SensorNetwork
    from repro.regions.shapes import unit_square

    region = unit_square()
    params = TRANSIENT_WORKLOAD

    def deploy():
        network = SensorNetwork.from_corner_cluster(
            region,
            params["node_count"],
            comm_range=params["comm_range"],
            rng=np.random.default_rng(params["placement_seed"]),
        )
        config = LaacadConfig(
            k=params["k"],
            alpha=params["alpha"],
            epsilon=params["epsilon"],
            max_rounds=params["max_rounds"],
            seed=params["seed"],
            engine=engine_name,
        )
        return Simulation(network=network, config=config, kind="distributed").run()

    return deploy


def _best_of(fn: Callable[[], None], repeats: int = 3) -> float:
    """Minimum wall-clock of ``repeats`` runs (noise-robust point estimate)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _uniform_network(n: int, seed: int = 7):
    from repro.network.network import SensorNetwork
    from repro.regions.shapes import unit_square

    region = unit_square()
    return SensorNetwork(
        region, region.random_points(n, rng=np.random.default_rng(seed)), comm_range=0.25
    )


def measure_centralized_rounds() -> Dict[str, float]:
    """One batched-engine round of region computation per network size."""
    from repro.core.config import LaacadConfig
    from repro.engine import make_engine

    results: Dict[str, float] = {}
    for n in ROUND_SIZES:
        network = _uniform_network(n)
        engine = make_engine("batched", network, LaacadConfig(k=2, engine="batched"))
        results[str(n)] = _best_of(engine.compute_round)
    return results


def measure_distributed_rounds() -> Dict[str, Dict[str, float]]:
    """One protocol round (gather + regions) per backend per size."""
    from repro.core.config import LaacadConfig
    from repro.runtime.engines import make_distributed_engine
    from repro.runtime.scheduler import SynchronousScheduler

    results: Dict[str, Dict[str, float]] = {engine: {} for engine in ENGINES}
    for engine_name in ENGINES:
        for n in ROUND_SIZES:
            network = _uniform_network(n)
            config = LaacadConfig(k=2, engine=engine_name)
            scheduler = SynchronousScheduler()
            engine = make_distributed_engine(engine_name, network, config, scheduler)
            scheduler.begin_round()
            results[engine_name][str(n)] = _best_of(lambda: engine.run_round(0))
    return results


def measure_distributed_deployment() -> Dict[str, float]:
    """The N=200 k=2 corner-cluster distributed transient (6 rounds)."""
    return {
        engine_name: _best_of(build_transient_deployment(engine_name), repeats=2)
        for engine_name in ENGINES
    }


def measure_calibration() -> float:
    """Machine-speed yardstick: a fixed scalar-geometry workload.

    The regression check normalises the absolute baseline times by the
    ratio of this measurement (check machine vs baseline machine), so a
    uniformly slower runner does not trip the gate while a genuine
    round-engine regression — which leaves this scalar workload
    untouched — still does.
    """
    from repro.regions.shapes import unit_square
    from repro.voronoi.dominating import compute_dominating_region

    region = unit_square()
    sites = region.random_points(200, rng=np.random.default_rng(2))

    def workload():
        for site in sites[:60]:
            others = [p for p in sites if p is not site]
            compute_dominating_region(site, others, region, 2)

    return _best_of(workload, repeats=5)


def measure_sweep() -> float:
    """Serial 2x2 scenario sweep, cold content-addressed cache."""
    from repro.scenarios import SweepRunner, expand_grid, make_scenario

    base = make_scenario("open_field", node_count=20, max_rounds=10)
    specs = expand_grid(base, {"k": [1, 2], "node_count": [15, 25]})
    with tempfile.TemporaryDirectory() as cache_dir:
        runner = SweepRunner(cache_dir=Path(cache_dir), jobs=1)
        start = time.perf_counter()
        runner.run(specs)
        return time.perf_counter() - start


def collect(include_sweep: bool = True) -> Dict[str, object]:
    distributed_rounds = measure_distributed_rounds()
    deployment = measure_distributed_deployment()
    payload: Dict[str, object] = {
        "bench_format_version": 1,
        "label": "PR4",
        "calibration_seconds": measure_calibration(),
        "workloads": {
            "centralized_round_seconds": measure_centralized_rounds(),
            "distributed_round_seconds": distributed_rounds,
            "distributed_deployment_n200_seconds": deployment,
            "distributed_speedup_n200": deployment["legacy"] / deployment["batched"],
        },
    }
    if include_sweep:
        payload["workloads"]["sweep_2x2_seconds"] = measure_sweep()
    return payload


def check(baseline_path: Path, factor: float) -> int:
    """Re-measure and compare; returns a process exit code."""
    baseline_payload = json.loads(baseline_path.read_text())
    baseline = baseline_payload["workloads"]
    current_payload = collect(include_sweep=False)
    current = current_payload["workloads"]
    failures = []

    # Normalise for machine speed: the allowed budget scales with how
    # this machine performs on the calibration workload relative to the
    # machine that recorded the baseline.
    scale = current_payload["calibration_seconds"] / baseline_payload[
        "calibration_seconds"
    ]
    print(f"machine-speed scale vs baseline: {scale:.2f}x "
          f"(calibration {current_payload['calibration_seconds']:.3f}s "
          f"vs {baseline_payload['calibration_seconds']:.3f}s)\n")

    def compare(label: str, base_value: float, new_value: float) -> None:
        status = "ok"
        if new_value > base_value * scale * factor:
            status = f"REGRESSION (> {factor:.1f}x speed-scaled baseline)"
            failures.append(label)
        print(f"{label:55s} baseline {base_value:8.3f}s now {new_value:8.3f}s  {status}")

    for n, base_value in baseline["centralized_round_seconds"].items():
        compare(
            f"centralized round n={n}",
            base_value,
            current["centralized_round_seconds"][n],
        )
    for engine_name, per_size in baseline["distributed_round_seconds"].items():
        for n, base_value in per_size.items():
            compare(
                f"distributed round [{engine_name}] n={n}",
                base_value,
                current["distributed_round_seconds"][engine_name][n],
            )
    for engine_name, base_value in baseline[
        "distributed_deployment_n200_seconds"
    ].items():
        compare(
            f"distributed deployment n=200 [{engine_name}]",
            base_value,
            current["distributed_deployment_n200_seconds"][engine_name],
        )

    base_speedup = baseline["distributed_speedup_n200"]
    new_speedup = current["distributed_speedup_n200"]
    print(f"{'distributed n=200 speedup (batched over legacy)':55s} "
          f"baseline {base_speedup:7.2f}x now {new_speedup:7.2f}x")
    if new_speedup < base_speedup / 2.0:
        failures.append("distributed_speedup_n200")
        print("REGRESSION: the deployment-transient speedup halved")

    if failures:
        print(f"\nFAILED: {len(failures)} regression(s): {', '.join(failures)}")
        return 1
    print("\nOK: no measurement regressed beyond the allowed factor")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the baseline JSON")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare fresh measurements against a committed baseline")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="allowed slowdown factor in --check mode (default 2.0)")
    args = parser.parse_args(argv)

    if args.check is not None:
        return check(args.check, args.factor)

    payload = collect()
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    workloads = payload["workloads"]
    print(f"wrote {args.out}")
    print(f"distributed n=200 transient: "
          f"legacy {workloads['distributed_deployment_n200_seconds']['legacy']:.2f}s, "
          f"batched {workloads['distributed_deployment_n200_seconds']['batched']:.2f}s "
          f"({workloads['distributed_speedup_n200']:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
