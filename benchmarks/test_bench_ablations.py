"""Ablation benchmarks: step size, localized computation, protocol overhead."""

import pytest

from repro.experiments.ablations import (
    run_alpha_ablation,
    run_localized_ablation,
    run_protocol_overhead,
)


@pytest.mark.benchmark(group="ablation-alpha")
def test_ablation_alpha(run_and_record):
    result = run_and_record(
        run_alpha_ablation, alphas=(0.25, 0.5, 1.0), node_count=30, k=2, max_rounds=150
    )
    rows = {row["alpha"]: row for row in result.rows}
    # Smaller steps converge more slowly (the paper's remark on alpha).
    assert rows[0.25]["rounds"] >= rows[1.0]["rounds"]
    # All step sizes land at a comparable objective value.
    best = min(row["max_sensing_range"] for row in result.rows)
    worst = max(row["max_sensing_range"] for row in result.rows)
    assert worst <= 1.3 * best


@pytest.mark.benchmark(group="ablation-localized")
def test_ablation_localized(run_and_record):
    result = run_and_record(run_localized_ablation, node_count=30, k_values=(1, 2, 3))
    for row in result.rows:
        # Lemma 1: the expanding-ring computation is exact.
        assert row["max_range_difference"] < 1e-6
        # And it is genuinely local: only a few hops ever get involved.
        assert row["mean_neighbors_used"] < row["node_count"] - 1
    hops = [row["mean_hops"] for row in result.rows]
    assert hops == sorted(hops)


@pytest.mark.benchmark(group="ablation-protocol")
def test_ablation_protocol_overhead(run_and_record):
    result = run_and_record(
        run_protocol_overhead, node_count=25, k=2, max_rounds=50
    )
    assert result.metadata["total_messages"] > 0
    # Communication per round shrinks as the deployment settles (the
    # expanding rings stop growing once regions are local).
    first = result.rows[0]["messages"]
    last = result.rows[-1]["messages"]
    assert last <= first
