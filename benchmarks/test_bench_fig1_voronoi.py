"""Benchmark / regeneration of Figure 1: k-order Voronoi partitions.

Checks that the recovered cells tile the area and that cell counts stay
within the O(k(N-k)) bound while timing the diagram construction.
"""

import pytest

from repro.experiments.fig1_voronoi import run_fig1_voronoi


@pytest.mark.benchmark(group="fig1")
def test_fig1_voronoi(run_and_record):
    result = run_and_record(
        run_fig1_voronoi, node_count=30, k_values=(1, 2, 3, 4), seed_resolution=50
    )
    assert len(result.rows) == 4
    for row in result.rows:
        assert row["total_cell_area"] == pytest.approx(row["region_area"], rel=0.03)
        # The k-order dominating regions tile the area with multiplicity k.
        assert row["mean_dominating_area"] * 30 == pytest.approx(
            row["k"] * row["region_area"], rel=0.02
        )
    assert result.filter_rows(k=1)[0]["num_cells"] == 30
