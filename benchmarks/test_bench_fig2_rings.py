"""Benchmark / regeneration of Figure 2: locality of the dominating-region computation."""

import pytest

from repro.experiments.fig2_rings import run_fig2_rings


@pytest.mark.benchmark(group="fig2")
def test_fig2_rings(run_and_record):
    result = run_and_record(run_fig2_rings, k_values=tuple(range(1, 13)))
    hops = {row["k"]: row["hops"] for row in result.rows}
    # Paper's Figure 2 shape: 1 hop suffices for k=1, 2 hops for k=2..4,
    # and a bounded number (<= 4) of hops up to k = 12.
    assert hops[1] == 1
    assert all(hops[k] == 2 for k in (2, 3, 4))
    assert all(hops[k] >= 3 for k in range(5, 13))
    assert max(hops.values()) <= 4
    # Dominating-region area grows linearly with k on a regular lattice.
    areas = [row["dominating_area"] for row in result.rows]
    assert areas == sorted(areas)
    assert areas[11] == pytest.approx(12 * areas[0], rel=0.05)
