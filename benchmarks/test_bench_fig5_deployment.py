"""Benchmark / regeneration of Figure 5: corner-cluster k-coverage deployments."""

import pytest

from repro.experiments.fig5_deployment import run_fig5_deployment


@pytest.mark.benchmark(group="fig5")
def test_fig5_deployment(run_and_record):
    result = run_and_record(
        run_fig5_deployment,
        node_count=40,
        k_values=(1, 2, 3, 4),
        max_rounds=120,
        coverage_resolution=50,
    )
    rows = {row["k"]: row for row in result.rows if "coverage_fraction" in row}
    assert set(rows) == {1, 2, 3, 4}
    for k, row in rows.items():
        # Full k-coverage of the area for every coverage order.
        assert row["coverage_fraction"] == 1.0
        assert row["min_coverage"] >= k
    # Higher k needs larger sensing ranges.
    ranges = [rows[k]["max_sensing_range"] for k in (1, 2, 3, 4)]
    assert ranges == sorted(ranges)
    # Even clustering: the nearest-neighbour statistic shrinks with k.
    assert rows[3]["clustering_statistic"] < rows[1]["clustering_statistic"]
