"""Benchmark / regeneration of Figure 6: convergence of the max/min circumradii."""

import pytest

from repro.experiments.fig6_convergence import run_fig6_convergence


@pytest.mark.benchmark(group="fig6")
def test_fig6_convergence(run_and_record):
    result = run_and_record(
        run_fig6_convergence, node_count=40, k_values=(1, 2, 3, 4), max_rounds=120
    )
    summaries = result.metadata["summaries"]
    for k in ("1", "2", "3", "4"):
        summary = summaries[k]
        # Paper's observations: monotone decreasing maximum circumradius,
        # and max ≈ min at convergence (load balance), tighter for larger k.
        assert summary["max_trace_monotone"]
        assert summary["final_gap_relative"] < 0.35
    assert summaries["4"]["final_max_circumradius"] > summaries["1"]["final_max_circumradius"]
    # The traces start from comparable values (all nodes begin at the
    # corner, so the initial max circumradius is boundary-dominated).
    first_rounds = {
        k: result.filter_rows(k=int(k), round=0)[0]["max_circumradius"]
        for k in ("1", "4")
    }
    assert first_rounds["4"] == pytest.approx(first_rounds["1"], rel=0.35)
