"""Benchmark / regeneration of Figure 7: sensing load vs network size."""

import pytest

from repro.experiments.fig7_energy import run_fig7_energy


@pytest.mark.benchmark(group="fig7")
def test_fig7_energy(run_and_record):
    result = run_and_record(
        run_fig7_energy,
        node_counts=(20, 60, 100),
        k_values=(1, 2, 3),
        max_rounds=60,
        coverage_resolution=40,
    )

    def row(n, k):
        return result.filter_rows(node_count=n, k=k)[0]

    # Figure 7(a): the maximum load decreases with N and increases with k.
    for k in (1, 2, 3):
        assert row(100, k)["max_load"] < row(20, k)["max_load"]
    for n in (20, 60, 100):
        assert row(n, 1)["max_load"] < row(n, 2)["max_load"] < row(n, 3)["max_load"]

    # The max-load ratio between coverage orders is roughly k1/k2 (paper's
    # observation that every node ends up covering about k|A|/N).
    ratio = row(100, 2)["max_load"] / row(100, 1)["max_load"]
    assert 1.4 < ratio < 2.8

    # Figure 7(b): the total load decreases with N for every k.
    for k in (1, 2, 3):
        assert row(100, k)["total_load"] < row(20, k)["total_load"]

    # Every run is a valid k-coverage deployment.
    for entry in result.rows:
        assert entry["coverage_fraction"] == 1.0
