"""Benchmark / regeneration of Figure 8: irregular areas with obstacles."""

import pytest

from repro.experiments.fig8_obstacles import run_fig8_obstacles


@pytest.mark.benchmark(group="fig8")
def test_fig8_obstacles(run_and_record):
    result = run_and_record(
        run_fig8_obstacles,
        node_count=45,
        k_values=(2, 4),
        max_rounds=80,
        coverage_resolution=55,
    )
    assert len(result.rows) == 4  # 2 regions x 2 coverage orders
    for row in result.rows:
        # LAACAD adapts to non-convex boundaries and obstacles: full (or
        # near-full, up to grid sampling at the obstacle corners) coverage
        # with every node remaining in the free space.
        assert row["coverage_fraction"] >= 0.99
        assert row["all_nodes_in_free_area"]
    # Higher coverage order needs a larger sensing range on the same region.
    for region in ("region-I", "region-II"):
        k2 = result.filter_rows(region=region, k=2)[0]
        k4 = result.filter_rows(region=region, k=4)[0]
        assert k4["max_sensing_range"] > k2["max_sensing_range"]
