"""Micro-benchmarks of the geometric kernels LAACAD spends its time in.

These are conventional timing benchmarks (multiple rounds) for the two
inner loops: the budgeted-clipping dominating-region computation and
Welzl's smallest enclosing circle, plus the round-engine comparison
benchmarks tracking the batched backend's speedup over the legacy
per-node path (single-round timings for N in {50, 200, 500} and the
N=200, k=2 corner-cluster deployment).
"""

import numpy as np
import pytest

from repro.core.config import LaacadConfig
from repro.api import Simulation
from repro.engine import make_engine
from repro.geometry.welzl import welzl_disk
from repro.regions.shapes import unit_square
from repro.voronoi.dominating import compute_dominating_region
from repro.core.dominating import localized_dominating_region
from repro.network.network import SensorNetwork


@pytest.fixture(scope="module")
def sites_100():
    region = unit_square()
    rng = np.random.default_rng(2)
    return region, region.random_points(100, rng=rng)


@pytest.mark.benchmark(group="micro-dominating")
@pytest.mark.parametrize("k", [1, 2, 4])
def test_dominating_region_speed(benchmark, sites_100, k):
    region, sites = sites_100
    others = sites[1:]
    result = benchmark(lambda: compute_dominating_region(sites[0], others, region, k))
    assert result.area > 0


@pytest.mark.benchmark(group="micro-localized")
def test_localized_dominating_region_speed(benchmark, sites_100):
    region, sites = sites_100
    network = SensorNetwork(region, sites, comm_range=0.2)
    result = benchmark(lambda: localized_dominating_region(network, 0, 2))
    assert result.region.area > 0


@pytest.mark.benchmark(group="micro-welzl")
@pytest.mark.parametrize("size", [10, 100, 1000])
def test_welzl_speed(benchmark, size):
    rng = np.random.default_rng(size)
    points = [tuple(p) for p in rng.uniform(0, 1, size=(size, 2))]
    circle = benchmark(lambda: welzl_disk(points))
    assert circle.radius > 0


# ----------------------------------------------------------------------
# Round-engine comparisons (batched vs. legacy)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="engine-round")
@pytest.mark.parametrize("engine_name", ["legacy", "batched"])
@pytest.mark.parametrize("n", [50, 200, 500])
def test_engine_round_time(benchmark, engine_name, n):
    """One full round of region computation on a random deployment.

    The ``engine-round`` group tracks the per-round speedup of the
    batched array-native engine over the legacy per-node path as the
    network grows.
    """
    region = unit_square()
    network = SensorNetwork(
        region, region.random_points(n, rng=np.random.default_rng(7)), comm_range=0.25
    )
    config = LaacadConfig(k=2, engine=engine_name)
    engine = make_engine(engine_name, network, config)
    result = benchmark.pedantic(engine.compute_round, rounds=1, iterations=1)
    assert len(result.regions) == n
    benchmark.extra_info["engine"] = engine_name
    benchmark.extra_info["n"] = n


# ----------------------------------------------------------------------
# Distributed-engine comparisons (batched vs. legacy protocol backends)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="distributed-round")
@pytest.mark.parametrize("engine_name", ["legacy", "batched"])
@pytest.mark.parametrize("n", [50, 200, 500])
def test_distributed_round_time(benchmark, engine_name, n):
    """One full protocol round (gather + regions) on a random deployment.

    The ``distributed-round`` group tracks the round-level backend's
    speedup over the message-level agent path as the network grows.
    """
    from repro.runtime.engines import make_distributed_engine
    from repro.runtime.scheduler import SynchronousScheduler

    region = unit_square()
    network = SensorNetwork(
        region, region.random_points(n, rng=np.random.default_rng(7)), comm_range=0.25
    )
    config = LaacadConfig(k=2, engine=engine_name)
    scheduler = SynchronousScheduler()
    engine = make_distributed_engine(engine_name, network, config, scheduler)
    scheduler.begin_round()
    result = benchmark.pedantic(lambda: engine.run_round(0), rounds=1, iterations=1)
    assert len(result.regions) == n
    benchmark.extra_info["engine"] = engine_name
    benchmark.extra_info["n"] = n


@pytest.mark.benchmark(group="distributed-deployment")
@pytest.mark.parametrize("engine_name", ["legacy", "batched"])
def test_distributed_deployment_n200_k2(benchmark, engine_name):
    """The N=200, k=2 corner-cluster *distributed* deployment transient.

    The acceptance workload of the round-level backend: clustered nodes
    mean enormous expanding rings (nearly every node is a ring-1 member
    of every other), which is exactly where per-message simulation
    drowns in Python overhead.  The batched engine is expected to be
    >= 3x faster here; both engines produce bitwise-identical results
    (enforced by tests/test_distributed_engine_equivalence.py).  The
    workload definition is shared with ``export_bench.py`` so the
    committed BENCH_PR4.json baseline tracks exactly this benchmark.
    """
    from export_bench import TRANSIENT_WORKLOAD, build_transient_deployment

    deploy = build_transient_deployment(engine_name)
    result = benchmark.pedantic(deploy, rounds=1, iterations=1)
    assert result.rounds_executed == TRANSIENT_WORKLOAD["max_rounds"]
    assert result.communication.messages > 0
    benchmark.extra_info["engine"] = engine_name
    benchmark.extra_info["max_sensing_range"] = result.max_sensing_range


@pytest.mark.benchmark(group="engine-deployment")
@pytest.mark.parametrize("engine_name", ["legacy", "batched"])
def test_engine_full_deployment_n200_k2(benchmark, engine_name):
    """The N=200, k=2 corner-cluster deployment (Figure 5 workload).

    Runs the deployment transient — the rounds in which the cluster
    actually spreads across the area, after which only epsilon-level
    refinement remains — under each engine.  The batched engine is
    expected to be at least ~3x faster here; in the converged
    steady-state the gap narrows to ~2x (see DESIGN.md).
    """
    region = unit_square()

    def deploy():
        network = SensorNetwork.from_corner_cluster(
            region, 200, comm_range=0.25, rng=np.random.default_rng(11)
        )
        config = LaacadConfig(
            k=2, alpha=1.0, epsilon=1e-3, max_rounds=6, seed=11, engine=engine_name
        )
        return Simulation(network=network, config=config).run()

    result = benchmark.pedantic(deploy, rounds=1, iterations=1)
    assert result.rounds_executed == 6
    assert result.max_sensing_range > 0
    benchmark.extra_info["engine"] = engine_name
    benchmark.extra_info["max_sensing_range"] = result.max_sensing_range
