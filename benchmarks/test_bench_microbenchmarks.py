"""Micro-benchmarks of the geometric kernels LAACAD spends its time in.

These are conventional timing benchmarks (multiple rounds) for the two
inner loops: the budgeted-clipping dominating-region computation and
Welzl's smallest enclosing circle.  They are what you would profile when
porting the engine to a faster backend.
"""

import numpy as np
import pytest

from repro.geometry.welzl import welzl_disk
from repro.regions.shapes import unit_square
from repro.voronoi.dominating import compute_dominating_region
from repro.core.dominating import localized_dominating_region
from repro.network.network import SensorNetwork


@pytest.fixture(scope="module")
def sites_100():
    region = unit_square()
    rng = np.random.default_rng(2)
    return region, region.random_points(100, rng=rng)


@pytest.mark.benchmark(group="micro-dominating")
@pytest.mark.parametrize("k", [1, 2, 4])
def test_dominating_region_speed(benchmark, sites_100, k):
    region, sites = sites_100
    others = sites[1:]
    result = benchmark(lambda: compute_dominating_region(sites[0], others, region, k))
    assert result.area > 0


@pytest.mark.benchmark(group="micro-localized")
def test_localized_dominating_region_speed(benchmark, sites_100):
    region, sites = sites_100
    network = SensorNetwork(region, sites, comm_range=0.2)
    result = benchmark(lambda: localized_dominating_region(network, 0, 2))
    assert result.region.area > 0


@pytest.mark.benchmark(group="micro-welzl")
@pytest.mark.parametrize("size", [10, 100, 1000])
def test_welzl_speed(benchmark, size):
    rng = np.random.default_rng(size)
    points = [tuple(p) for p in rng.uniform(0, 1, size=(size, 2))]
    circle = benchmark(lambda: welzl_disk(points))
    assert circle.radius > 0
