"""Service-layer load benchmarks: creates/sec, step latency, memory.

Small-scale siblings of ``export_bench.py --suite service`` (which
hosts 1000 sessions and records ``BENCH_PR8.json``): these run inside
the tier-1 suite on every push, so they exercise the same hot paths —
concurrent creation under an active eviction budget, stepping mostly
evicted sessions (each step pays a resurrection), and the batched
event fan-out — at a scale that stays cheap.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import Simulation
from repro.service import SessionManager

SCENARIO = dict(node_count=8, k=1, max_rounds=8, epsilon=2e-3)
SESSIONS = 50
MAX_LIVE = 8


@pytest.mark.benchmark(group="service-create")
def test_concurrent_session_creation_under_eviction(benchmark):
    """Create 50 sessions concurrently with only 8 allowed live."""

    def workload():
        async def main():
            manager = SessionManager(max_live_sessions=MAX_LIVE)
            await asyncio.gather(
                *(
                    manager.create(f"s{i}", **dict(SCENARIO, seed=i))
                    for i in range(SESSIONS)
                )
            )
            stats = manager.stats()
            await manager.close()
            return stats

        return asyncio.run(main())

    stats = benchmark.pedantic(workload, rounds=3, iterations=1)
    benchmark.extra_info["sessions"] = SESSIONS
    benchmark.extra_info["evictions"] = stats["total_evictions"]
    assert stats["live_sessions"] <= MAX_LIVE
    assert stats["evicted_sessions"] == SESSIONS - stats["live_sessions"]
    assert stats["total_evictions"] >= SESSIONS - MAX_LIVE


@pytest.mark.benchmark(group="service-step")
def test_step_latency_with_resurrection(benchmark):
    """Step every session once; almost all steps resurrect from a blob."""

    def workload():
        async def main():
            manager = SessionManager(max_live_sessions=MAX_LIVE)
            for i in range(SESSIONS):
                await manager.create(f"s{i}", **dict(SCENARIO, seed=i))
            await asyncio.gather(
                *(
                    manager.step(f"s{i}", include_events=False)
                    for i in range(SESSIONS)
                )
            )
            stats = manager.stats()
            await manager.close()
            return stats

        return asyncio.run(main())

    stats = benchmark.pedantic(workload, rounds=3, iterations=1)
    benchmark.extra_info["resurrections"] = stats["total_resurrections"]
    assert stats["total_steps"] == SESSIONS
    assert stats["total_resurrections"] >= SESSIONS - MAX_LIVE


@pytest.mark.benchmark(group="service-fanout")
def test_batched_event_fanout(benchmark):
    """Run one session to completion with 10 batching subscribers."""

    def workload():
        async def main():
            manager = SessionManager(batch_max_events=4, batch_max_latency=60.0)
            await manager.create("watched", **dict(SCENARIO, seed=1))
            subs = [await manager.subscribe("watched") for _ in range(10)]
            await manager.run_to_round("watched", SCENARIO["max_rounds"])
            totals = []
            for sub in subs:
                seen = 0
                while True:
                    batch = await manager.next_batch("watched", sub, timeout=0.05)
                    if batch is None:
                        break
                    seen += batch["event_count"]
                totals.append(seen)
            rounds = manager.info("watched")["rounds_executed"]
            await manager.close()
            return rounds, totals

        return asyncio.run(main())

    rounds, totals = benchmark.pedantic(workload, rounds=3, iterations=1)
    assert totals == [rounds] * 10, "every subscriber sees every round, batched"


@pytest.mark.benchmark(group="service-memory")
def test_eviction_memory_footprint(benchmark):
    """The blob an evicted session keeps resident vs its live estimate."""
    from repro.service import estimate_live_nbytes

    def workload():
        sim = Simulation(**dict(SCENARIO, seed=2))
        sim.step()
        return sim.checkpoint().nbytes

    blob_nbytes = benchmark.pedantic(workload, rounds=3, iterations=1)
    live_estimate = estimate_live_nbytes(SCENARIO["node_count"])
    benchmark.extra_info["evicted_bytes"] = blob_nbytes
    benchmark.extra_info["live_estimate_bytes"] = live_estimate
    assert 0 < blob_nbytes < live_estimate
