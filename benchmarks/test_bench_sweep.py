"""Benchmark: sweep orchestration wall-clock, serial vs worker pool.

Runs the same 3x3 scenario grid (N = 50 nodes; three coverage orders x
three placement seeds) through the SweepRunner twice — serially and with
``jobs=4`` — and records both wall-clock times plus the speedup.  On a
multi-core machine the pooled sweep must beat the serial one; on a
single-core machine the numbers are recorded but not asserted (process
fan-out cannot win without cores).

A third, cache-warm pass documents the resumability contract: it must
perform zero simulation work.
"""

from __future__ import annotations

import os
import time

from repro.scenarios import SweepRunner, expand_grid, make_scenario


def _benchmark_grid():
    base = make_scenario("open_field", node_count=50, max_rounds=12, seed=77)
    return expand_grid(base, {"k": [1, 2, 3], "placement_seed": [101, 102, 103]})


def test_sweep_serial_vs_jobs4(benchmark, tmp_path):
    specs = _benchmark_grid()

    def serial_sweep():
        return SweepRunner(jobs=1).run(specs)

    serial_report = benchmark.pedantic(serial_sweep, rounds=1, iterations=1)

    start = time.perf_counter()
    parallel_report = SweepRunner(jobs=4).run(specs)
    parallel_seconds = time.perf_counter() - start

    assert parallel_report.results == serial_report.results

    cache_runner = SweepRunner(cache_dir=tmp_path, jobs=4)
    cache_runner.run(specs)
    warm = cache_runner.run(specs)
    assert warm.misses == 0, "second sweep over the same grid must be all cache hits"

    cpus = os.cpu_count() or 1
    benchmark.extra_info["grid_cells"] = len(specs)
    benchmark.extra_info["serial_seconds"] = serial_report.elapsed_seconds
    benchmark.extra_info["jobs4_seconds"] = parallel_seconds
    benchmark.extra_info["speedup"] = (
        serial_report.elapsed_seconds / parallel_seconds if parallel_seconds else 0.0
    )
    benchmark.extra_info["cpus"] = cpus
    benchmark.extra_info["cache_warm_seconds"] = warm.elapsed_seconds

    if cpus >= 2:
        assert parallel_seconds < serial_report.elapsed_seconds, (
            f"jobs=4 ({parallel_seconds:.2f}s) should beat serial "
            f"({serial_report.elapsed_seconds:.2f}s) on {cpus} cores"
        )
