"""Benchmark / regeneration of Table I: LAACAD vs the Bai et al. 2-coverage bound."""

import pytest

from repro.experiments.table1_minnode import run_table1_minnode


@pytest.mark.benchmark(group="table1")
def test_table1_minnode(run_and_record):
    result = run_and_record(
        run_table1_minnode, node_counts=(150, 200, 250), max_rounds=50, comm_range=0.12
    )
    assert len(result.rows) == 3
    for row in result.rows:
        # LAACAD needs more nodes than the boundary-free optimal density,
        # but stays within a modest factor (the paper reports about +15%;
        # the reduced scale has a relatively larger boundary, so allow up
        # to ~1.6x).
        assert 1.0 < row["laacad_over_bound"] < 1.6
    # Larger networks achieve smaller sensing ranges.
    ranges = [row["max_sensing_range"] for row in result.rows]
    assert ranges == sorted(ranges, reverse=True)
