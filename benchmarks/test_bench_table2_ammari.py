"""Benchmark / regeneration of Table II: LAACAD vs the Ammari-Das lens deployment."""

import pytest

from repro.experiments.table2_ammari import run_table2_ammari


@pytest.mark.benchmark(group="table2")
def test_table2_ammari(run_and_record):
    result = run_and_record(
        run_table2_ammari, node_count=80, k_values=(3, 4, 5), max_rounds=60
    )
    assert len(result.rows) == 3
    for row in result.rows:
        # The lens deployment needs substantially more nodes than LAACAD
        # used, at LAACAD's own achieved sensing range (the Table II claim).
        assert row["ammari_nodes"] > row["laacad_nodes"]
        assert row["ammari_over_laacad"] > 1.3
    # Larger k needs a larger sensing range with a fixed node count.
    ranges = [row["max_sensing_range"] for row in result.rows]
    assert ranges == sorted(ranges)
