"""Shared size scaling for the example scripts.

Every example reads ``REPRO_EXAMPLE_SCALE`` (a float factor, default 1.0)
so the smoke test can execute all of them at a fraction of their
demonstration sizes.  ``scaled(40)`` is 40 in a normal run and e.g. 10
under ``REPRO_EXAMPLE_SCALE=0.25``.
"""

from __future__ import annotations

import os


def scale_factor() -> float:
    """The configured example scale factor (default 1.0)."""
    raw = os.environ.get("REPRO_EXAMPLE_SCALE", "").strip()
    return float(raw) if raw else 1.0


def scaled(value: int, minimum: int = 6) -> int:
    """Scale an integer size (node counts, rounds), with a floor."""
    return max(minimum, int(round(value * scale_factor())))
