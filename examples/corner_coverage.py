#!/usr/bin/env python3
"""The paper's headline scenario (Figures 5 and 6).

All nodes start clustered at the bottom-left corner of the area; LAACAD
first spreads them out (expanding phase) and then balances the sensing
load (converging phase).  The script runs k = 1..3, prints the
convergence traces, and shows the "even clustering" effect: for k >= 2
the converged nodes sit in tight groups of roughly k.
"""

from __future__ import annotations

from _scale import scaled

from repro import evaluate_coverage, unit_square
from repro.experiments.fig5_deployment import clustering_statistic, nearest_neighbor_distances
from repro.scenarios import make_scenario


def render_ascii_map(positions, width: int = 48, height: int = 24) -> str:
    """A coarse ASCII rendering of node positions in the unit square."""
    grid = [[" " for _ in range(width)] for _ in range(height)]
    for x, y in positions:
        col = min(width - 1, int(x * width))
        row = min(height - 1, int((1.0 - y) * height))
        grid[row][col] = "o" if grid[row][col] == " " else "O"
    border = "+" + "-" * width + "+"
    return "\n".join([border] + ["|" + "".join(row) + "|" for row in grid] + [border])


def main() -> None:
    region = unit_square()
    for k in (1, 2, 3):
        spec = make_scenario(
            "corner_cluster",
            node_count=scaled(45, minimum=12),
            k=k,
            comm_range=0.25,
            max_rounds=scaled(120, minimum=30),
            seed=5,
        )
        result = spec.simulation().run()
        coverage = evaluate_coverage(
            result.final_positions, result.sensing_ranges, region, k, resolution=50
        )
        nn = nearest_neighbor_distances(result.final_positions)
        print(f"=== k = {k} ===")
        print(f"rounds: {result.rounds_executed}, converged: {result.converged}")
        print(f"R* = {result.max_sensing_range:.4f}, r_min = {result.min_sensing_range:.4f}")
        print(f"coverage fraction: {coverage.fraction_k_covered:.4f}")
        print(
            "clustering statistic: "
            f"{clustering_statistic(result.final_positions, k, region.area):.3f} "
            "(≈1 means evenly spread, ≪1 means co-located groups)"
        )
        print(f"median nearest-neighbour distance: {sorted(nn)[len(nn)//2]:.4f}")
        print(render_ascii_map(result.final_positions))
        print()


if __name__ == "__main__":
    main()
