#!/usr/bin/env python3
"""Running LAACAD as a message-passing protocol, with failures.

The distributed runtime executes Algorithm 1+2 through explicit ring
queries and position replies, so every round has a communication cost.
This script declares both runs as scenarios from the ``node_failures``
family: a loss-free baseline and a run that kills a few nodes mid-flight
with 2 % message loss.  It reports the message overhead and shows that
(a) the deployment still converges and (b) k-coverage survives thanks to
the redundancy the coverage order provides.
"""

from __future__ import annotations

from _scale import scaled

from repro import evaluate_coverage
from repro.scenarios import make_scenario


def main() -> None:
    k = 3
    base = make_scenario(
        "node_failures",
        node_count=scaled(36, minimum=12),
        k=k,
        comm_range=0.3,
        max_rounds=scaled(80, minimum=20),
        seed=8,
        failures={},
    )
    region = base.build_region()

    # --- loss-free run -------------------------------------------------
    result = base.simulation().run()
    comm = result.communication
    coverage = evaluate_coverage(
        result.final_positions, result.sensing_ranges, region, k, resolution=50
    )
    print("=== loss-free protocol run ===")
    print(f"scenario digest: {base.digest()[:12]}")
    print(f"rounds: {result.rounds_executed}, converged: {result.converged}")
    print(f"messages: {comm.messages}, transmissions: {comm.transmissions}, "
          f"bytes: {comm.bytes_sent}")
    print(f"{k}-coverage fraction: {coverage.fraction_k_covered:.4f}")
    print(f"R* = {result.max_sensing_range:.4f}")

    # --- run with node failures ----------------------------------------
    crashing = base.replace(
        failures={"scheduled": {"10": [0, 1], "20": [2]}},
        drop_probability=0.02,
    )
    sim = crashing.simulation()
    result = sim.run()
    comm = result.communication
    network = sim.network
    killed = result.killed_nodes or []
    alive_positions = [n.position for n in network.alive_nodes()]
    alive_ranges = [n.sensing_range for n in network.alive_nodes()]
    coverage_k = evaluate_coverage(alive_positions, alive_ranges, region, k, resolution=50)
    coverage_k1 = evaluate_coverage(alive_positions, alive_ranges, region, k - 1, resolution=50)
    print("\n=== run with 3 node crashes and 2% message loss ===")
    print(f"scenario digest: {crashing.digest()[:12]}")
    print(f"nodes killed: {len(killed)}, rounds: {result.rounds_executed}")
    print(f"messages dropped: {comm.dropped}/{comm.messages}")
    print(f"{k}-coverage fraction of survivors   : {coverage_k.fraction_k_covered:.4f}")
    print(f"{k-1}-coverage fraction of survivors : {coverage_k1.fraction_k_covered:.4f}")
    print("(the survivors re-balance, so coverage degrades gracefully)")


if __name__ == "__main__":
    main()
