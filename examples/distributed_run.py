#!/usr/bin/env python3
"""Running LAACAD as a message-passing protocol, with failures.

The distributed runtime executes Algorithm 1+2 through explicit ring
queries and position replies, so every round has a communication cost.
This script runs the protocol on a small network, reports the message
overhead, then kills a few nodes mid-run and shows that (a) the deployment
still converges and (b) k-coverage survives thanks to the redundancy the
coverage order provides.
"""

from __future__ import annotations

import numpy as np

from repro import LaacadConfig, SensorNetwork, evaluate_coverage, unit_square
from repro.runtime.failures import FailureInjector
from repro.runtime.protocol import DistributedLaacadRunner


def main() -> None:
    region = unit_square()
    k = 3

    # --- loss-free run -------------------------------------------------
    network = SensorNetwork.from_random(
        region, count=36, comm_range=0.3, rng=np.random.default_rng(8)
    )
    config = LaacadConfig(k=k, alpha=1.0, epsilon=1e-3, max_rounds=80)
    runner = DistributedLaacadRunner(network, config)
    result, comm = runner.run()
    coverage = evaluate_coverage(
        result.final_positions, result.sensing_ranges, region, k, resolution=50
    )
    print("=== loss-free protocol run ===")
    print(f"rounds: {result.rounds_executed}, converged: {result.converged}")
    print(f"messages: {comm.messages}, transmissions: {comm.transmissions}, "
          f"bytes: {comm.bytes_sent}")
    print(f"{k}-coverage fraction: {coverage.fraction_k_covered:.4f}")
    print(f"R* = {result.max_sensing_range:.4f}")

    # --- run with node failures ----------------------------------------
    network = SensorNetwork.from_random(
        region, count=36, comm_range=0.3, rng=np.random.default_rng(8)
    )
    injector = FailureInjector(scheduled={10: [0, 1], 20: [2]})
    runner = DistributedLaacadRunner(
        network, config, failure_injector=injector, drop_probability=0.02
    )
    result, comm = runner.run()
    alive_positions = [n.position for n in network.alive_nodes()]
    alive_ranges = [n.sensing_range for n in network.alive_nodes()]
    coverage_k = evaluate_coverage(alive_positions, alive_ranges, region, k, resolution=50)
    coverage_k1 = evaluate_coverage(alive_positions, alive_ranges, region, k - 1, resolution=50)
    print("\n=== run with 3 node crashes and 2% message loss ===")
    print(f"nodes killed: {injector.total_killed()}, rounds: {result.rounds_executed}")
    print(f"messages dropped: {comm.dropped}/{comm.messages}")
    print(f"{k}-coverage fraction of survivors   : {coverage_k.fraction_k_covered:.4f}")
    print(f"{k-1}-coverage fraction of survivors : {coverage_k1.fraction_k_covered:.4f}")
    print("(the survivors re-balance, so coverage degrades gracefully)")


if __name__ == "__main__":
    main()
