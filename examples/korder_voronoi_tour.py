#!/usr/bin/env python3
"""A tour of the k-order Voronoi machinery (the Figure 1 / Figure 2 substrate).

Shows how dominating regions grow with k, that they tile the area with
multiplicity k, and how local the information needed to compute them is
(the expanding-ring search of Algorithm 2).
"""

from __future__ import annotations

import numpy as np

from _scale import scaled

from repro import KOrderVoronoiDiagram, SensorNetwork, compute_dominating_region, unit_square
from repro.core.dominating import localized_dominating_region


def main() -> None:
    region = unit_square()
    rng = np.random.default_rng(12)
    sites = region.random_points(scaled(30, minimum=10), rng=rng)

    print("dominating regions of node 0 for increasing k:")
    others = sites[1:]
    for k in (1, 2, 3, 4):
        dom = compute_dominating_region(sites[0], others, region, k)
        center, radius = dom.chebyshev_center()
        print(
            f"  k={k}: area={dom.area:.4f}  pieces={len(dom.pieces)}  "
            f"circumradius={radius:.4f}  competitors used={dom.competitors_used}"
        )

    print("\nthe dominating regions tile the area with multiplicity k:")
    for k in (1, 2, 3):
        total = 0.0
        for i, site in enumerate(sites):
            rest = [s for j, s in enumerate(sites) if j != i]
            total += compute_dominating_region(site, rest, region, k).area
        print(f"  k={k}: sum of dominating areas = {total:.4f} ≈ k * |A| = {k * region.area:.4f}")

    print("\nfull k-order Voronoi diagram (Figure 1):")
    for k in (1, 2, 3):
        diagram = KOrderVoronoiDiagram(sites, region, k, seed_resolution=50)
        print(
            f"  k={k}: {diagram.num_cells()} cells "
            f"(bound O(k(N-k)) = {diagram.cell_count_bound()}), "
            f"tiled area = {diagram.total_cell_area():.4f}"
        )

    print("\nlocality of Algorithm 2 (expanding ring) on a live network:")
    network = SensorNetwork(region, sites, comm_range=0.25)
    for k in (1, 2, 4):
        comp = localized_dominating_region(network, 0, k)
        print(
            f"  k={k}: ring radius {comp.ring_radius:.3f} "
            f"({comp.hops} hops, {comp.neighbors_used} neighbours involved)"
        )


if __name__ == "__main__":
    main()
