#!/usr/bin/env python3
"""Dimensioning a deployment: how many nodes for 2-coverage at a fixed range?

This is the Sec. IV-C transform of LAACAD towards the min-node k-coverage
problem (and the Table I comparison): given a sensing range every node
must use, find the fewest nodes that still 2-cover the area, and compare
the answer with the Bai et al. density lower bound.
"""

from __future__ import annotations

from _scale import scaled

from repro import LaacadConfig, unit_square
from repro.baselines.bai import bai_minimum_nodes
from repro.core.minnode import MinNodeSizer


def main() -> None:
    region = unit_square()
    target_range = 0.2  # every node will sense up to 0.2 km
    k = 2

    config = LaacadConfig(
        k=k, alpha=1.0, epsilon=2e-3, max_rounds=scaled(60, minimum=15)
    )
    sizer = MinNodeSizer(region, k=k, config=config, comm_range=0.3, seed=3)

    print(f"target sensing range : {target_range} km, coverage order k = {k}")
    print(f"analytic first guess : {sizer.analytic_estimate(target_range)} nodes")

    result = sizer.find_min_nodes(
        target_range, max_evaluations=scaled(8, minimum=3)
    )
    bound = bai_minimum_nodes(region.area, target_range)

    print(f"\nLAACAD-based minimum : {result.node_count} nodes "
          f"(achieved R* = {result.achieved_range:.4f})")
    print(f"Bai et al. lower bound (no boundary effect): {bound} nodes")
    print(f"overhead over the bound: {result.node_count / bound:.2f}x")

    print("\nevaluations performed (node count -> achieved R*):")
    for n in sorted(result.evaluations):
        print(f"  N = {n:4d}  ->  R* = {result.evaluations[n]:.4f}")


if __name__ == "__main__":
    main()
