#!/usr/bin/env python3
"""k-coverage of an irregular hall with obstacles (the Figure 8 scenario).

An L-shaped area with two rectangular obstacles is 2-covered by mobile
nodes that may not enter the obstacles.  The script verifies that the
converged deployment keeps every node in the free space, that the free
area is fully 2-covered, and shows how the dominating regions adapt to
the holes.
"""

from __future__ import annotations

from _scale import scaled

from repro import evaluate_coverage
from repro.scenarios import make_scenario
from repro.voronoi.dominating import compute_dominating_region


def main() -> None:
    spec = make_scenario(
        "l_hall_obstacles",
        node_count=scaled(45, minimum=15),
        k=2,
        comm_range=0.25,
        max_rounds=scaled(100, minimum=25),
        seed=17,
    )
    region = spec.build_region()
    print(f"target area: {region.name}")
    print(f"free area  : {region.area:.4f} (outer minus {len(region.holes)} obstacles)")
    print(f"scenario digest: {spec.digest()[:12]}")

    result = spec.simulation().run()

    inside = sum(1 for p in result.final_positions if region.contains(p))
    coverage = evaluate_coverage(
        result.final_positions, result.sensing_ranges, region, k=2, resolution=70
    )
    print(f"\nconverged: {result.converged} after {result.rounds_executed} rounds")
    print(f"nodes inside free area: {inside}/{len(result.final_positions)}")
    print(f"2-coverage fraction   : {coverage.fraction_k_covered:.4f}")
    print(f"R* = {result.max_sensing_range:.4f}, r_min = {result.min_sensing_range:.4f}")

    # Inspect one node's dominating region: it should avoid the obstacles.
    node_id = 0
    others = [p for i, p in enumerate(result.final_positions) if i != node_id]
    dom = compute_dominating_region(result.final_positions[node_id], others, region, k=2)
    print(f"\nnode {node_id} dominating region: {len(dom.pieces)} convex pieces, "
          f"area {dom.area:.4f}, circumradius {dom.circumradius():.4f}")


if __name__ == "__main__":
    main()
