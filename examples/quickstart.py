#!/usr/bin/env python3
"""Quickstart: 2-cover a unit square with 40 mobile sensor nodes.

Declares the run as a scenario from the ``open_field`` family, drives it
through the ``repro.api`` session with a live observer (the convergence
of the maximum circumradius is printed *while the run executes*, not
reconstructed afterwards), verifies the resulting 2-coverage on a grid,
and reports the sensing-load balance.

To watch a run from the inside — engine stages and kernel chunks on a
Perfetto timeline — see ``traced_run.py``.
"""

from __future__ import annotations

from _scale import scaled

from repro import evaluate_coverage
from repro.analysis.energy import energy_report
from repro.api import ConvergenceProbe, Simulation
from repro.scenarios import make_scenario


def main() -> None:
    spec = make_scenario(
        "open_field",
        node_count=scaled(40, minimum=10),
        k=2,
        comm_range=0.25,
        max_rounds=scaled(80, minimum=20),
        seed=2026,
    )
    region = spec.build_region()
    print(f"scenario digest: {spec.digest()[:12]}")

    sim = Simulation.from_spec(spec)

    # Observers receive a typed RoundEvent per round.  Attach as many as
    # you like: here a ready-made probe collecting the convergence traces
    # plus an ad-hoc progress printer for every 5th round.
    probe = ConvergenceProbe()
    sim.add_observer(probe)

    @sim.add_observer
    def progress(event) -> None:
        if event.round_index % 5 == 0 or event.done:
            bar = "#" * int(event.stats.max_circumradius * 120)
            print(
                f"  round {event.round_index:3d}  "
                f"{event.stats.max_circumradius:.4f}  {bar}"
            )

    print("\nmax circumradius per round (live, every 5th round):")
    result = sim.run()

    print(f"\nconverged            : {result.converged} ({result.rounds_executed} rounds)")
    print(f"max sensing range R* : {result.max_sensing_range:.4f} km")
    print(f"min sensing range    : {result.min_sensing_range:.4f} km")
    print(f"rounds observed      : {probe.rounds} (probe), converged at round {probe.converged_at}")

    coverage = evaluate_coverage(
        result.final_positions, result.sensing_ranges, region, k=2, resolution=60
    )
    print(f"\n2-coverage fraction  : {coverage.fraction_k_covered:.4f}")
    print(f"min coverage level   : {coverage.min_coverage}")

    energy = energy_report(result.sensing_ranges)
    print(f"max sensing load     : {energy.max_load:.4f}")
    print(f"total sensing load   : {energy.total_load:.4f}")
    print(f"load imbalance       : {energy.imbalance:.3f} (1.0 = perfectly balanced)")


if __name__ == "__main__":
    main()
