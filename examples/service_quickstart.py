#!/usr/bin/env python3
"""Quickstart: drive the simulation service with nothing but stdlib urllib.

Boots the JSON-over-HTTP session service in-process (the same server
``repro serve`` runs standalone), then acts as a remote client:

* creates several named sessions under a live-byte budget small enough
  that idle sessions are checkpoint-evicted — and keeps stepping them
  anyway, since resurrection is transparent;
* attaches a batching subscriber to one session and long-polls its
  coalesced round-event batches while the session runs;
* fetches a final result and verifies it matches a direct in-process
  ``Simulation`` run bit for bit, eviction churn notwithstanding.

Everything on the client side is ``urllib.request`` + ``json`` — no
HTTP library, no SDK, which is the point: any language's stdlib can be
a client.
"""

from __future__ import annotations

import json
import urllib.request

from _scale import scaled

from repro.api import Simulation
from repro.service import ServiceThread, estimate_live_nbytes


def call(method: str, url: str, body=None):
    """One JSON request/response round-trip."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def main() -> None:
    node_count = scaled(16, minimum=8)
    rounds = scaled(12, minimum=4)
    scenario = dict(
        node_count=node_count, k=2, seed=2026, max_rounds=rounds, epsilon=1e-3
    )

    # A budget below one live session's estimate forces eviction of every
    # idle session: the service keeps only checkpoint blobs resident.
    budget = estimate_live_nbytes(node_count) - 1
    with ServiceThread(max_live_bytes=budget) as service:
        base = service.base_url
        print(f"service listening at {base} (live-byte budget: {budget} B)")

        for i in range(3):
            info = call(
                "POST",
                base + "/sessions",
                {"name": f"field-{i}", "scenario": dict(scenario, seed=2026 + i)},
            )
            print(f"created {info['name']}: {info['node_count']} nodes, "
                  f"live={info['live']}")

        # Watch field-0 through a batching subscriber: round events are
        # coalesced server-side and delivered as chunks via long-poll.
        sub = call(
            "POST",
            base + "/sessions/field-0/subscribers",
            {"max_events": 4, "max_latency": 30.0},
        )["subscriber_id"]

        print(f"\nstepping 3 sessions round-robin ({rounds} rounds each):")
        finished = [False] * 3
        for _ in range(rounds):
            for i in range(3):
                if finished[i]:
                    continue
                out = call("POST", base + f"/sessions/field-{i}/step", {})
                finished[i] = out["session"]["done"]
        stats = call("GET", base + "/stats")
        print(f"  evictions so far: {stats['total_evictions']}, "
              f"resurrections: {stats['total_resurrections']}, "
              f"live now: {stats['live_sessions']}")

        print("\nbatched event stream for field-0:")
        while True:
            batch = call(
                "GET", base + f"/sessions/field-0/subscribers/{sub}/batch?timeout=0.2"
            )["batch"]
            if batch is None:
                break
            rounds_in_batch = [e["round_index"] for e in batch["events"]]
            print(f"  batch {batch['batch_index']}: rounds {rounds_in_batch}"
                  + ("  (final)" if batch["final"] else ""))
        call("DELETE", base + f"/sessions/field-0/subscribers/{sub}")

        info = call("GET", base + "/sessions/field-0")
        print(f"\nfield-0 after {info['rounds_executed']} rounds: "
              f"live={info['live']}, evictions={info['evictions']}, "
              f"resident ~{info['nbytes']} B")

        served = call("GET", base + "/sessions/field-0/result")

    direct = Simulation(**dict(scenario, seed=2026)).run(until=rounds)
    identical = served == direct.to_dict()
    print(f"\nserved result == direct in-process run: {identical}")
    assert identical, "eviction must be invisible in everything but memory"
    print(f"max sensing range R*: {served['max_sensing_range']:.4f}")


if __name__ == "__main__":
    main()
