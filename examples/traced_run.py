#!/usr/bin/env python3
"""A traced simulation: spans from rounds down to kernel chunks.

Runs a sparse-engine deployment with tracing on, writes the trace in
both export formats (JSONL rows and Chrome trace-event JSON), and
prints a breakdown read *from the trace itself* — the same numbers a
Perfetto timeline of the file would show.  Drop the ``.json`` file on
https://ui.perfetto.dev to see the engine stages per round and the
per-thread chunk tracks.

Equivalent CLI form (both drivers take ``--trace-out``)::

    laacad-experiments run coverage_k --trace-out run.json
    repro serve --trace-out service.json
"""

from __future__ import annotations

import json
import tempfile
from collections import defaultdict
from pathlib import Path

from _scale import scaled

from repro.api import Simulation
from repro.core.config import LaacadConfig
from repro.network.network import SensorNetwork
from repro.obs import trace
from repro.regions.shapes import unit_square
from repro.scenarios import make_scenario


def main() -> None:
    spec = make_scenario(
        "open_field",
        node_count=scaled(60, minimum=12),
        k=2,
        comm_range=0.25,
        max_rounds=scaled(30, minimum=8),
        seed=7,
        engine="sparse",
    )
    print(f"tracing scenario {spec.digest()[:12]} (engine=sparse)")

    with trace.tracing() as collector:
        result = Simulation.from_spec(spec).run()

    print(
        f"run finished: converged={result.converged} "
        f"after {result.rounds_executed} rounds, "
        f"{len(collector)} spans collected"
    )

    out_dir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    jsonl_path = collector.write(str(out_dir / "run.jsonl"))
    chrome_path = collector.write(str(out_dir / "run.json"))

    # The Chrome export is schema-checked — the same validation CI runs.
    payload = json.loads(Path(chrome_path).read_text())
    events = trace.validate_chrome_trace(payload)
    print(f"wrote {jsonl_path} and {chrome_path} ({events} trace events)")

    # Reading the trace back is plain data processing on span rows.
    rows = collector.rows()
    totals = defaultdict(float)
    counts = defaultdict(int)
    for row in rows:
        totals[row["name"]] += row["dur"]
        counts[row["name"]] += 1
    print("\ntime per span name (from the trace):")
    for name in sorted(totals, key=totals.get, reverse=True):
        print(
            f"  {name:12s} {totals[name] * 1e3:9.2f} ms "
            f"across {counts[name]:4d} span(s)"
        )

    threads = {row["thread"] for row in rows if row["name"] == "chunk"}
    rounds = sum(1 for row in rows if row["name"] == "round")
    print(f"\nround spans          : {rounds}")
    print(f"chunk worker threads : {sorted(threads)}")
    print("open the .json file in https://ui.perfetto.dev to browse it")


if __name__ == "__main__":
    main()
