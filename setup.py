"""Setup shim.

All project metadata lives in ``pyproject.toml``; this file exists only
so that ``pip install -e .`` works on environments without the ``wheel``
package (legacy ``setup.py develop`` editable installs).
"""

from setuptools import setup

setup()
