"""repro — a reproduction of LAACAD (ICDCS 2012).

LAACAD (Load bAlancing k-Area Coverage through Autonomous Deployment)
moves mobile sensor nodes so that every point of a target area is covered
by at least ``k`` nodes while the largest sensing range any node needs is
minimised.  This package implements the algorithm, every substrate it
relies on (computational geometry, k-order Voronoi diagrams, a WSN and
message-passing simulator), the baselines it is compared against, and
runners regenerating every figure and table of the paper's evaluation.

Quickstart (the v1 API — see :mod:`repro.api`)::

    from repro import LaacadConfig, SensorNetwork, Simulation, unit_square

    region = unit_square()
    network = SensorNetwork.from_corner_cluster(region, 60)
    sim = Simulation(network=network, config=LaacadConfig(k=2))
    sim.add_observer(lambda e: print(e.round_index, e.stats.max_circumradius))
    result = sim.run()
    print(result.max_sensing_range, result.converged)

The old entry points (``run_laacad``, ``LaacadRunner``,
``DistributedLaacadRunner``) remain importable as deprecated shims.
"""

from repro.api import (
    Deployer,
    RoundEvent,
    SessionState,
    Simulation,
    SimulationCheckpoint,
    SimulationResult,
    deploy,
)
from repro.core.config import LaacadConfig
from repro.core.laacad import LaacadResult, LaacadRunner, RoundStats, run_laacad
from repro.core.dominating import localized_dominating_region
from repro.core.minnode import MinNodeSizer
from repro.engine import (
    BatchedRoundEngine,
    LegacyRoundEngine,
    NodeArrayState,
    RoundEngine,
    available_engines,
    make_engine,
)
from repro.network.network import SensorNetwork
from repro.scenarios import (
    ScenarioFamily,
    ScenarioSpec,
    SweepRunner,
    available_families,
    expand_grid,
    make_scenario,
    register_family,
    run_scenarios,
)
from repro.network.energy import EnergyModel
from repro.regions.region import Region
from repro.regions.shapes import (
    cross_region,
    l_shaped_region,
    rectangle_region,
    square_region,
    unit_square,
)
from repro.voronoi.dominating import DominatingRegion, compute_dominating_region
from repro.voronoi.korder import KOrderVoronoiDiagram
from repro.analysis.coverage import evaluate_coverage, is_k_covered
from repro.runtime.protocol import DistributedLaacadRunner

__version__ = "1.0.0"

__all__ = [
    "Deployer",
    "RoundEvent",
    "SessionState",
    "Simulation",
    "SimulationCheckpoint",
    "SimulationResult",
    "deploy",
    "LaacadConfig",
    "LaacadResult",
    "LaacadRunner",
    "RoundStats",
    "run_laacad",
    "localized_dominating_region",
    "MinNodeSizer",
    "BatchedRoundEngine",
    "LegacyRoundEngine",
    "NodeArrayState",
    "RoundEngine",
    "available_engines",
    "make_engine",
    "SensorNetwork",
    "ScenarioFamily",
    "ScenarioSpec",
    "SweepRunner",
    "available_families",
    "expand_grid",
    "make_scenario",
    "register_family",
    "run_scenarios",
    "EnergyModel",
    "Region",
    "square_region",
    "rectangle_region",
    "unit_square",
    "l_shaped_region",
    "cross_region",
    "DominatingRegion",
    "compute_dominating_region",
    "KOrderVoronoiDiagram",
    "evaluate_coverage",
    "is_k_covered",
    "DistributedLaacadRunner",
    "__version__",
]
