"""``python -m repro`` — the ``repro`` console script without installing."""

from repro.service.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
