"""Deployment analysis: coverage verification, energy, fairness, connectivity.

These are the measurement instruments behind every figure and table of
the evaluation: grid-based k-coverage checks, the sensing-load statistics
of Figure 7, min-max fairness indicators and communication-graph
connectivity checks.
"""

from repro.analysis.coverage import (
    CoverageReport,
    coverage_counts,
    coverage_fraction,
    evaluate_coverage,
    is_k_covered,
)
from repro.analysis.energy import EnergyReport, energy_report
from repro.analysis.fairness import jain_index, min_max_ratio
from repro.analysis.connectivity import connectivity_report, ConnectivityReport
from repro.analysis.lifetime import LifetimeReport, lifetime_report
from repro.analysis.traces import is_monotone_nonincreasing, rounds_to_threshold

__all__ = [
    "CoverageReport",
    "coverage_counts",
    "coverage_fraction",
    "evaluate_coverage",
    "is_k_covered",
    "EnergyReport",
    "energy_report",
    "jain_index",
    "min_max_ratio",
    "connectivity_report",
    "ConnectivityReport",
    "LifetimeReport",
    "lifetime_report",
    "is_monotone_nonincreasing",
    "rounds_to_threshold",
]
