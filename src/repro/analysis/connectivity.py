"""Connectivity analysis of the converged deployment (Sec. IV-C).

The paper argues that a k-covered deployment with transmission range at
least the sensing range is automatically connected with node degree at
least 6.  These helpers measure exactly those quantities so the claim can
be checked experimentally.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import networkx as nx

from repro.geometry.primitives import Point, distance


@dataclasses.dataclass(frozen=True)
class ConnectivityReport:
    """Connectivity summary of a deployment under a given transmission range.

    Attributes:
        connected: whether the communication graph is connected.
        components: number of connected components.
        min_degree: minimum node degree.
        mean_degree: average node degree.
        node_connectivity: size of a minimum vertex cut (0 for a
            disconnected graph, n-1 for a complete graph).
    """

    connected: bool
    components: int
    min_degree: int
    mean_degree: float
    node_connectivity: int


def build_graph(positions: Sequence[Point], comm_range: float) -> nx.Graph:
    """Unit-disk graph over the given positions."""
    if comm_range <= 0:
        raise ValueError("comm_range must be positive")
    graph = nx.Graph()
    graph.add_nodes_from(range(len(positions)))
    for i in range(len(positions)):
        for j in range(i + 1, len(positions)):
            if distance(positions[i], positions[j]) <= comm_range:
                graph.add_edge(i, j)
    return graph


def connectivity_report(
    positions: Sequence[Point], comm_range: float
) -> ConnectivityReport:
    """Compute the connectivity summary for a deployment."""
    graph = build_graph(positions, comm_range)
    n = graph.number_of_nodes()
    if n == 0:
        return ConnectivityReport(True, 0, 0, 0.0, 0)
    degrees = [d for _, d in graph.degree()]
    connected = nx.is_connected(graph) if n > 1 else True
    return ConnectivityReport(
        connected=connected,
        components=nx.number_connected_components(graph),
        min_degree=min(degrees),
        mean_degree=sum(degrees) / n,
        node_connectivity=int(nx.node_connectivity(graph)) if connected and n > 1 else 0,
    )
