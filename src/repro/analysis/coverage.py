"""Grid-based k-coverage verification.

The paper's Definition 1 requires every point of the area to be covered
by at least ``k`` sensing disks.  We verify it on a dense grid of sample
points; the grid spacing is reported alongside the verdict so callers can
reason about the sampling error.

The disk counting runs through the shared chunked kernel in
``repro.engine.kernels``, so arbitrarily dense grids no longer
materialise an ``(M, N, 2)`` broadcast tensor.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from repro.engine.kernels import disk_cover_counts
from repro.geometry.primitives import Point
from repro.regions.grid import GridSampler
from repro.regions.region import Region


@dataclasses.dataclass(frozen=True)
class CoverageReport:
    """Summary of a coverage check over a sample grid.

    Attributes:
        k: the coverage order that was requested.
        fraction_k_covered: fraction of sample points covered by >= k disks.
        min_coverage: the smallest number of covering disks over all samples.
        mean_coverage: average number of covering disks per sample.
        samples: number of grid samples examined.
        grid_spacing: approximate distance between neighbouring samples.
    """

    k: int
    fraction_k_covered: float
    min_coverage: int
    mean_coverage: float
    samples: int
    grid_spacing: float

    @property
    def fully_covered(self) -> bool:
        """True when every sample point met the requested coverage order."""
        return self.fraction_k_covered >= 1.0


def coverage_counts(
    positions: Sequence[Point],
    ranges: Sequence[float],
    sample_points: np.ndarray,
    slack: float = 1e-9,
) -> np.ndarray:
    """Number of sensing disks covering each sample point.

    Args:
        positions: node positions.
        ranges: per-node sensing ranges (same length as ``positions``).
        sample_points: ``(M, 2)`` array of query points.
        slack: additive tolerance on the disk boundary, so that points
            exactly on a sensing-range circle count as covered.
    """
    return disk_cover_counts(positions, ranges, sample_points, slack=slack)


def coverage_fraction(
    positions: Sequence[Point],
    ranges: Sequence[float],
    region: Region,
    k: int,
    resolution: int = 60,
) -> float:
    """Fraction of the free area that is covered by at least ``k`` disks."""
    sampler = GridSampler(region, resolution)
    counts = coverage_counts(positions, ranges, sampler.points)
    if counts.size == 0:
        return 0.0
    return float(np.mean(counts >= k))


def is_k_covered(
    positions: Sequence[Point],
    ranges: Sequence[float],
    region: Region,
    k: int,
    resolution: int = 60,
) -> bool:
    """True when every grid sample of the free area is k-covered."""
    return coverage_fraction(positions, ranges, region, k, resolution) >= 1.0


def evaluate_coverage(
    positions: Sequence[Point],
    ranges: Sequence[float],
    region: Region,
    k: int,
    resolution: int = 60,
) -> CoverageReport:
    """Full coverage report over a grid of the free area."""
    if k < 1:
        raise ValueError("coverage order k must be >= 1")
    sampler = GridSampler(region, resolution)
    counts = coverage_counts(positions, ranges, sampler.points)
    if counts.size == 0:
        raise ValueError("the sample grid is empty; increase the resolution")
    return CoverageReport(
        k=k,
        fraction_k_covered=float(np.mean(counts >= k)),
        min_coverage=int(counts.min()),
        mean_coverage=float(counts.mean()),
        samples=int(counts.size),
        grid_spacing=sampler.cell_size,
    )
