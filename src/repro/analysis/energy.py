"""Sensing-load statistics (the quantities of Figure 7)."""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.network.energy import EnergyModel


@dataclasses.dataclass(frozen=True)
class EnergyReport:
    """Aggregate sensing-load numbers for a deployment.

    Attributes:
        max_load: largest per-node sensing energy (Figure 7a).
        min_load: smallest per-node sensing energy.
        total_load: sum of per-node sensing energies (Figure 7b).
        mean_load: average per-node sensing energy.
        imbalance: max-to-min load ratio.
        node_count: number of nodes included.
    """

    max_load: float
    min_load: float
    total_load: float
    mean_load: float
    imbalance: float
    node_count: int


def energy_report(
    ranges: Sequence[float], model: Optional[EnergyModel] = None
) -> EnergyReport:
    """Compute the Figure 7 sensing-load aggregates for a set of ranges."""
    model = model or EnergyModel()
    loads = model.sensing_loads(ranges)
    if not loads:
        return EnergyReport(0.0, 0.0, 0.0, 0.0, 1.0, 0)
    return EnergyReport(
        max_load=max(loads),
        min_load=min(loads),
        total_load=sum(loads),
        mean_load=sum(loads) / len(loads),
        imbalance=model.load_imbalance(ranges),
        node_count=len(loads),
    )
