"""Fairness indicators for the min-max fair discussion of Sec. IV-C."""

from __future__ import annotations

import math
from typing import Sequence


def min_max_ratio(values: Sequence[float]) -> float:
    """Ratio of the smallest to the largest value (1.0 = perfectly balanced).

    Returns 1.0 for an empty sequence and 0.0 when the largest value is
    positive but the smallest is zero.
    """
    vals = list(values)
    if not vals:
        return 1.0
    hi = max(vals)
    lo = min(vals)
    if hi <= 0.0:
        return 1.0
    return max(0.0, lo / hi)


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    1.0 means all values equal; ``1/n`` is the most unfair allocation.
    Returns 1.0 for empty or all-zero inputs.
    """
    vals = [float(v) for v in values]
    if not vals:
        return 1.0
    total = sum(vals)
    square_sum = sum(v * v for v in vals)
    if square_sum <= 0.0:
        return 1.0
    return (total * total) / (len(vals) * square_sum)


def range_spread(values: Sequence[float]) -> float:
    """Max minus min — the gap the paper observes closing as LAACAD converges."""
    vals = list(values)
    if not vals:
        return 0.0
    return max(vals) - min(vals)
