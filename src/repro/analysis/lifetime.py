"""Network-lifetime estimation.

The paper motivates min–max sensing-range balancing by network lifetime:
the node with the largest sensing load drains its battery first, and once
it dies the k-coverage guarantee weakens.  This module turns the sensing
loads into lifetime figures so that LAACAD deployments can be compared
against unbalanced (random / static) deployments in lifetime terms.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

from repro.network.energy import EnergyModel


@dataclasses.dataclass(frozen=True)
class LifetimeReport:
    """Lifetime summary of a deployment.

    Attributes:
        first_death: time until the most-loaded node exhausts its battery
            (the paper's lifetime notion under min-max balancing).
        mean_death: average node lifetime.
        lifetime_ratio_to_balanced: ratio between ``first_death`` and the
            lifetime a perfectly balanced deployment (every node carrying
            the mean load) would achieve — 1.0 means the deployment is as
            good as perfectly balanced.
    """

    first_death: float
    mean_death: float
    lifetime_ratio_to_balanced: float


def lifetime_report(
    sensing_ranges: Sequence[float],
    battery_capacity: float = 1.0,
    model: Optional[EnergyModel] = None,
) -> LifetimeReport:
    """Estimate lifetime figures for per-node sensing ranges.

    Args:
        sensing_ranges: per-node sensing ranges of the deployment.
        battery_capacity: energy budget per node (same units as the
            sensing load per unit time).
        model: energy model; defaults to the paper's ``E(r) = pi r^2``.

    Returns:
        A :class:`LifetimeReport`.  Nodes with zero load are treated as
        living forever; if *all* nodes have zero load every lifetime is
        reported as ``inf``.
    """
    if battery_capacity <= 0:
        raise ValueError("battery_capacity must be positive")
    model = model or EnergyModel()
    loads = model.sensing_loads(sensing_ranges)
    positive = [l for l in loads if l > 0]
    if not positive:
        return LifetimeReport(math.inf, math.inf, 1.0)
    lifetimes = [battery_capacity / l for l in positive]
    first_death = min(lifetimes)
    mean_death = sum(lifetimes) / len(lifetimes)
    mean_load = sum(positive) / len(positive)
    balanced_lifetime = battery_capacity / mean_load
    return LifetimeReport(
        first_death=first_death,
        mean_death=mean_death,
        lifetime_ratio_to_balanced=first_death / balanced_lifetime,
    )
