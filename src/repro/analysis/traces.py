"""Utilities for inspecting per-round convergence traces (Figure 6)."""

from __future__ import annotations

from typing import Optional, Sequence


def is_monotone_nonincreasing(values: Sequence[float], tolerance: float = 1e-9) -> bool:
    """True when the sequence never increases by more than ``tolerance``.

    The convergence proof (Proposition 4) guarantees that the maximum
    circumradius trace is non-increasing for ``alpha = 1``; the tolerance
    absorbs floating-point noise from the clipping cascades.
    """
    for earlier, later in zip(values, values[1:]):
        if later > earlier + tolerance:
            return False
    return True


def rounds_to_threshold(values: Sequence[float], threshold: float) -> Optional[int]:
    """First round index at which the trace drops to or below ``threshold``.

    Returns ``None`` when the trace never reaches the threshold.
    """
    for index, value in enumerate(values):
        if value <= threshold:
            return index
    return None


def relative_gap(max_trace: Sequence[float], min_trace: Sequence[float]) -> float:
    """Final relative gap between the max and min traces.

    The paper observes that the maximum and minimum circumradii nearly
    coincide at convergence (load balance); this returns
    ``(max - min) / max`` of the final round, or 0.0 for empty traces.
    """
    if not max_trace or not min_trace:
        return 0.0
    final_max = max_trace[-1]
    final_min = min_trace[-1]
    if final_max <= 0.0:
        return 0.0
    return (final_max - final_min) / final_max
