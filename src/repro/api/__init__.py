"""``repro.api`` — the stable v1 facade for running deployments.

Every way of creating, driving, observing and persisting a deployment
run goes through this package (see DESIGN.md, "The API layer"):

* :class:`Simulation` — the session object: steppable (``step()``,
  ``events()``), observable (``add_observer``), resumable
  (``checkpoint()`` / ``Simulation.restore``), constructed from a
  :class:`~repro.scenarios.spec.ScenarioSpec`, live objects, or kwargs;
* :class:`Deployer` and its implementations — the unified protocol the
  centralized, distributed and static execution paths share;
* :class:`SimulationResult` — the lossless, versioned result type
  (``to_dict``/``from_dict`` round-trip everything, history included);
* :class:`RoundEvent` — the typed per-round event observers receive;
* :class:`SimulationCheckpoint` — full mid-run state, JSON-persistable,
  restoring bitwise-identically;
* probes in :mod:`repro.api.observers` — coverage/energy/convergence
  measured live instead of recomputed from final state.

The old entry points (``run_laacad``, direct ``LaacadRunner`` /
``DistributedLaacadRunner`` construction) remain as thin shims that
emit :class:`DeprecationWarning` and delegate here.
"""

from repro.api.checkpoint import (
    CHECKPOINT_DIR_ENV,
    CHECKPOINT_EVERY_ENV,
    CHECKPOINT_VERSION,
    SimulationCheckpoint,
    checkpoint_path_for,
    resolve_checkpoint_dir,
    resolve_checkpoint_every,
)
from repro.api.events import RoundEvent
from repro.api.results import (
    RESULT_FORMAT_VERSION,
    CommunicationSummary,
    DistributedRoundStats,
    RoundStats,
    SimulationResult,
)
from repro.api.deployers import (
    DEPLOYERS,
    CentralizedDeployer,
    Deployer,
    DistributedDeployer,
    SessionState,
    StaticDeployer,
)
from repro.api.session import Simulation, deploy
from repro.api.observers import ConvergenceProbe, CoverageProbe, EnergyProbe

__all__ = [
    "CHECKPOINT_DIR_ENV",
    "CHECKPOINT_EVERY_ENV",
    "CHECKPOINT_VERSION",
    "CentralizedDeployer",
    "CommunicationSummary",
    "ConvergenceProbe",
    "CoverageProbe",
    "DEPLOYERS",
    "Deployer",
    "DistributedDeployer",
    "DistributedRoundStats",
    "EnergyProbe",
    "RESULT_FORMAT_VERSION",
    "RoundEvent",
    "RoundStats",
    "SessionState",
    "SimulationCheckpoint",
    "SimulationResult",
    "StaticDeployer",
    "Simulation",
    "checkpoint_path_for",
    "deploy",
    "resolve_checkpoint_dir",
    "resolve_checkpoint_every",
]
