"""Checkpoint/resume for deployment sessions.

A :class:`SimulationCheckpoint` is a JSON-serializable snapshot of the
*complete* mid-run state of a :class:`~repro.api.Simulation` taken at a
round boundary: node positions (exact floats — JSON round-trips Python
floats losslessly), liveness, per-node odometry, the convergence
tracker, the recorded history, and — for distributed sessions — the
scheduler's RNG state, communication counters and the failure
injector's RNG/bookkeeping.  Restoring a checkpoint and running to
completion produces results **bitwise identical** to the uninterrupted
run (covered by ``tests/test_api_checkpoint.py`` across both round
engines and both region back-ends).

Checkpoints are what make long runs preemptible: the CLI's
``--checkpoint-every N`` / ``--resume-from PATH`` flags and the
:class:`~repro.scenarios.sweep.SweepRunner`'s checkpoint directory are
thin wrappers over this module.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.regions.region import Region

#: Version of the checkpoint payload layout; bump on every change so a
#: stale checkpoint is rejected instead of silently misread.
CHECKPOINT_VERSION = 1

#: Environment variable: checkpoint frequency in rounds (the CLI's
#: ``--checkpoint-every``); unset or 0 disables checkpointing.
CHECKPOINT_EVERY_ENV = "REPRO_CHECKPOINT_EVERY"

#: Environment variable: directory deployment pipelines write periodic
#: checkpoints to (the CLI's ``--checkpoint-dir``); files are named by
#: scenario digest, so interrupted sweep cells resume on re-run.
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"


def resolve_checkpoint_every() -> int:
    """Checkpoint frequency from the environment (0 = disabled)."""
    value = os.environ.get(CHECKPOINT_EVERY_ENV, "").strip()
    if not value:
        return 0
    every = int(value)
    if every < 0:
        raise ValueError(f"{CHECKPOINT_EVERY_ENV} must be >= 0, got {every}")
    return every


def resolve_checkpoint_dir() -> Optional[Path]:
    """Checkpoint directory from the environment (unset = disabled)."""
    value = os.environ.get(CHECKPOINT_DIR_ENV, "").strip()
    return Path(value) if value else None


def checkpoint_path_for(directory: Path | str, digest: str) -> Path:
    """Canonical checkpoint file path for a scenario digest."""
    return Path(directory) / f"{digest}.ckpt.json"


# ----------------------------------------------------------------------
# Serialization helpers shared by the deployers
# ----------------------------------------------------------------------
def region_to_dict(region: Region) -> Dict[str, Any]:
    """Serialize a region as an explicit polygon dict (lossless)."""
    return {
        "kind": "polygon",
        "outer": [[float(x), float(y)] for x, y in region.outer],
        "holes": [[[float(x), float(y)] for x, y in hole] for hole in region.holes],
        "name": region.name,
    }


def region_from_dict(payload: Mapping[str, Any]) -> Region:
    """Rebuild a region from :func:`region_to_dict` output."""
    return Region(
        [tuple(p) for p in payload["outer"]],
        holes=[[tuple(p) for p in hole] for hole in payload.get("holes", [])],
        name=payload.get("name", "region"),
    )


def rng_state_to_dict(rng: np.random.Generator) -> Dict[str, Any]:
    """JSON-compatible snapshot of a numpy Generator's full state.

    Array-valued state entries (Philox counters, SFC64/MT19937 words)
    are stored as plain lists; every numpy bit generator's state setter
    coerces them back, so the snapshot is generator-agnostic.
    """
    return json.loads(
        json.dumps(rng.bit_generator.state, default=lambda a: a.tolist())
    )


def rng_from_state(state: Mapping[str, Any]) -> np.random.Generator:
    """Rebuild a numpy Generator positioned exactly at a saved state."""
    bit_generator_cls = getattr(np.random, state["bit_generator"])
    bit_generator = bit_generator_cls()
    bit_generator.state = dict(state)
    return np.random.Generator(bit_generator)


class SimulationCheckpoint:
    """A versioned, JSON-serializable snapshot of a session's full state.

    Construct via :meth:`Simulation.checkpoint`; consume via
    :meth:`Simulation.restore`.  The payload is plain data — inspect it,
    ship it across machines, or archive it next to the result.
    """

    def __init__(self, payload: Dict[str, Any]) -> None:
        if payload.get("checkpoint_version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint_version "
                f"{payload.get('checkpoint_version')!r} (this build reads "
                f"version {CHECKPOINT_VERSION})"
            )
        self.payload = payload
        self._nbytes: Optional[int] = None

    # -- plain-data views ------------------------------------------------
    @property
    def kind(self) -> str:
        """Which deployer kind the checkpoint belongs to."""
        return self.payload["kind"]

    @property
    def rounds_executed(self) -> int:
        """How many rounds had been executed at snapshot time."""
        return int(self.payload["rounds_executed"])

    @property
    def spec_digest(self) -> Optional[str]:
        """Content digest of the originating scenario (if spec-built)."""
        return self.payload.get("spec_digest")

    @property
    def nbytes(self) -> int:
        """Size of the serialized checkpoint in bytes.

        This is exactly the memory an *evicted* session costs a hosting
        process that keeps the JSON blob resident (see
        ``repro.service``), and the disk footprint of :meth:`save`.
        Computed lazily on first access and cached — the payload is
        immutable by contract once snapshotted.
        """
        if self._nbytes is None:
            self._nbytes = len(self.to_json().encode("utf-8"))
        return self._nbytes

    def to_json(self) -> str:
        """The canonical serialized form (what :meth:`save` writes)."""
        return json.dumps(self.payload)

    def to_dict(self) -> Dict[str, Any]:
        return self.payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulationCheckpoint":
        return cls(dict(payload))

    # -- persistence -----------------------------------------------------
    def save(self, path: Path | str) -> Path:
        """Atomically write the checkpoint to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        text = self.to_json()
        self._nbytes = len(text.encode("utf-8"))
        tmp.write_text(text)
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: Path | str) -> "SimulationCheckpoint":
        """Read a checkpoint file written by :meth:`save`."""
        return cls(json.loads(Path(path).read_text()))
