"""The :class:`Deployer` protocol and its three built-in implementations.

A *deployer* drives one deployment run incrementally: ``step()``
executes exactly one synchronous round and returns a typed
:class:`~repro.api.events.RoundEvent`; ``run(until=...)`` loops;
``state`` reports where the run stands; ``result()`` finalizes sensing
ranges and produces a :class:`~repro.api.results.SimulationResult`.
The three built-ins unify every execution path the codebase used to
expose through divergent run-to-completion monoliths:

* :class:`CentralizedDeployer` — Algorithm 1 with global knowledge
  (the old ``LaacadRunner.run`` loop, now steppable);
* :class:`DistributedDeployer` — the message-passing protocol
  (the old ``DistributedLaacadRunner.run`` loop, now steppable);
* :class:`StaticDeployer` — no movement, ranges sized to the
  dominating regions (the lifetime baselines).

The stepping decomposition is *observationally identical* to the old
monoliths: the per-round order of operations (region computation →
stats recording → convergence check → synchronous move) is preserved
instruction for instruction, so a sequence of ``step()`` calls — with
or without a checkpoint/restore in the middle — produces bitwise the
same trajectories, histories and sensing ranges.

Deployers also know how to snapshot and restore their complete mid-run
state (positions, RNG streams, convergence tracker, counters) — see
``repro.api.checkpoint``.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any, Dict, List, Optional

import numpy as np

from repro.api.checkpoint import (
    CHECKPOINT_VERSION,
    region_to_dict,
    rng_from_state,
    rng_state_to_dict,
)
from repro.api.events import RoundEvent
from repro.api.results import (
    CommunicationSummary,
    DistributedRoundStats,
    RoundStats,
    SimulationResult,
    round_stats_from_dict,
)
from repro.core.config import LaacadConfig
from repro.core.convergence import ConvergenceTracker
from repro.geometry.primitives import Point, distance
from repro.network.mobility import MobilityModel
from repro.network.network import SensorNetwork


@dataclasses.dataclass(frozen=True)
class SessionState:
    """Read-only snapshot of where a deployment session stands.

    Attributes:
        kind: deployer kind (``"laacad"``, ``"distributed"``, ``"static"``).
        rounds_executed: rounds completed so far.
        converged: whether the stopping rule has been satisfied.
        done: whether the session is complete (converged or round cap).
        positions: current positions of all nodes.
        alive_count: number of operational nodes.
    """

    kind: str
    rounds_executed: int
    converged: bool
    done: bool
    positions: List[Point]
    alive_count: int


class Deployer(abc.ABC):
    """Drives one deployment run, one synchronous round at a time."""

    #: Deployer kind; doubles as the registry key and the result tag.
    kind: str = "abstract"

    def __init__(
        self,
        network: SensorNetwork,
        config: LaacadConfig,
        mobility: Optional[MobilityModel] = None,
    ) -> None:
        self.network = network
        self.config = config
        self.mobility = mobility if mobility is not None else MobilityModel()
        self._initial_positions: List[Point] = list(network.positions())
        self._history: List[RoundStats] = []
        self._tracker = ConvergenceTracker(
            epsilon=config.epsilon, patience=config.convergence_patience
        )
        self._rounds = 0
        self._converged = False
        self._result: Optional[SimulationResult] = None

    # ------------------------------------------------------------------
    # The protocol
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the run is complete (converged or at the round cap)."""
        return self._converged or self._rounds >= self.config.max_rounds

    @property
    def state(self) -> SessionState:
        """Current session state (cheap, safe to poll every round)."""
        return SessionState(
            kind=self.kind,
            rounds_executed=self._rounds,
            converged=self._converged,
            done=self.done,
            positions=list(self.network.positions()),
            alive_count=len(self.network.alive_nodes()),
        )

    @abc.abstractmethod
    def step(self) -> RoundEvent:
        """Execute exactly one synchronous round.

        Raises:
            RuntimeError: when called on a completed session.
        """

    def run(self, until: Optional[int] = None) -> SimulationResult:
        """Step until completion (or until ``rounds_executed == until``).

        Returns :meth:`result` for the state reached; when stopped early
        by ``until`` the result reflects the current mid-run deployment
        (finalizing does not perturb the run — stepping may continue).
        """
        while not self.done and (until is None or self._rounds < until):
            self.step()
        return self.result()

    @abc.abstractmethod
    def result(self) -> SimulationResult:
        """Finalize sensing ranges and return the (cached) result."""

    def _require_active(self) -> int:
        if self.done:
            raise RuntimeError(
                f"the {self.kind} session is complete after "
                f"{self._rounds} round(s); create a new Simulation to re-run"
            )
        round_index = self._rounds
        self._rounds += 1
        self._result = None
        return round_index

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint_payload(self) -> Dict[str, Any]:
        """Complete JSON-compatible snapshot of the session state."""
        result_payload = None
        if self.done:
            # A completed session carries its finalized result verbatim,
            # so restoring it never needs to recompute regions (which,
            # for a lossy distributed run, would re-draw from the RNG).
            # Finalize *before* snapshotting the nodes: result() writes
            # the final sensing ranges back into the network.
            result_payload = self.result().to_dict()
        network = self.network
        payload: Dict[str, Any] = {
            "checkpoint_version": CHECKPOINT_VERSION,
            "kind": self.kind,
            "config": dataclasses.asdict(self.config),
            "mobility": {
                "max_step": self.mobility.max_step,
                "keep_in_region": self.mobility.keep_in_region,
            },
            "region": region_to_dict(network.region),
            "comm_range": float(network.comm_range),
            "nodes": {
                "positions": [[float(x), float(y)] for x, y in network.positions()],
                "alive": [bool(n.alive) for n in network.nodes],
                "sensing_ranges": [float(n.sensing_range) for n in network.nodes],
                "distance_traveled": [float(n.distance_traveled) for n in network.nodes],
            },
            "initial_positions": [
                [float(x), float(y)] for x, y in self._initial_positions
            ],
            "rounds_executed": int(self._rounds),
            "converged": bool(self._converged),
            "history": [dataclasses.asdict(stats) for stats in self._history],
            "runtime": self._checkpoint_runtime(),
        }
        if result_payload is not None:
            payload["result"] = result_payload
        return payload

    def restore_payload(self, payload: Dict[str, Any]) -> None:
        """Adopt a snapshot produced by :meth:`checkpoint_payload`.

        The deployer must have been constructed over a network rebuilt
        from the same checkpoint (the session layer does this).
        """
        self._initial_positions = [
            (float(p[0]), float(p[1])) for p in payload["initial_positions"]
        ]
        self._rounds = int(payload["rounds_executed"])
        self._converged = bool(payload["converged"])
        self._history = [round_stats_from_dict(entry) for entry in payload["history"]]
        self._restore_runtime(payload.get("runtime"))
        if payload.get("result") is not None:
            self._result = SimulationResult.from_dict(payload["result"])

    def _checkpoint_runtime(self) -> Optional[Dict[str, Any]]:
        """Deployer-specific extras (RNG streams, counters); None if none."""
        return None

    def _restore_runtime(self, payload: Optional[Dict[str, Any]]) -> None:
        """Inverse of :meth:`_checkpoint_runtime`."""

    def _tracker_state(self) -> Dict[str, Any]:
        """Snapshot of the convergence tracker (shared by all deployers)."""
        return {
            "streak": self._tracker._streak,
            "max_displacement_history": list(self._tracker.max_displacement_history),
        }

    def _restore_tracker_state(self, payload: Optional[Dict[str, Any]]) -> None:
        payload = payload or {}
        self._tracker._streak = int(payload.get("streak", 0))
        self._tracker.max_displacement_history = [
            float(v) for v in payload.get("max_displacement_history", [])
        ]


class CentralizedDeployer(Deployer):
    """Algorithm 1 with global knowledge, driven round by round.

    The per-round order of operations is exactly the old
    ``LaacadRunner.run`` loop; the engine backend is selected by
    ``config.engine`` as before.
    """

    kind = "laacad"

    def __init__(
        self,
        network: SensorNetwork,
        config: LaacadConfig,
        mobility: Optional[MobilityModel] = None,
        expose_regions: bool = False,
    ) -> None:
        from repro.engine import make_engine

        if len(network.alive_nodes()) < config.k:
            raise ValueError(
                "the network needs at least k alive nodes to attempt k-coverage"
            )
        super().__init__(network, config, mobility)
        self.engine = make_engine(config.engine, network, config)
        self.expose_regions = expose_regions
        #: Regions measured in the last executed round; ``None`` after a
        #: restore (they are recomputed on demand — deterministically,
        #: so the refreshed values are bitwise identical).
        self._last_regions: Optional[Dict[int, Any]] = {}
        self._position_history: Optional[List[List[Point]]] = (
            [list(network.positions())] if config.record_positions else None
        )

    def step(self) -> RoundEvent:
        round_index = self._require_active()
        config = self.config
        network = self.network

        engine_round = self.engine.compute_round()
        self._last_regions = engine_round.regions
        centers = engine_round.centers
        circumradii = engine_round.circumradii
        ranges_from_position = engine_round.ranges_from_position
        displacements = engine_round.displacements

        stats = RoundStats(
            round_index=round_index,
            max_circumradius=max(circumradii) if circumradii else 0.0,
            min_circumradius=min(circumradii) if circumradii else 0.0,
            max_range_from_position=max(ranges_from_position) if ranges_from_position else 0.0,
            min_range_from_position=min(ranges_from_position) if ranges_from_position else 0.0,
            max_displacement=max(displacements) if displacements else 0.0,
            mean_displacement=(sum(displacements) / len(displacements)) if displacements else 0.0,
            max_ring_hops=engine_round.max_ring_hops,
        )
        self._history.append(stats)

        moved = False
        if self._tracker.observe(displacements):
            self._converged = True
        else:
            # Synchronous move: every node steps alpha of the way to its
            # Chebyshev center, constrained by the mobility model.  The
            # targets are collected first and applied as one batch so
            # the spatial caches are invalidated once, not per node.
            moves: Dict[int, Point] = {}
            for node_id, center in centers.items():
                node = network.node(node_id)
                if distance(node.position, center) <= config.epsilon:
                    continue
                target = (
                    node.position[0] + config.alpha * (center[0] - node.position[0]),
                    node.position[1] + config.alpha * (center[1] - node.position[1]),
                )
                moves[node_id] = self.mobility.constrain(
                    network.region, node.position, target
                )
            network.apply_moves(moves, clamp_to_region=True)
            moved = True
            if config.record_positions and self._position_history is not None:
                self._position_history.append(list(network.positions()))

        return RoundEvent(
            round_index=round_index,
            stats=stats,
            displacements=displacements,
            ranges_from_position=ranges_from_position,
            centers=centers,
            positions=list(network.positions()),
            moved=moved,
            converged=self._converged,
            done=self.done,
            regions=engine_round.regions if self.expose_regions else None,
        )

    def result(self) -> SimulationResult:
        if self._result is not None:
            return self._result
        network = self.network
        # Final sensing ranges: the circumradius of each node's dominating
        # region measured from its final position.  Recompute the regions
        # unless the last executed round converged (a converged round does
        # not move, so its measurements are still current).
        regions = self._last_regions
        if not self._converged or regions is None:
            regions, _ = self.engine.compute_regions()
        sensing_ranges: List[float] = []
        for node in network.nodes:
            if not node.alive:
                sensing_ranges.append(0.0)
                continue
            region = regions.get(node.node_id)
            if region is None:
                sensing_ranges.append(0.0)
                continue
            r = region.circumradius(node.position)
            network.set_sensing_range(node.node_id, r)
            sensing_ranges.append(r)

        self._result = SimulationResult(
            config=self.config,
            initial_positions=self._initial_positions,
            final_positions=list(network.positions()),
            sensing_ranges=sensing_ranges,
            converged=self._converged,
            rounds_executed=self._rounds,
            history=self._history,
            position_history=self._position_history,
            kind=self.kind,
        )
        return self._result

    # -- checkpointing ---------------------------------------------------
    def _checkpoint_runtime(self) -> Optional[Dict[str, Any]]:
        return {
            "tracker": self._tracker_state(),
            "position_history": (
                [[[float(x), float(y)] for x, y in snapshot] for snapshot in self._position_history]
                if self._position_history is not None
                else None
            ),
        }

    def _restore_runtime(self, payload: Optional[Dict[str, Any]]) -> None:
        payload = payload or {}
        self._restore_tracker_state(payload.get("tracker"))
        history = payload.get("position_history")
        self._position_history = (
            [[(float(p[0]), float(p[1])) for p in snapshot] for snapshot in history]
            if history is not None
            else None
        )
        self._last_regions = None


class DistributedDeployer(Deployer):
    """The message-passing protocol, driven round by round.

    The per-round order of operations is exactly the old
    ``DistributedLaacadRunner.run`` loop: failure injection, the
    expanding-ring gather + region computation for every node (ring
    queries and position replies accounted — and loss-sampled —
    through the scheduler), statistics, convergence check, simultaneous
    move application.

    The gather/compute phase is delegated to a pluggable
    :class:`~repro.runtime.engines.DistributedRoundEngine` selected by
    ``config.engine`` — ``"batched"`` simulates the protocol at the
    round level over shared distance arrays, ``"legacy"`` executes one
    scalar agent per node.  Both backends are bitwise identical,
    including the scheduler RNG draw order on lossy channels (see
    ``repro.runtime.engines``).
    """

    kind = "distributed"

    def __init__(
        self,
        network: SensorNetwork,
        config: LaacadConfig,
        mobility: Optional[MobilityModel] = None,
        drop_probability: float = 0.0,
        failure_injector: Optional[Any] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        from repro.runtime.engines import make_distributed_engine
        from repro.runtime.scheduler import SynchronousScheduler

        if len(network.alive_nodes()) < config.k:
            raise ValueError("the network needs at least k alive nodes")
        super().__init__(network, config, mobility)
        self.scheduler = SynchronousScheduler(
            drop_probability=drop_probability,
            rng=rng if rng is not None else np.random.default_rng(config.seed),
        )
        self.failure_injector = failure_injector
        self.protocol = make_distributed_engine(
            config.engine, network, config, self.scheduler
        )
        self._compat_agents: Optional[Dict[int, Any]] = None
        #: False right after a restore: the engine's last regions are gone
        #: and must be refreshed before sensing ranges can be finalized.
        self._have_regions = True

    @property
    def agents(self) -> Dict[int, Any]:
        """Per-node protocol agents (legacy introspection surface).

        The ``legacy`` engine genuinely executes through these; the
        ``batched`` engine simulates at the round level, so for it the
        dict is materialised lazily — same keys, same construction —
        and *hydrated* from the engine's last round on every access:
        each agent's ``last_region``, ``displacement`` and
        ``proposed_target`` reflect the run exactly as the executed
        agents would (the deprecated ``DistributedLaacadRunner.agents``
        accessor keeps reading real state).
        """
        agents = getattr(self.protocol, "agents", None)
        if agents is not None:
            return agents
        if self._compat_agents is None:
            from repro.runtime.protocol import LaacadAgent

            self._compat_agents = {
                node.node_id: LaacadAgent(
                    node.node_id, self.network, self.scheduler, self.config
                )
                for node in self.network.nodes
            }
        engine_round = self.protocol.last_round
        if engine_round is not None:
            displacements = dict(zip(engine_round.regions, engine_round.displacements))
            for node_id, agent in self._compat_agents.items():
                agent.last_region = engine_round.regions.get(node_id)
                agent.displacement = displacements.get(node_id, 0.0)
                agent.proposed_target = engine_round.proposed_targets.get(node_id)
        return self._compat_agents

    def step(self) -> RoundEvent:
        round_index = self._require_active()
        network = self.network
        self.scheduler.begin_round()
        if self.failure_injector is not None:
            self.failure_injector.apply(network, round_index)

        messages_before = self.scheduler.stats.messages
        transmissions_before = self.scheduler.stats.transmissions
        bytes_before = self.scheduler.stats.bytes_sent

        engine_round = self.protocol.run_round(round_index)
        displacements = engine_round.displacements
        circumradii = engine_round.circumradii
        ranges_from_position = engine_round.ranges_from_position
        centers = engine_round.centers

        stats = DistributedRoundStats(
            round_index=round_index,
            max_circumradius=max(circumradii) if circumradii else 0.0,
            min_circumradius=min(circumradii) if circumradii else 0.0,
            max_range_from_position=max(ranges_from_position) if ranges_from_position else 0.0,
            min_range_from_position=min(ranges_from_position) if ranges_from_position else 0.0,
            max_displacement=max(displacements) if displacements else 0.0,
            mean_displacement=(sum(displacements) / len(displacements)) if displacements else 0.0,
            messages=self.scheduler.stats.messages - messages_before,
            transmissions=self.scheduler.stats.transmissions - transmissions_before,
            bytes_sent=self.scheduler.stats.bytes_sent - bytes_before,
        )
        self._history.append(stats)
        self.scheduler.end_round()
        self._have_regions = True

        moved = False
        if self._tracker.observe(displacements):
            self._converged = True
        else:
            # Apply the proposed moves simultaneously (one batch, one
            # spatial-cache invalidation).
            moves: Dict[int, Point] = {}
            for node_id, target in engine_round.proposed_targets.items():
                moves[node_id] = self.mobility.constrain(
                    network.region, network.node(node_id).position, target
                )
            network.apply_moves(moves, clamp_to_region=True)
            moved = True

        return RoundEvent(
            round_index=round_index,
            stats=stats,
            displacements=displacements,
            ranges_from_position=ranges_from_position,
            centers=centers,
            positions=list(network.positions()),
            moved=moved,
            converged=self._converged,
            done=self.done,
        )

    def result(self) -> SimulationResult:
        """Finalize sensing ranges and summarize the protocol run.

        Mid-run, the communication totals include the region-refresh
        round that sized the preview's sensing ranges — the same
        convention the finished result uses when the round cap binds —
        while the protocol state (RNG stream, counters) is restored so
        continued stepping is unaffected.
        """
        if self._result is not None:
            return self._result
        network = self.network
        needs_refresh = (not self._converged) or not self._have_regions
        snapshot = None
        if needs_refresh and not self.done:
            # Finalizing mid-run must not perturb the protocol: the
            # refresh round consumes scheduler RNG draws and counters,
            # so both are restored afterwards and stepping continues
            # bitwise-identically.
            snapshot = self._scheduler_snapshot()
        if needs_refresh:
            # The round cap was hit after a move (or the session was just
            # restored): refresh every node's region once so the final
            # sensing ranges refer to the current positions — exactly
            # what the old monolithic driver did at the cap.
            self.scheduler.begin_round()
            self.protocol.run_round(self._rounds)
            self.scheduler.end_round()
            self._have_regions = True

        sensing_ranges: List[float] = []
        last_regions = self.protocol.last_regions
        for node in network.nodes:
            region = last_regions.get(node.node_id)
            if not node.alive or region is None:
                sensing_ranges.append(0.0)
                continue
            r = region.circumradius(node.position)
            network.set_sensing_range(node.node_id, r)
            sensing_ranges.append(r)

        communication = CommunicationSummary.from_stats(self.scheduler.stats)
        if snapshot is not None:
            self._scheduler_restore(snapshot)

        result = SimulationResult(
            config=self.config,
            initial_positions=self._initial_positions,
            final_positions=list(network.positions()),
            sensing_ranges=sensing_ranges,
            converged=self._converged,
            rounds_executed=self._rounds,
            history=self._history,
            kind=self.kind,
            communication=communication,
            killed_nodes=(
                [int(i) for i in self.failure_injector.killed]
                if self.failure_injector is not None
                else []
            ),
        )
        if self.done:
            self._result = result
        return result

    # -- scheduler snapshots (mid-run finalization) ----------------------
    def _scheduler_snapshot(self) -> Dict[str, Any]:
        stats = self.scheduler.stats
        return {
            "rng_state": self.scheduler._rng.bit_generator.state,
            "stats": dataclasses.replace(
                stats, per_round_messages=list(stats.per_round_messages)
            ),
            "round_messages": self.scheduler._round_messages,
            "current_round": self.scheduler.current_round,
        }

    def _scheduler_restore(self, snapshot: Dict[str, Any]) -> None:
        self.scheduler._rng.bit_generator.state = snapshot["rng_state"]
        self.scheduler.stats = snapshot["stats"]
        self.scheduler._round_messages = snapshot["round_messages"]
        self.scheduler.current_round = snapshot["current_round"]

    # -- checkpointing ---------------------------------------------------
    def _checkpoint_runtime(self) -> Optional[Dict[str, Any]]:
        injector = self.failure_injector
        return {
            "tracker": self._tracker_state(),
            "drop_probability": float(self.scheduler.drop_probability),
            "scheduler": {
                "rng_state": rng_state_to_dict(self.scheduler._rng),
                "current_round": int(self.scheduler.current_round),
                "stats": {
                    "messages": int(self.scheduler.stats.messages),
                    "transmissions": int(self.scheduler.stats.transmissions),
                    "bytes_sent": int(self.scheduler.stats.bytes_sent),
                    "dropped": int(self.scheduler.stats.dropped),
                    "per_round_messages": [
                        int(v) for v in self.scheduler.stats.per_round_messages
                    ],
                },
            },
            "failures": (
                {
                    "scheduled": {
                        str(round_index): [int(i) for i in node_ids]
                        for round_index, node_ids in injector.scheduled.items()
                    },
                    "random_failure_rate": float(injector.random_failure_rate),
                    "rng_state": rng_state_to_dict(injector.rng),
                    "killed": [int(i) for i in injector.killed],
                }
                if injector is not None
                else None
            ),
        }

    def _restore_runtime(self, payload: Optional[Dict[str, Any]]) -> None:
        from repro.runtime.failures import FailureInjector

        payload = payload or {}
        self._restore_tracker_state(payload.get("tracker"))

        scheduler_payload = payload.get("scheduler")
        if scheduler_payload is not None:
            self.scheduler.drop_probability = float(
                payload.get("drop_probability", self.scheduler.drop_probability)
            )
            self.scheduler._rng = rng_from_state(scheduler_payload["rng_state"])
            self.scheduler.current_round = int(scheduler_payload["current_round"])
            stats_payload = scheduler_payload["stats"]
            self.scheduler.stats.messages = int(stats_payload["messages"])
            self.scheduler.stats.transmissions = int(stats_payload["transmissions"])
            self.scheduler.stats.bytes_sent = int(stats_payload["bytes_sent"])
            self.scheduler.stats.dropped = int(stats_payload["dropped"])
            self.scheduler.stats.per_round_messages = [
                int(v) for v in stats_payload["per_round_messages"]
            ]

        failures_payload = payload.get("failures")
        if failures_payload is not None:
            injector = FailureInjector(
                scheduled={
                    int(round_index): [int(i) for i in node_ids]
                    for round_index, node_ids in failures_payload["scheduled"].items()
                },
                random_failure_rate=float(failures_payload["random_failure_rate"]),
                rng=rng_from_state(failures_payload["rng_state"]),
            )
            injector.killed = [int(i) for i in failures_payload["killed"]]
            self.failure_injector = injector

        self._have_regions = False


class StaticDeployer(Deployer):
    """No movement: ranges sized to the dominating regions in place.

    One ``step()`` completes the run; the result reports zero rounds
    and an empty history — exactly the shape the static pipeline (the
    lifetime baselines) has always produced.
    """

    kind = "static"

    def step(self) -> RoundEvent:
        from repro.voronoi.dominating import compute_dominating_region

        self._require_active()
        network = self.network
        region = network.region
        positions = network.positions()
        ranges: List[float] = []
        for i, pos in enumerate(positions):
            others = [p for j, p in enumerate(positions) if j != i]
            dom = compute_dominating_region(pos, others, region, self.config.k)
            ranges.append(float(dom.circumradius(pos)))
        for node_id, r in enumerate(ranges):
            network.set_sensing_range(node_id, r)
        self._ranges = ranges
        self._converged = True
        stats = RoundStats(
            round_index=0,
            max_circumradius=0.0,
            min_circumradius=0.0,
            max_range_from_position=max(ranges) if ranges else 0.0,
            min_range_from_position=min(ranges) if ranges else 0.0,
            max_displacement=0.0,
            mean_displacement=0.0,
        )
        return RoundEvent(
            round_index=0,
            stats=stats,
            displacements=[0.0] * len(ranges),
            ranges_from_position=ranges,
            centers={},
            positions=positions,
            moved=False,
            converged=True,
            done=True,
        )

    def result(self) -> SimulationResult:
        if self._result is not None:
            return self._result
        if not self._converged:
            self.step()
        self._result = SimulationResult(
            config=self.config,
            initial_positions=self._initial_positions,
            final_positions=list(self.network.positions()),
            sensing_ranges=self._ranges,
            converged=True,
            rounds_executed=0,
            history=[],
            kind=self.kind,
        )
        return self._result


#: Deployer classes by kind — the kinds double as scenario pipelines.
DEPLOYERS: Dict[str, type] = {
    CentralizedDeployer.kind: CentralizedDeployer,
    DistributedDeployer.kind: DistributedDeployer,
    StaticDeployer.kind: StaticDeployer,
}
