"""The typed per-round event stream of a :class:`~repro.api.Simulation`.

Every :meth:`Simulation.step` produces one :class:`RoundEvent`; session
observers receive the same object.  The event carries everything the
round computed — the recorded :class:`RoundStats`, the raw displacement
and range vectors, the Chebyshev centers, the post-move positions and
(optionally) the dominating regions themselves — so probes can measure
coverage, energy or convergence *during* the run instead of recomputing
from final state.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.api.results import RoundStats
from repro.geometry.primitives import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.voronoi.dominating import DominatingRegion


@dataclasses.dataclass
class RoundEvent:
    """Everything one synchronous round produced.

    Attributes:
        round_index: zero-based index of the round just executed.
        stats: the per-round summary recorded into the result history.
        displacements: node-to-Chebyshev-center distance per alive node,
            in alive-node order (the stopping-rule quantity).
        ranges_from_position: the paper's ``R-hat`` per alive node —
            distance from the node's start-of-round position to the
            farthest point of its dominating region.
        centers: Chebyshev center of every alive node's region, keyed
            by node id.
        positions: positions of *all* nodes after this round's move
            (identical to the start-of-round positions when the round
            converged — a converged round does not move).
        moved: whether the synchronous move was applied this round.
        converged: whether this round satisfied the stopping rule.
        done: whether the session is complete (converged or round cap).
        regions: the dominating regions themselves, keyed by node id —
            only populated when the session was created with
            ``expose_regions=True`` (they are live geometry objects,
            omitted by default to keep observers cheap).
    """

    round_index: int
    stats: RoundStats
    displacements: List[float]
    ranges_from_position: List[float]
    centers: Dict[int, Point]
    positions: List[Point]
    moved: bool
    converged: bool
    done: bool
    regions: Optional[Dict[int, "DominatingRegion"]] = None
