"""Ready-made session observers (probes) built on ``repro.analysis``.

Probes attach to a :class:`~repro.api.Simulation` with
``sim.add_observer(probe)`` and measure the deployment *while it runs*
instead of recomputing from final state:

* :class:`ConvergenceProbe` — the stopping-rule trace (max displacement
  per round) plus the Figure-6 circumradius curves;
* :class:`EnergyProbe` — the sensing-load balance the current round's
  ranges would imply (``R-hat`` as the hypothetical sensing range);
* :class:`CoverageProbe` — periodic k-coverage evaluation of the
  in-flight deployment on a sample grid.

Each probe is a callable of one :class:`~repro.api.events.RoundEvent`
and accumulates plain-data traces, so they compose with any other
callback and serialize trivially.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.api.events import RoundEvent


class ConvergenceProbe:
    """Records the stopping-rule and circumradius traces round by round."""

    def __init__(self) -> None:
        self.max_displacements: List[float] = []
        self.max_circumradii: List[float] = []
        self.min_circumradii: List[float] = []
        self.converged_at: Optional[int] = None

    def __call__(self, event: RoundEvent) -> None:
        self.max_displacements.append(event.stats.max_displacement)
        self.max_circumradii.append(event.stats.max_circumradius)
        self.min_circumradii.append(event.stats.min_circumradius)
        if event.converged and self.converged_at is None:
            self.converged_at = event.round_index

    @property
    def rounds(self) -> int:
        """How many rounds have been observed."""
        return len(self.max_displacements)


class EnergyProbe:
    """Tracks the sensing-load balance the in-flight ranges would imply.

    Every round the paper's ``R-hat`` values (the range each node would
    need *right now*) are fed to the energy model, yielding per-round
    max/total sensing loads and the imbalance ratio — the load-balancing
    story of Sec. V-A as a live trace.
    """

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self.rounds: List[int] = []
        self.max_loads: List[float] = []
        self.total_loads: List[float] = []
        self.imbalances: List[float] = []

    def __call__(self, event: RoundEvent) -> None:
        if event.round_index % self.every and not event.done:
            return
        from repro.analysis.energy import energy_report

        report = energy_report(event.ranges_from_position)
        self.rounds.append(event.round_index)
        self.max_loads.append(report.max_load)
        self.total_loads.append(report.total_load)
        self.imbalances.append(report.imbalance)


class CoverageProbe:
    """Periodically evaluates k-coverage of the in-flight deployment.

    Coverage evaluation is grid-based and comparatively expensive, so
    the probe samples every ``every`` rounds (and always on the final
    round).  The hypothetical sensing ranges are the round's ``R-hat``
    values — exactly the ranges the run would finalize with if it
    stopped now.
    """

    def __init__(self, region: Any, k: int, resolution: int = 40, every: int = 5) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.region = region
        self.k = k
        self.resolution = resolution
        self.every = every
        self.rounds: List[int] = []
        self.fractions: List[float] = []

    def __call__(self, event: RoundEvent) -> None:
        if event.round_index % self.every and not event.done:
            return
        from repro.analysis.coverage import evaluate_coverage

        alive_positions = [
            p for p, r in zip(event.positions, self._padded_ranges(event)) if r > 0.0
        ]
        alive_ranges = [r for r in self._padded_ranges(event) if r > 0.0]
        report = evaluate_coverage(
            alive_positions, alive_ranges, self.region, self.k, resolution=self.resolution
        )
        self.rounds.append(event.round_index)
        self.fractions.append(report.fraction_k_covered)

    def _padded_ranges(self, event: RoundEvent) -> List[float]:
        # ranges_from_position is alive-node-ordered; positions covers all
        # nodes.  When they already agree in length, use them verbatim;
        # otherwise pad dead slots with zero (dead nodes sense nothing).
        if len(event.ranges_from_position) == len(event.positions):
            return event.ranges_from_position
        ranges = [0.0] * len(event.positions)
        alive_ids = sorted(event.centers)
        for node_id, r in zip(alive_ids, event.ranges_from_position):
            ranges[node_id] = r
        return ranges

    def summary(self) -> Dict[str, Any]:
        """Compact trace summary (rounds sampled and fractions seen)."""
        return {"rounds": list(self.rounds), "fractions": list(self.fractions)}
