"""Typed, lossless, versioned result types of the v1 public API.

:class:`SimulationResult` is *the* result of every deployment run —
centralized, distributed and static alike.  It is the evolution of the
old ``LaacadResult`` (which is now an alias): same core fields and
derived properties, plus

* a ``kind`` tag identifying which deployer produced it,
* optional communication accounting and failure bookkeeping for
  distributed runs, and
* a **lossless, versioned** ``to_dict()`` / ``from_dict()`` pair:
  ``SimulationResult.from_dict(result.to_dict()) == result`` holds
  field-for-field, including every per-round :class:`RoundStats` entry
  (ring/hop and communication fields included) and the optional
  position history.  The dict is JSON-compatible, and a JSON round-trip
  preserves equality too (Python's ``json`` emits shortest round-trip
  float representations).

The per-round statistics types (:class:`RoundStats`,
:class:`DistributedRoundStats`) live here as well — they are part of
the public event/result surface; ``repro.core.laacad`` and
``repro.runtime.protocol`` re-export them for backwards compatibility.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional

from repro.geometry.primitives import Point, distance

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle:
    # repro.core re-exports the legacy result shims, which import this module)
    from repro.core.config import LaacadConfig

#: Version of the ``SimulationResult.to_dict`` payload layout.  Bump
#: whenever a field is renamed/retyped so persisted results are never
#: misread; ``from_dict`` rejects unknown versions.
RESULT_FORMAT_VERSION = 1


@dataclasses.dataclass
class RoundStats:
    """Per-round summary of the deployment state.

    Attributes:
        round_index: zero-based round number.
        max_circumradius: largest smallest-enclosing-circle radius over
            all dominating regions (the quantity plotted in Figure 6).
        min_circumradius: smallest such radius.
        max_range_from_position: the paper's ``R-hat`` — the largest
            distance from a node's *current* position to the farthest
            point of its dominating region.
        min_range_from_position: the smallest such distance.
        max_displacement: largest node-to-Chebyshev-center distance this
            round (the stopping-rule quantity).
        mean_displacement: average of those distances.
        max_ring_hops: deepest expanding-ring search this round (only
            populated by the localized back-end; 0 otherwise).
    """

    round_index: int
    max_circumradius: float
    min_circumradius: float
    max_range_from_position: float
    min_range_from_position: float
    max_displacement: float
    mean_displacement: float
    max_ring_hops: int = 0


@dataclasses.dataclass
class DistributedRoundStats(RoundStats):
    """Round statistics extended with communication accounting."""

    messages: int = 0
    transmissions: int = 0
    bytes_sent: int = 0


def round_stats_from_dict(payload: Mapping[str, Any]) -> RoundStats:
    """Rebuild the right stats type from its ``dataclasses.asdict`` form."""
    data = dict(payload)
    if {"messages", "transmissions", "bytes_sent"} & set(data):
        return DistributedRoundStats(**data)
    return RoundStats(**data)


@dataclasses.dataclass
class CommunicationSummary:
    """Total communication cost of a distributed run (lossless subset
    of the scheduler's :class:`~repro.runtime.scheduler.CommunicationStats`
    that the result payload has always exposed)."""

    messages: int = 0
    transmissions: int = 0
    bytes_sent: int = 0
    dropped: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "messages": int(self.messages),
            "transmissions": int(self.transmissions),
            "bytes_sent": int(self.bytes_sent),
            "dropped": int(self.dropped),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CommunicationSummary":
        return cls(**{k: int(v) for k, v in payload.items()})

    @classmethod
    def from_stats(cls, stats: Any) -> "CommunicationSummary":
        """Summarise a scheduler ``CommunicationStats`` object."""
        return cls(
            messages=int(stats.messages),
            transmissions=int(stats.transmissions),
            bytes_sent=int(stats.bytes_sent),
            dropped=int(stats.dropped),
        )


def _point_list(points) -> List[List[float]]:
    return [[float(x), float(y)] for x, y in points]


def _tuple_points(points) -> List[Point]:
    return [(float(p[0]), float(p[1])) for p in points]


@dataclasses.dataclass
class SimulationResult:
    """Outcome of one deployment run, for every deployer kind.

    The first eight fields are exactly the old ``LaacadResult`` layout
    (the class is a drop-in replacement and ``LaacadResult`` aliases
    it); the trailing fields carry the deployer kind and the
    distributed-only extras.
    """

    config: Optional["LaacadConfig"]
    initial_positions: List[Point]
    final_positions: List[Point]
    sensing_ranges: List[float]
    converged: bool
    rounds_executed: int
    history: List[RoundStats]
    position_history: Optional[List[List[Point]]] = None
    kind: str = "laacad"
    communication: Optional[CommunicationSummary] = None
    killed_nodes: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Derived quantities (unchanged from LaacadResult)
    # ------------------------------------------------------------------
    @property
    def max_sensing_range(self) -> float:
        """The optimisation objective ``R*`` (maximum sensing range)."""
        return max(self.sensing_ranges) if self.sensing_ranges else 0.0

    @property
    def min_sensing_range(self) -> float:
        """The smallest sensing range in the final deployment."""
        return min(self.sensing_ranges) if self.sensing_ranges else 0.0

    @property
    def range_spread(self) -> float:
        """Max minus min sensing range — the load-balance indicator of Sec. V-A."""
        return self.max_sensing_range - self.min_sensing_range

    def max_circumradius_trace(self) -> List[float]:
        """Per-round maximum circumradius (the upper curves of Figure 6)."""
        return [s.max_circumradius for s in self.history]

    def min_circumradius_trace(self) -> List[float]:
        """Per-round minimum circumradius (the lower curves of Figure 6)."""
        return [s.min_circumradius for s in self.history]

    def total_distance_traveled(self) -> float:
        """Total movement of all nodes from start to final positions (straight-line lower bound)."""
        return sum(
            distance(a, b) for a, b in zip(self.initial_positions, self.final_positions)
        )

    # ------------------------------------------------------------------
    # Lossless serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible dict carrying every field (plus derived scalars).

        The layout is a strict superset of the payload the scenario
        pipelines have always produced, so downstream row extraction and
        the golden-output suite keep working unchanged; the additions
        (``schema_version``, ``kind``, ``config``, the optional
        ``position_history``) make the payload lossless.
        """
        payload: Dict[str, Any] = {
            "schema_version": RESULT_FORMAT_VERSION,
            "kind": self.kind,
            "node_count": len(self.final_positions),
            "converged": bool(self.converged),
            "rounds_executed": int(self.rounds_executed),
            "initial_positions": _point_list(self.initial_positions),
            "final_positions": _point_list(self.final_positions),
            "sensing_ranges": [float(r) for r in self.sensing_ranges],
            "max_sensing_range": float(self.max_sensing_range),
            "min_sensing_range": float(self.min_sensing_range),
            "total_movement": float(self.total_distance_traveled()),
            "history": [dataclasses.asdict(stats) for stats in self.history],
            "config": dataclasses.asdict(self.config) if self.config is not None else None,
        }
        if self.position_history is not None:
            payload["position_history"] = [
                _point_list(snapshot) for snapshot in self.position_history
            ]
        if self.communication is not None:
            payload["communication"] = self.communication.to_dict()
        if self.killed_nodes is not None:
            payload["killed_nodes"] = [int(i) for i in self.killed_nodes]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output (lossless inverse).

        Derived scalars (``node_count``, ``max_sensing_range``, ...) are
        ignored — they are recomputed from the carried fields.
        """
        from repro.core.config import LaacadConfig

        version = payload.get("schema_version", RESULT_FORMAT_VERSION)
        if version != RESULT_FORMAT_VERSION:
            raise ValueError(
                f"unsupported SimulationResult schema_version {version!r} "
                f"(this build reads version {RESULT_FORMAT_VERSION})"
            )
        config_payload = payload.get("config")
        position_history = payload.get("position_history")
        communication = payload.get("communication")
        killed_nodes = payload.get("killed_nodes")
        return cls(
            config=(
                LaacadConfig.from_mapping(config_payload)
                if config_payload is not None
                else None
            ),
            initial_positions=_tuple_points(payload["initial_positions"]),
            final_positions=_tuple_points(payload["final_positions"]),
            sensing_ranges=[float(r) for r in payload["sensing_ranges"]],
            converged=bool(payload["converged"]),
            rounds_executed=int(payload["rounds_executed"]),
            history=[round_stats_from_dict(entry) for entry in payload["history"]],
            position_history=(
                [_tuple_points(snapshot) for snapshot in position_history]
                if position_history is not None
                else None
            ),
            kind=str(payload.get("kind", "laacad")),
            communication=(
                CommunicationSummary.from_dict(communication)
                if communication is not None
                else None
            ),
            killed_nodes=(
                [int(i) for i in killed_nodes] if killed_nodes is not None else None
            ),
        )
