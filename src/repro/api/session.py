"""The :class:`Simulation` session — the v1 entry point for every run.

A session wraps a :class:`~repro.api.deployers.Deployer` and adds the
public ergonomics: flexible construction (from a
:class:`~repro.scenarios.spec.ScenarioSpec`, a
:class:`~repro.core.config.LaacadConfig` plus a network/positions, or
plain scenario kwargs), a typed observable event stream, and
checkpoint/resume.

Quickstart::

    from repro.api import Simulation

    sim = Simulation(node_count=40, k=2, seed=7)           # kwargs
    sim.add_observer(lambda e: print(e.round_index, e.stats.max_circumradius))
    result = sim.run()

    sim = Simulation.from_spec(make_scenario("corner_cluster", k=2))
    for event in sim.events():                              # steppable
        if event.stats.max_displacement < 0.01:
            break
    sim.save_checkpoint("run.ckpt.json")                    # preemptible
    ...
    result = Simulation.restore("run.ckpt.json").run()      # bitwise resume
"""

from __future__ import annotations

import logging
import time
import warnings
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.api.checkpoint import SimulationCheckpoint, region_from_dict
from repro.api.deployers import (
    DEPLOYERS,
    CentralizedDeployer,
    Deployer,
    DistributedDeployer,
    SessionState,
    StaticDeployer,
)
from repro.api.events import RoundEvent
from repro.api.results import SimulationResult
from repro.core.config import LaacadConfig
from repro.network.mobility import MobilityModel
from repro.network.network import SensorNetwork
from repro.obs import trace as _trace

Observer = Callable[[RoundEvent], None]

logger = logging.getLogger(__name__)

#: Sentinel distinguishing "not passed" from an explicit default value,
#: so construction-form dispatch can route shared keywords (comm_range,
#: drop_probability, mobility) to the right destination or reject them.
_UNSET: Any = object()


class Simulation:
    """A steppable, observable, resumable deployment session.

    Construction forms (all equivalent in power):

    * ``Simulation(spec)`` / ``Simulation.from_spec(spec)`` — from a
      declarative scenario; the spec's ``pipeline`` selects the deployer
      (``laacad``, ``distributed`` or ``static``).
    * ``Simulation(network=..., config=...)`` — from live objects;
      ``kind`` selects the deployer (default ``"laacad"``), and the
      distributed extras (``drop_probability``, ``failure_injector``,
      ``rng``) apply when ``kind="distributed"``.
    * ``Simulation(region=..., positions=..., config=...)`` — builds the
      network for you (the old ``run_laacad`` convenience).
    * ``Simulation(node_count=40, k=2, ...)`` — any
      :class:`~repro.scenarios.spec.ScenarioSpec` fields as kwargs.

    The session mutates its network in place exactly like the old
    runners: positions evolve every round and ``result()`` writes the
    final sensing ranges back, so the network afterwards *is* the
    converged deployment.
    """

    def __init__(
        self,
        source: Any = None,
        *,
        deployer: Optional[Deployer] = None,
        network: Optional[SensorNetwork] = None,
        config: Optional[LaacadConfig] = None,
        region: Any = None,
        positions: Any = None,
        comm_range: Any = _UNSET,
        mobility: Any = _UNSET,
        kind: Optional[str] = None,
        drop_probability: Any = _UNSET,
        failure_injector: Any = None,
        rng: Any = None,
        expose_regions: bool = False,
        **scenario_kwargs: Any,
    ) -> None:
        self._observers: List[Observer] = []
        self.spec = None
        self._idle_since = time.monotonic()

        if deployer is not None:
            self.deployer = deployer
            return
        if source is not None:
            if isinstance(source, Deployer):
                self.deployer = source
                return
            # Anything else positional is treated as a scenario spec.
            if scenario_kwargs:
                raise TypeError(
                    f"unexpected keyword arguments with a scenario spec: "
                    f"{sorted(scenario_kwargs)}; derive a new spec with "
                    "spec.replace(...) instead"
                )
            self.deployer = self._deployer_from_spec(
                source, kind=kind, expose_regions=expose_regions
            )
            return
        if network is None and region is not None and positions is not None:
            network = SensorNetwork(
                region,
                list(positions),
                comm_range=0.25 if comm_range is _UNSET else comm_range,
            )
            comm_range = _UNSET
        if network is not None:
            if comm_range is not _UNSET:
                raise TypeError(
                    "comm_range cannot be overridden for an existing network"
                )
            if config is None:
                config = (
                    LaacadConfig.from_mapping(scenario_kwargs)
                    if scenario_kwargs
                    else LaacadConfig()
                )
            elif scenario_kwargs:
                raise TypeError(
                    f"unexpected keyword arguments alongside an explicit "
                    f"config: {sorted(scenario_kwargs)}"
                )
            self.deployer = self._make_deployer(
                kind or "laacad",
                network,
                config,
                mobility=None if mobility is _UNSET else mobility,
                drop_probability=(
                    0.0 if drop_probability is _UNSET else drop_probability
                ),
                failure_injector=failure_injector,
                rng=rng,
                expose_regions=expose_regions,
            )
            return
        # kwargs form: build a ScenarioSpec from the keywords.  Shared
        # keywords that are also spec fields are folded in explicitly —
        # they must not be silently shadowed by this signature.
        from repro.scenarios.spec import ScenarioSpec

        if failure_injector is not None or rng is not None:
            raise TypeError(
                "failure_injector/rng are only accepted together with a "
                "network; in the kwargs form describe failures with the "
                "'failures' spec field (and seeds with 'seed')"
            )
        if kind is not None and "pipeline" not in scenario_kwargs:
            scenario_kwargs["pipeline"] = kind
        if comm_range is not _UNSET:
            scenario_kwargs.setdefault("comm_range", comm_range)
        if drop_probability is not _UNSET:
            scenario_kwargs.setdefault("drop_probability", drop_probability)
        if mobility is not _UNSET and mobility is not None:
            if isinstance(mobility, MobilityModel):
                mobility = {
                    "max_step": mobility.max_step,
                    "keep_in_region": mobility.keep_in_region,
                }
            scenario_kwargs.setdefault("mobility", mobility)
        spec = ScenarioSpec(**scenario_kwargs)
        self.deployer = self._deployer_from_spec(spec, expose_regions=expose_regions)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Any, expose_regions: bool = False) -> "Simulation":
        """Build a session from a declarative scenario spec."""
        return cls(spec, expose_regions=expose_regions)

    def _deployer_from_spec(
        self, spec: Any, kind: Optional[str] = None, expose_regions: bool = False
    ) -> Deployer:
        self.spec = spec
        deployer_kind = kind or spec.pipeline
        if deployer_kind not in DEPLOYERS:
            raise ValueError(
                f"scenario pipeline {deployer_kind!r} is not a deployment; "
                f"Simulation supports: {', '.join(sorted(DEPLOYERS))} "
                "(analysis pipelines run via spec.run())"
            )
        return self._make_deployer(
            deployer_kind,
            spec.build_network(),
            spec.build_config(),
            mobility=spec.build_mobility(),
            drop_probability=spec.drop_probability,
            failure_injector=spec.build_failure_injector(),
            expose_regions=expose_regions,
        )

    @staticmethod
    def _make_deployer(
        kind: str,
        network: SensorNetwork,
        config: LaacadConfig,
        mobility: Optional[MobilityModel] = None,
        drop_probability: float = 0.0,
        failure_injector: Any = None,
        rng: Any = None,
        expose_regions: bool = False,
    ) -> Deployer:
        if kind == "laacad":
            return CentralizedDeployer(
                network, config, mobility=mobility, expose_regions=expose_regions
            )
        if kind == "distributed":
            return DistributedDeployer(
                network,
                config,
                mobility=mobility,
                drop_probability=drop_probability,
                failure_injector=failure_injector,
                rng=rng,
            )
        if kind == "static":
            return StaticDeployer(network, config, mobility=mobility)
        raise ValueError(
            f"unknown deployer kind {kind!r}; available: {', '.join(sorted(DEPLOYERS))}"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def network(self) -> SensorNetwork:
        """The live network the session is deploying."""
        return self.deployer.network

    @property
    def config(self) -> LaacadConfig:
        """The run configuration."""
        return self.deployer.config

    @property
    def state(self) -> SessionState:
        """Where the run stands (rounds, convergence, positions)."""
        return self.deployer.state

    @property
    def done(self) -> bool:
        """True once the run is complete (converged or at the round cap)."""
        return self.deployer.done

    @property
    def idle_since(self) -> float:
        """Monotonic timestamp of the last driving activity.

        Updated on construction, every :meth:`step` and every
        :meth:`touch`.  ``time.monotonic() - sim.idle_since`` is how
        long the session has sat idle — what an eviction policy ranks
        sessions by (see ``repro.service``) without serializing them.
        """
        return self._idle_since

    def touch(self) -> None:
        """Mark the session as just-used (resets :attr:`idle_since`)."""
        self._idle_since = time.monotonic()

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def add_observer(self, observer: Observer) -> Observer:
        """Attach a per-round callback; returns it (decorator-friendly)."""
        self._observers.append(observer)
        return observer

    def remove_observer(self, observer: Observer) -> None:
        """Detach a previously attached callback (no-op if absent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def step(self) -> RoundEvent:
        """Execute one round and fan the event out to the observers.

        Observer exceptions cannot corrupt the session: the round has
        already completed by the time observers run, and a raising
        observer is logged and detached so the remaining observers (and
        all future rounds) keep receiving events.
        """
        with _trace.span("round", index=self.state.rounds_executed):
            event = self.deployer.step()
        self._idle_since = time.monotonic()
        for observer in list(self._observers):
            try:
                with _trace.span("observer", round=event.round_index):
                    observer(event)
            except Exception:
                logger.exception(
                    "observer %r raised on round %d; detaching it "
                    "(session state is unaffected)",
                    observer,
                    event.round_index,
                )
                self.remove_observer(observer)
        return event

    def events(self, until: Optional[int] = None) -> Iterator[RoundEvent]:
        """Iterate rounds lazily: ``for event in sim.events(): ...``."""
        while not self.done and (
            until is None or self.state.rounds_executed < until
        ):
            yield self.step()

    def run(
        self,
        until: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
    ) -> SimulationResult:
        """Run to completion (or to ``until`` rounds) and finalize.

        With ``checkpoint_every`` and ``checkpoint_path`` the session
        writes a full checkpoint every N rounds (and once more when the
        run completes), making long runs preemption-safe.
        """
        if (checkpoint_every is None) != (checkpoint_path is None):
            raise ValueError(
                "checkpoint_every and checkpoint_path must be given together"
            )
        for event in self.events(until=until):
            if (
                checkpoint_every
                and event.round_index % checkpoint_every == checkpoint_every - 1
            ):
                self.save_checkpoint(checkpoint_path)
        if checkpoint_every and self.done:
            self.save_checkpoint(checkpoint_path)
        return self.deployer.result()

    def result(self) -> SimulationResult:
        """Finalize sensing ranges and return the result (cached once done)."""
        return self.deployer.result()

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def checkpoint(self) -> SimulationCheckpoint:
        """Snapshot the complete session state (round-boundary exact)."""
        payload = self.deployer.checkpoint_payload()
        if self.spec is not None:
            payload["spec"] = self.spec.to_dict()
            payload["spec_digest"] = self.spec.digest()
        return SimulationCheckpoint(payload)

    def save_checkpoint(self, path: Union[str, Path]) -> Path:
        """Snapshot and write to ``path`` atomically."""
        return self.checkpoint().save(path)

    @classmethod
    def restore(
        cls, checkpoint: Union[SimulationCheckpoint, Dict[str, Any], str, Path]
    ) -> "Simulation":
        """Rebuild a session from a checkpoint (object, dict, or path).

        The restored session continues bitwise-identically to the
        uninterrupted run: positions, RNG streams, convergence state and
        history are all part of the snapshot.
        """
        if isinstance(checkpoint, (str, Path)):
            checkpoint = SimulationCheckpoint.load(checkpoint)
        elif isinstance(checkpoint, dict):
            checkpoint = SimulationCheckpoint.from_dict(checkpoint)
        payload = checkpoint.payload

        region = region_from_dict(payload["region"])
        nodes = payload["nodes"]
        network = SensorNetwork(
            region,
            [(float(p[0]), float(p[1])) for p in nodes["positions"]],
            comm_range=float(payload["comm_range"]),
        )
        for node, alive, sensing_range, traveled in zip(
            network.nodes,
            nodes["alive"],
            nodes["sensing_ranges"],
            nodes["distance_traveled"],
        ):
            node.alive = bool(alive)
            node.sensing_range = float(sensing_range)
            node.distance_traveled = float(traveled)
        network._invalidate()

        config = LaacadConfig.from_mapping(payload["config"])
        mobility = MobilityModel.from_dict(payload["mobility"])
        kind = payload["kind"]
        runtime = payload.get("runtime") or {}
        deployer = cls._make_deployer(
            kind,
            network,
            config,
            mobility=mobility,
            drop_probability=float(runtime.get("drop_probability", 0.0)),
        )
        deployer.restore_payload(payload)

        session = cls(deployer=deployer)
        if payload.get("spec") is not None:
            from repro.scenarios.spec import ScenarioSpec

            session.spec = ScenarioSpec.from_dict(payload["spec"])
        return session

    @classmethod
    def resume_or_start(
        cls, spec: Any, checkpoint_path: Union[str, Path]
    ) -> "Simulation":
        """Resume ``spec`` from a checkpoint file when one matches, else start fresh.

        A checkpoint is only adopted when its recorded scenario digest
        matches the spec (a stale file from another scenario is ignored),
        so this is safe to call unconditionally in pipelines.
        """
        path = Path(checkpoint_path)
        if path.exists():
            try:
                checkpoint = SimulationCheckpoint.load(path)
            except (OSError, ValueError, KeyError):
                checkpoint = None
            if checkpoint is not None and checkpoint.spec_digest == spec.digest():
                return cls.restore(checkpoint)
            warnings.warn(
                f"ignoring checkpoint {path} (it belongs to a different "
                "scenario or is unreadable); starting fresh",
                stacklevel=2,
            )
        return cls.from_spec(spec)


def deploy(
    region: Any,
    initial_positions: Any,
    config: LaacadConfig,
    comm_range: float = 0.25,
    mobility: Optional[MobilityModel] = None,
) -> SimulationResult:
    """One-call centralized deployment (the ``run_laacad`` replacement)."""
    return Simulation(
        region=region,
        positions=initial_positions,
        config=config,
        comm_range=comm_range,
        mobility=mobility,
    ).run()
