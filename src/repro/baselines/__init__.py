"""Baselines and comparison deployments.

The paper compares LAACAD against:

* the optimal 2-coverage density of Bai et al. [3] (Table I),
* the Reuleaux-triangle lens deployment of Ammari & Das [15] (Table II),

and discusses it relative to classical 1-coverage movement strategies
(VOR/Minimax of Wang et al. [9]).  All three are implemented here, along
with random and lattice deployments used as initial conditions and as
sanity baselines.
"""

from repro.baselines.random_deploy import random_deployment, corner_deployment
from repro.baselines.lattice import square_lattice, triangular_lattice, hexagonal_lattice
from repro.baselines.bai import bai_minimum_nodes, bai_optimal_density, bai_strip_deployment
from repro.baselines.ammari import ammari_node_count, ammari_lens_deployment
from repro.baselines.minimax1 import MinimaxVoronoiMover

__all__ = [
    "random_deployment",
    "corner_deployment",
    "square_lattice",
    "triangular_lattice",
    "hexagonal_lattice",
    "bai_minimum_nodes",
    "bai_optimal_density",
    "bai_strip_deployment",
    "ammari_node_count",
    "ammari_lens_deployment",
    "MinimaxVoronoiMover",
]
