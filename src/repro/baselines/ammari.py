"""Ammari & Das [15]: Reuleaux-triangle lens deployment (Table II baseline).

Ammari & Das decompose the target area into adjacent Reuleaux triangles
of width ``r`` (the sensing range) and place ``k`` nodes in each lens
(the intersection of neighbouring triangles).  Their node-count formula,
quoted by the paper for ``k >= 3``, is::

    N*_k = 6 k |A| / ((4 pi - 3 sqrt 3) r^2)

Table II evaluates this formula at LAACAD's achieved per-``k`` maximum
sensing range ``R*_k`` and contrasts it with the 180 nodes LAACAD used.
A constructive lens deployment is also provided so that the baseline's
coverage can be verified with the grid checker.
"""

from __future__ import annotations

import math
from typing import List

from repro.geometry.primitives import Point
from repro.regions.region import Region


def ammari_node_count(area: float, sensing_range: float, k: int) -> int:
    """The Table II node-count formula ``6 k |A| / ((4 pi - 3 sqrt 3) r^2)``."""
    if area <= 0:
        raise ValueError("area must be positive")
    if sensing_range <= 0:
        raise ValueError("sensing_range must be positive")
    if k < 3:
        raise ValueError("the Ammari-Das formula is quoted for k >= 3")
    return int(math.ceil(6.0 * k * area / ((4.0 * math.pi - 3.0 * math.sqrt(3.0)) * sensing_range**2)))


def lens_area(sensing_range: float) -> float:
    """Area of one lens (intersection of two unit-width Reuleaux triangles).

    For two disks of radius ``r`` whose centers are ``r`` apart the lens
    area is ``(2 pi / 3 - sqrt(3) / 2) r^2``; the Reuleaux lens the
    deployment uses has the same order of magnitude and this value is
    only used for reporting densities, not for the node-count formula.
    """
    if sensing_range <= 0:
        raise ValueError("sensing_range must be positive")
    return (2.0 * math.pi / 3.0 - math.sqrt(3.0) / 2.0) * sensing_range**2


def ammari_lens_deployment(region: Region, sensing_range: float, k: int) -> List[Point]:
    """Constructive lens deployment: ``k`` co-located nodes per lens center.

    The lens centers form a triangular lattice of spacing ``r`` (the
    Reuleaux triangle width); placing ``k`` nodes at each center
    guarantees that every point — which is always within ``r`` of the
    nearest lens center on such a lattice — is covered by at least ``k``
    nodes.  The tiny jitter added to co-located nodes keeps downstream
    geometric code free of exactly-duplicated sites.
    """
    if sensing_range <= 0:
        raise ValueError("sensing_range must be positive")
    if k < 1:
        raise ValueError("k must be positive")
    spacing = sensing_range
    row_height = spacing * math.sqrt(3.0) / 2.0
    xmin, ymin, xmax, ymax = region.bbox
    points: List[Point] = []
    jitter = sensing_range * 1e-6
    row = 0
    y = ymin
    while y <= ymax + row_height:
        offset = (spacing / 2.0) if row % 2 else 0.0
        x = xmin
        while x <= xmax + spacing:
            center = (min(max(x + offset, xmin), xmax), min(max(y, ymin), ymax))
            if region.contains(center):
                for copy_index in range(k):
                    points.append(
                        (center[0] + jitter * copy_index, center[1] + jitter * copy_index)
                    )
            x += spacing
        y += row_height
        row += 1
    return points
