"""Bai et al. [3]: optimal 2-coverage deployment density (Table I baseline).

Bai et al. prove that, ignoring boundary effects, the optimal congruent
deployment density for 2-coverage is ``4 pi / (3 sqrt(3))`` (deployment
density = ratio of total sensing-disk area to the area of the Voronoi
polygons).  The paper's Table I converts LAACAD's achieved maximum
sensing range ``R*`` into the minimum node count this density implies::

    N*_{k=2} = |A| * (4 pi / (3 sqrt 3)) / (pi R*^2) = 4 |A| / (3 sqrt 3 R*^2)

and compares it with the node count LAACAD actually used.  Besides the
closed form we also provide a *constructive* strip deployment achieving
2-coverage with a given range, so the baseline is runnable and its
coverage can be verified by the same grid checker used for LAACAD.
"""

from __future__ import annotations

import math
from typing import List

from repro.geometry.primitives import Point
from repro.regions.region import Region


def bai_optimal_density() -> float:
    """The optimal 2-coverage deployment density ``4 pi / (3 sqrt 3)``."""
    return 4.0 * math.pi / (3.0 * math.sqrt(3.0))


def bai_minimum_nodes(area: float, sensing_range: float) -> int:
    """Minimum node count for 2-coverage of ``area`` with a common sensing range.

    This is the Table I quantity ``N*_{k=2} = 4 |A| / (3 sqrt(3) R*^2)``
    (boundary effects ignored, hence an under-estimate).
    """
    if area <= 0:
        raise ValueError("area must be positive")
    if sensing_range <= 0:
        raise ValueError("sensing_range must be positive")
    return int(math.ceil(4.0 * area / (3.0 * math.sqrt(3.0) * sensing_range**2)))


def bai_strip_deployment(region: Region, sensing_range: float) -> List[Point]:
    """A constructive (conservative) 2-coverage deployment with a common range.

    Nodes are placed on a triangular lattice with spacing slightly below
    the sensing range.  The binding constraint for 2-coverage of a plain
    lattice is at the node locations themselves (the second-nearest node
    must be within range), so spacing <= r guarantees 2-coverage
    everywhere; the price is a density above Bai et al.'s optimal
    ``4 pi / (3 sqrt 3)``.  Table I only uses the closed-form
    :func:`bai_minimum_nodes`; this constructive pattern exists so the
    baseline is runnable and its coverage can be verified with the same
    grid checker used for LAACAD.
    """
    if sensing_range <= 0:
        raise ValueError("sensing_range must be positive")
    spacing = 0.95 * sensing_range
    row_height = spacing * math.sqrt(3.0) / 2.0
    xmin, ymin, xmax, ymax = region.bbox
    points: List[Point] = []
    row = 0
    y = ymin
    while y <= ymax + row_height:
        offset = (spacing / 2.0) if row % 2 else 0.0
        x = xmin - spacing
        while x <= xmax + spacing:
            p = (x + offset, min(max(y, ymin), ymax))
            clamped = (min(max(p[0], xmin), xmax), p[1])
            if region.contains(clamped):
                points.append(clamped)
            x += spacing
        y += row_height
        row += 1
    # Deduplicate points that clamping may have collapsed together.
    unique: List[Point] = []
    seen = set()
    for p in points:
        key = (round(p[0], 9), round(p[1], 9))
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique
