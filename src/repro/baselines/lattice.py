"""Regular lattice deployments.

Regular deployments are the "blueprint" alternatives the paper contrasts
autonomous deployment against: they need centralized placement but serve
as strong baselines for coverage efficiency on regular areas.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.geometry.primitives import Point
from repro.regions.region import Region


def square_lattice(region: Region, spacing: float) -> List[Point]:
    """Grid points with the given spacing that fall inside the free area."""
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    xmin, ymin, xmax, ymax = region.bbox
    points: List[Point] = []
    y = ymin + spacing / 2.0
    while y <= ymax:
        x = xmin + spacing / 2.0
        while x <= xmax:
            p = (x, y)
            if region.contains(p):
                points.append(p)
            x += spacing
        y += spacing
    return points


def triangular_lattice(region: Region, spacing: float) -> List[Point]:
    """Equilateral-triangle lattice (hexagonal packing of points).

    This is the density-optimal arrangement for 1-coverage with identical
    disks of radius ``spacing / sqrt(3)``.
    """
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    xmin, ymin, xmax, ymax = region.bbox
    row_height = spacing * math.sqrt(3.0) / 2.0
    points: List[Point] = []
    row = 0
    y = ymin + row_height / 2.0
    while y <= ymax:
        offset = (spacing / 2.0) if row % 2 else 0.0
        x = xmin + spacing / 2.0 + offset
        while x <= xmax:
            p = (x, y)
            if region.contains(p):
                points.append(p)
            x += spacing
        y += row_height
        row += 1
    return points


def hexagonal_lattice(region: Region, spacing: float) -> List[Point]:
    """Honeycomb (hexagon-vertex) lattice with the given edge length."""
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    xmin, ymin, xmax, ymax = region.bbox
    points: List[Point] = []
    dx = spacing * 3.0
    dy = spacing * math.sqrt(3.0) / 2.0
    row = 0
    y = ymin
    while y <= ymax:
        base = xmin + (1.5 * spacing if row % 2 else 0.0)
        x = base
        while x <= xmax:
            for candidate in ((x, y), (x + spacing, y)):
                if region.contains(candidate):
                    points.append(candidate)
            x += dx
        y += dy
        row += 1
    return points


def lattice_for_count(
    region: Region, count: int, kind: str = "triangular", tolerance: int = 0
) -> List[Point]:
    """A lattice of roughly ``count`` nodes, found by bisection on the spacing.

    Args:
        region: the target area.
        count: desired node count.
        kind: ``"square"`` or ``"triangular"``.
        tolerance: acceptable deviation from ``count`` (0 = pick the
            closest achievable).
    """
    if count < 1:
        raise ValueError("count must be positive")
    builders = {"square": square_lattice, "triangular": triangular_lattice}
    if kind not in builders:
        raise ValueError(f"unknown lattice kind: {kind!r}")
    build = builders[kind]
    lo = region.diameter / (10.0 * math.sqrt(count) + 10.0)
    hi = region.diameter
    best: List[Point] = build(region, hi)
    for _ in range(60):
        mid = (lo + hi) / 2.0
        pts = build(region, mid)
        if abs(len(pts) - count) <= abs(len(best) - count):
            best = pts
        if len(pts) > count:
            lo = mid
        elif len(pts) < count:
            hi = mid
        else:
            return pts
        if abs(len(best) - count) <= tolerance:
            break
    return best
