"""Minimax Voronoi mover (the 1-coverage prior art of Wang et al. [9]).

The movement-assisted deployment algorithms the paper extends only handle
1-coverage: each node computes its *ordinary* Voronoi cell and moves
towards a point that reduces its worst-case distance to the cell (the
"Minimax" strategy).  We implement that strategy directly — it coincides
with LAACAD restricted to ``k = 1`` except for its termination rule — so
that the discussion of Sec. IV-C ("existing proposals only focus on
1-coverage") can be backed by a runnable comparison.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.geometry.chebyshev import chebyshev_center_of_pieces
from repro.geometry.primitives import Point, distance
from repro.network.mobility import MobilityModel
from repro.regions.region import Region
from repro.voronoi.ordinary import voronoi_cell


@dataclasses.dataclass
class MinimaxResult:
    """Outcome of a Minimax-Voronoi deployment run."""

    final_positions: List[Point]
    sensing_ranges: List[float]
    rounds_executed: int
    converged: bool
    max_range_trace: List[float]

    @property
    def max_sensing_range(self) -> float:
        """Largest final sensing range (1-coverage objective value)."""
        return max(self.sensing_ranges) if self.sensing_ranges else 0.0


class MinimaxVoronoiMover:
    """The classical 1-coverage minimax movement strategy."""

    def __init__(
        self,
        region: Region,
        alpha: float = 1.0,
        epsilon: float = 1e-3,
        max_rounds: int = 200,
        mobility: Optional[MobilityModel] = None,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")
        self.region = region
        self.alpha = alpha
        self.epsilon = epsilon
        self.max_rounds = max_rounds
        self.mobility = mobility if mobility is not None else MobilityModel()

    def run(self, initial_positions: Sequence[Point]) -> MinimaxResult:
        """Iterate: compute Voronoi cells, move towards their Chebyshev centers."""
        positions: List[Point] = [(float(x), float(y)) for x, y in initial_positions]
        if not positions:
            raise ValueError("at least one node is required")
        max_range_trace: List[float] = []
        converged = False
        rounds = 0
        ranges: List[float] = [0.0] * len(positions)
        for round_index in range(self.max_rounds):
            rounds = round_index + 1
            centers: List[Point] = []
            displacements: List[float] = []
            ranges = []
            for i, pos in enumerate(positions):
                others = [p for j, p in enumerate(positions) if j != i]
                pieces = voronoi_cell(pos, others, self.region)
                if not pieces:
                    centers.append(pos)
                    displacements.append(0.0)
                    ranges.append(0.0)
                    continue
                center, _ = chebyshev_center_of_pieces(pieces)
                centers.append(center)
                displacements.append(distance(pos, center))
                ranges.append(
                    max(distance(pos, v) for piece in pieces for v in piece)
                )
            max_range_trace.append(max(ranges) if ranges else 0.0)
            if max(displacements) <= self.epsilon:
                converged = True
                break
            new_positions: List[Point] = []
            for pos, center in zip(positions, centers):
                target = (
                    pos[0] + self.alpha * (center[0] - pos[0]),
                    pos[1] + self.alpha * (center[1] - pos[1]),
                )
                new_positions.append(self.mobility.constrain(self.region, pos, target))
            positions = new_positions
        return MinimaxResult(
            final_positions=positions,
            sensing_ranges=ranges,
            rounds_executed=rounds,
            converged=converged,
            max_range_trace=max_range_trace,
        )
