"""Random and corner-cluster deployments (initial conditions)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.geometry.primitives import Point
from repro.regions.region import Region


def random_deployment(
    region: Region, count: int, rng: Optional[np.random.Generator] = None
) -> List[Point]:
    """Uniform random node positions over the free area."""
    if count < 1:
        raise ValueError("count must be positive")
    return region.random_points(count, rng=rng)


def corner_deployment(
    region: Region,
    count: int,
    cluster_fraction: float = 0.15,
    rng: Optional[np.random.Generator] = None,
) -> List[Point]:
    """The Figure 5(a) initial condition: nodes clustered at the bottom-left corner.

    Args:
        region: the target area.
        count: number of nodes.
        cluster_fraction: side of the cluster square relative to the
            bounding-box extent.
        rng: random generator.
    """
    if count < 1:
        raise ValueError("count must be positive")
    if not 0 < cluster_fraction <= 1.0:
        raise ValueError("cluster_fraction must be in (0, 1]")
    if rng is None:
        rng = np.random.default_rng()
    xmin, ymin, xmax, ymax = region.bbox
    side = cluster_fraction * max(xmax - xmin, ymax - ymin)
    points: List[Point] = []
    attempts = 0
    while len(points) < count and attempts < 100000:
        attempts += 1
        p = (float(rng.uniform(xmin, xmin + side)), float(rng.uniform(ymin, ymin + side)))
        if region.contains(p):
            points.append(p)
    if len(points) < count:
        raise RuntimeError(
            "could not place the corner cluster inside the free area; "
            "increase cluster_fraction"
        )
    return points
