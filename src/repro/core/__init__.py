"""The paper's primary contribution: the LAACAD algorithm.

* :mod:`repro.core.config` — run configuration (k, alpha, epsilon, ...).
* :mod:`repro.core.dominating` — Algorithm 2: localized dominating-region
  computation via an expanding ring.
* :mod:`repro.core.laacad` — Algorithm 1: the iterative deployment driver
  (centralized-geometry variant; the message-passing variant lives in
  :mod:`repro.runtime.protocol`).
* :mod:`repro.core.convergence` — convergence tracking and stopping rules.
* :mod:`repro.core.minnode` — the Sec. IV-C transform towards min-node
  k-coverage.
"""

from repro.core.config import LaacadConfig
from repro.core.laacad import LaacadRunner, LaacadResult, RoundStats, run_laacad
from repro.core.dominating import localized_dominating_region, LocalizedComputation
from repro.core.convergence import ConvergenceTracker
from repro.core.minnode import MinNodeSizer, MinNodeResult

__all__ = [
    "LaacadConfig",
    "LaacadRunner",
    "LaacadResult",
    "RoundStats",
    "run_laacad",
    "localized_dominating_region",
    "LocalizedComputation",
    "ConvergenceTracker",
    "MinNodeSizer",
    "MinNodeResult",
]
