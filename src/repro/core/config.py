"""Configuration of a LAACAD run."""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Optional


@dataclasses.dataclass(frozen=True)
class LaacadConfig:
    """All knobs of Algorithm 1 / Algorithm 2.

    Attributes:
        k: required coverage order (``k``-coverage).
        alpha: motion step size in ``(0, 1]`` (line 5 of Algorithm 1).
        epsilon: stopping tolerance on the node-to-Chebyshev-center
            distance (``ε`` in Algorithm 1).
        max_rounds: hard cap on the number of rounds executed, so that
            parameter sweeps always terminate in bounded time even for
            adversarial configurations.
        tau_ms: the nominal period of one round in milliseconds; only
            used for reporting (the simulation is round-driven).
        ring_granularity: the expanding-ring step of Algorithm 2, in
            units of the transmission range ``gamma``; the paper argues
            for exactly ``1.0`` (one hop) and that is the default.
        circle_check_samples: how many sample points to place on the
            half-radius circle in Algorithm 2's domination check.
        use_localized: when True the per-node dominating regions are
            computed with Algorithm 2 (expanding ring); when False the
            exact engine with global knowledge is used.  Both produce the
            same regions (Lemma 1); the localized path additionally
            reports ring radii and is what the distributed runtime uses.
        prefilter: enable the expanding-radius competitor pre-filter in
            the exact engine (no effect on results, only on speed).
        seed: RNG seed for reproducibility (Welzl shuffling, noise, ...).
        record_positions: store the full position history in the result
            (memory-heavy for large sweeps, so off by default).
        convergence_patience: number of consecutive rounds with all
            displacements below ``epsilon`` required before declaring
            convergence; 1 reproduces the paper's stopping rule.
        engine: which round-execution backend drives the deployment:
            ``"batched"`` (array-native — the vectorized centralized
            engine in ``repro.engine`` and, for distributed runs, the
            round-level protocol engine in ``repro.runtime.engines``),
            ``"legacy"`` (the original per-node scalar paths), or
            ``"sparse"`` (grid-bucketed candidate pairs and chunked
            kernels, never materialising an N×N matrix — the tier for
            N in the tens of thousands).  ``legacy`` and ``batched``
            are bitwise identical; ``sparse`` is held to a 1e-9
            tolerance contract with identical round counts and exact
            communication counters (see DESIGN.md, "The sparse engine
            tier").  Orthogonal to ``use_localized``, which selects
            how each individual region is computed.
    """

    k: int = 1
    alpha: float = 1.0
    epsilon: float = 1e-3
    max_rounds: int = 200
    tau_ms: float = 100.0
    ring_granularity: float = 1.0
    circle_check_samples: int = 72
    use_localized: bool = False
    prefilter: bool = True
    seed: Optional[int] = 0
    record_positions: bool = False
    convergence_patience: int = 1
    engine: str = "batched"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("coverage order k must be >= 1")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("step size alpha must be in (0, 1]")
        if self.epsilon <= 0:
            raise ValueError("stopping tolerance epsilon must be positive")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")
        if self.tau_ms <= 0:
            raise ValueError("tau_ms must be positive")
        if self.ring_granularity <= 0:
            raise ValueError("ring_granularity must be positive")
        if self.circle_check_samples < 8:
            raise ValueError("circle_check_samples must be at least 8")
        if self.convergence_patience < 1:
            raise ValueError("convergence_patience must be at least 1")
        if not self.engine or not isinstance(self.engine, str):
            raise ValueError("engine must be a non-empty backend name")

    @classmethod
    def from_mapping(cls, options: Mapping[str, Any]) -> "LaacadConfig":
        """Scenario-driven constructor: build a config from plain options.

        Unknown keys raise immediately so a typo in a scenario spec
        cannot silently fall back to a default.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(options) - known
        if unknown:
            raise ValueError(f"unknown LaacadConfig options: {sorted(unknown)}")
        return cls(**dict(options))

    def with_k(self, k: int) -> "LaacadConfig":
        """A copy of this configuration with a different coverage order."""
        return dataclasses.replace(self, k=k)

    def with_alpha(self, alpha: float) -> "LaacadConfig":
        """A copy of this configuration with a different step size."""
        return dataclasses.replace(self, alpha=alpha)

    def with_engine(self, engine: str) -> "LaacadConfig":
        """A copy of this configuration with a different round-engine backend."""
        return dataclasses.replace(self, engine=engine)
