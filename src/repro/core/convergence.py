"""Convergence tracking for the LAACAD iteration."""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence


@dataclasses.dataclass
class ConvergenceTracker:
    """Tracks displacements across rounds and decides when to stop.

    The paper's stopping rule is "every node is within ``epsilon`` of the
    Chebyshev center of its dominating region".  ``patience`` requires
    that condition to hold for a number of *consecutive* rounds, which
    guards against stopping on a round where oscillating nodes happen to
    pass near their targets (only relevant for exotic configurations;
    ``patience = 1`` reproduces the paper exactly).
    """

    epsilon: float
    patience: int = 1
    _streak: int = 0
    max_displacement_history: List[float] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if self.patience < 1:
            raise ValueError("patience must be at least 1")

    def observe(self, displacements: Sequence[float]) -> bool:
        """Record one round of node-to-target distances; return True when converged."""
        max_disp = max(displacements) if displacements else 0.0
        self.max_displacement_history.append(max_disp)
        if max_disp <= self.epsilon:
            self._streak += 1
        else:
            self._streak = 0
        return self._streak >= self.patience

    @property
    def converged(self) -> bool:
        """Whether the last observed rounds satisfied the stopping rule."""
        return self._streak >= self.patience

    @property
    def rounds_observed(self) -> int:
        """How many rounds have been recorded."""
        return len(self.max_displacement_history)

    def last_max_displacement(self) -> Optional[float]:
        """Maximum displacement of the most recent round (None before any round)."""
        if not self.max_displacement_history:
            return None
        return self.max_displacement_history[-1]
