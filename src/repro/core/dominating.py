"""Algorithm 2: localized computation of the dominating region.

A node expands a search ring in steps of the transmission range
``gamma``.  After each expansion it checks whether it still dominates any
point of the circle of radius ``rho / 2`` around itself (restricted to
the target area — the boundary-node adaptation of Figure 3): if some
circle point has fewer than ``k`` strictly closer ring members, the node
may still dominate area beyond the circle and the ring keeps growing.
When the check passes, Lemma 1 guarantees that the ring members fully
determine the dominating region, which is then computed exactly with the
budgeted clipping engine using only those members.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.primitives import Point, distance
from repro.network.localization import build_local_coordinates
from repro.network.network import SensorNetwork
from repro.voronoi.dominating import DominatingRegion, dominating_pieces


@dataclasses.dataclass
class LocalizedComputation:
    """Result of one Algorithm 2 execution at a single node.

    Attributes:
        region: the node's dominating region.
        ring_radius: the final search-ring radius ``rho``.
        ring_expansions: how many times the ring was expanded.
        neighbors_used: how many ring members participated.
        hops: multi-hop communication depth needed to collect the ring
            (``ceil(rho / gamma)``).
        used_localization: whether MDS-reconstructed coordinates (rather
            than ground-truth positions) were used.
    """

    region: DominatingRegion
    ring_radius: float
    ring_expansions: int
    neighbors_used: int
    hops: int
    used_localization: bool = False


def _circle_samples(center: Point, radius: float, count: int) -> List[Point]:
    """Evenly spaced sample points on a circle."""
    return [
        (
            center[0] + radius * math.cos(2.0 * math.pi * i / count),
            center[1] + radius * math.sin(2.0 * math.pi * i / count),
        )
        for i in range(count)
    ]


def _circle_fully_dominated_by_others(
    center: Point,
    radius: float,
    neighbor_positions: Sequence[Point],
    k: int,
    network: SensorNetwork,
    samples: int,
) -> bool:
    """Line 5-8 of Algorithm 2: is every in-area circle point k-dominated by others?

    A circle point outside the target area does not need coverage (the
    area boundary acts as the natural boundary of the dominating region,
    Sec. IV-B1), so such samples are skipped.  If every sample inside the
    area already has at least ``k`` ring members strictly closer than the
    querying node, the node cannot dominate anything at or beyond the
    circle and the ring may stop expanding.
    """
    any_inside = False
    for sample in _circle_samples(center, radius, samples):
        if not network.region.contains(sample):
            continue
        any_inside = True
        own_distance = distance(center, sample)
        closer = 0
        for pos in neighbor_positions:
            if distance(pos, sample) < own_distance - 1e-12:
                closer += 1
                if closer >= k:
                    break
        if closer < k:
            return False
    # If the whole circle lies outside the area, the dominating region is
    # certainly confined to the in-area part of the disk, so stopping is
    # safe as well.
    return True if any_inside else True


def localized_dominating_region(
    network: SensorNetwork,
    node_id: int,
    k: int,
    ring_granularity: float = 1.0,
    circle_check_samples: int = 72,
    use_localization: bool = False,
    localization_noise_std: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    max_radius: Optional[float] = None,
) -> LocalizedComputation:
    """Run Algorithm 2 for one node of the network.

    Args:
        network: the sensor network (provides positions and the area).
        node_id: the node executing the computation.
        k: required coverage order.
        ring_granularity: ring expansion step in units of ``gamma``.
        circle_check_samples: samples on the half-radius circle.
        use_localization: reconstruct neighbour coordinates with MDS from
            pairwise ranges instead of reading ground-truth positions.
        localization_noise_std: Gaussian range-noise level for the MDS
            reconstruction.
        rng: random generator for the range noise.
        max_radius: hard cap on the ring radius; defaults to twice the
            area diameter, which always includes the entire network.

    Returns:
        A :class:`LocalizedComputation` with the region and ring metrics.
    """
    if k < 1:
        raise ValueError("coverage order k must be >= 1")
    node = network.node(node_id)
    gamma = network.comm_range
    step = gamma * ring_granularity
    if max_radius is None:
        max_radius = 2.0 * network.region.diameter + step

    rho = 0.0
    expansions = 0
    neighbor_ids: List[int] = []
    while True:
        rho += step
        expansions += 1
        neighbor_ids = network.nodes_within(node_id, rho)
        neighbor_positions = [network.node(j).position for j in neighbor_ids]
        if _circle_fully_dominated_by_others(
            node.position, rho / 2.0, neighbor_positions, k, network, circle_check_samples
        ):
            break
        if rho >= max_radius:
            break

    positions = [network.node(j).position for j in neighbor_ids]
    used_localization = False
    if use_localization and positions:
        # Reconstruct the ring's coordinates from (possibly noisy) ranges.
        all_positions = [node.position] + positions
        reconstructed = build_local_coordinates(
            0, all_positions, noise_std=localization_noise_std, rng=rng
        )
        positions = reconstructed[1:]
        used_localization = True

    pieces = dominating_pieces(
        node.position, positions, network.region.convex_pieces(), k
    )
    region = DominatingRegion(
        site=node.position,
        k=k,
        pieces=pieces,
        competitors_used=len(positions),
        search_radius=rho,
    )
    return LocalizedComputation(
        region=region,
        ring_radius=rho,
        ring_expansions=expansions,
        neighbors_used=len(neighbor_ids),
        hops=int(math.ceil(rho / gamma - 1e-9)),
        used_localization=used_localization,
    )
