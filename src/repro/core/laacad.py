"""Algorithm 1: the LAACAD deployment iteration (legacy entry points).

.. deprecated::
    The run-to-completion monoliths that used to live here are now thin
    shims over the v1 API in :mod:`repro.api`.  New code should use::

        from repro.api import Simulation, deploy

        result = Simulation(network=network, config=config).run()
        result = deploy(region, positions, config, comm_range=0.25)

    The steppable :class:`~repro.api.deployers.CentralizedDeployer`
    executes the exact same per-round order of operations the old
    ``LaacadRunner.run`` loop did (region computation → statistics →
    convergence check → synchronous move), so results are bitwise
    identical; it additionally supports stepping, observation and
    checkpoint/resume.

The result types remain importable from here: ``LaacadResult`` is an
alias of :class:`~repro.api.results.SimulationResult` (same fields, now
with a lossless ``to_dict``/``from_dict`` pair) and ``RoundStats`` is
re-exported unchanged.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from repro.api.results import RoundStats, SimulationResult
from repro.core.config import LaacadConfig
from repro.geometry.primitives import Point
from repro.network.mobility import MobilityModel
from repro.network.network import SensorNetwork
from repro.regions.region import Region

__all__ = ["LaacadResult", "LaacadRunner", "RoundStats", "run_laacad"]

#: Backwards-compatible alias: the unified result type of ``repro.api``.
LaacadResult = SimulationResult


class LaacadRunner:
    """Deprecated shim over :class:`repro.api.deployers.CentralizedDeployer`.

    Construction emits a :class:`DeprecationWarning`; behaviour (including
    the in-place network mutation contract) is unchanged.
    """

    def __init__(
        self,
        network: SensorNetwork,
        config: LaacadConfig,
        mobility: Optional[MobilityModel] = None,
    ) -> None:
        warnings.warn(
            "repro.core.laacad.LaacadRunner is deprecated; use "
            "repro.api.Simulation (e.g. Simulation(network=net, config=cfg).run())",
            DeprecationWarning,
            stacklevel=2,
        )
        # Imported lazily: this module is re-exported by ``repro.core``,
        # which loads during ``repro.api``'s own initialization.
        from repro.api.deployers import CentralizedDeployer

        self._deployer = CentralizedDeployer(network, config, mobility=mobility)

    @property
    def network(self) -> SensorNetwork:
        return self._deployer.network

    @property
    def config(self) -> LaacadConfig:
        return self._deployer.config

    @property
    def mobility(self) -> MobilityModel:
        return self._deployer.mobility

    @property
    def engine(self):
        return self._deployer.engine

    def run(self) -> SimulationResult:
        """Execute Algorithm 1 until convergence or the round cap."""
        return self._deployer.run()


def run_laacad(
    region: Region,
    initial_positions: Sequence[Point],
    config: LaacadConfig,
    comm_range: float = 0.25,
    mobility: Optional[MobilityModel] = None,
) -> SimulationResult:
    """Deprecated shim over :func:`repro.api.deploy`."""
    warnings.warn(
        "repro.core.laacad.run_laacad is deprecated; use repro.api.deploy",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.session import deploy

    return deploy(
        region, initial_positions, config, comm_range=comm_range, mobility=mobility
    )
