"""Algorithm 1: the LAACAD deployment iteration.

The runner executes synchronous rounds: every (alive) node computes its
k-order dominating region with respect to the node positions at the
start of the round, derives the Chebyshev center, and then all nodes move
simultaneously by ``alpha`` towards their centers.  The iteration stops
when every node is within ``epsilon`` of its Chebyshev center (or after
``max_rounds``).  On termination each node's sensing range is set to the
circumradius of its dominating region measured from its final position,
which guarantees k-coverage of the whole area (Proposition 4's argument).

Round execution is delegated to a pluggable :class:`RoundEngine`
backend selected by ``LaacadConfig.engine`` (``"batched"`` — the
array-native vectorized engine — by default, or ``"legacy"`` — the
original per-node scalar path).  Orthogonally,
``LaacadConfig.use_localized`` selects how each region is computed:

* the exact engine with the global node set (plus the Lemma-1 pre-filter
  for speed), and
* the faithful Algorithm 2 expanding-ring computation, which only ever
  reads positions of ring members and additionally reports ring radii /
  hop counts.

All combinations produce identical regions; the equivalences are
covered by tests.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import LaacadConfig
from repro.core.convergence import ConvergenceTracker
from repro.engine import make_engine
from repro.geometry.primitives import Point, distance
from repro.network.mobility import MobilityModel
from repro.network.network import SensorNetwork
from repro.regions.region import Region
from repro.voronoi.dominating import DominatingRegion


@dataclasses.dataclass
class RoundStats:
    """Per-round summary of the deployment state.

    Attributes:
        round_index: zero-based round number.
        max_circumradius: largest smallest-enclosing-circle radius over
            all dominating regions (the quantity plotted in Figure 6).
        min_circumradius: smallest such radius.
        max_range_from_position: the paper's ``R-hat`` — the largest
            distance from a node's *current* position to the farthest
            point of its dominating region.
        min_range_from_position: the smallest such distance.
        max_displacement: largest node-to-Chebyshev-center distance this
            round (the stopping-rule quantity).
        mean_displacement: average of those distances.
        max_ring_hops: deepest expanding-ring search this round (only
            populated by the localized back-end; 0 otherwise).
    """

    round_index: int
    max_circumradius: float
    min_circumradius: float
    max_range_from_position: float
    min_range_from_position: float
    max_displacement: float
    mean_displacement: float
    max_ring_hops: int = 0


@dataclasses.dataclass
class LaacadResult:
    """Outcome of a LAACAD run."""

    config: LaacadConfig
    initial_positions: List[Point]
    final_positions: List[Point]
    sensing_ranges: List[float]
    converged: bool
    rounds_executed: int
    history: List[RoundStats]
    position_history: Optional[List[List[Point]]] = None

    @property
    def max_sensing_range(self) -> float:
        """The optimisation objective ``R*`` (maximum sensing range)."""
        return max(self.sensing_ranges) if self.sensing_ranges else 0.0

    @property
    def min_sensing_range(self) -> float:
        """The smallest sensing range in the final deployment."""
        return min(self.sensing_ranges) if self.sensing_ranges else 0.0

    @property
    def range_spread(self) -> float:
        """Max minus min sensing range — the load-balance indicator of Sec. V-A."""
        return self.max_sensing_range - self.min_sensing_range

    def max_circumradius_trace(self) -> List[float]:
        """Per-round maximum circumradius (the upper curves of Figure 6)."""
        return [s.max_circumradius for s in self.history]

    def min_circumradius_trace(self) -> List[float]:
        """Per-round minimum circumradius (the lower curves of Figure 6)."""
        return [s.min_circumradius for s in self.history]

    def total_distance_traveled(self) -> float:
        """Total movement of all nodes from start to final positions (straight-line lower bound)."""
        return sum(
            distance(a, b) for a, b in zip(self.initial_positions, self.final_positions)
        )


class LaacadRunner:
    """Drives Algorithm 1 on a :class:`~repro.network.network.SensorNetwork`.

    The runner mutates the supplied network: node positions evolve every
    round and the final sensing ranges are written back to the nodes, so
    the network afterwards *is* the converged deployment.
    """

    def __init__(
        self,
        network: SensorNetwork,
        config: LaacadConfig,
        mobility: Optional[MobilityModel] = None,
    ) -> None:
        if len(network.alive_nodes()) < config.k:
            raise ValueError(
                "the network needs at least k alive nodes to attempt k-coverage"
            )
        self.network = network
        self.config = config
        self.mobility = mobility if mobility is not None else MobilityModel()
        self._rng = np.random.default_rng(config.seed)
        #: The round-execution backend (see ``repro.engine``).
        self.engine = make_engine(config.engine, network, config)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> LaacadResult:
        """Execute Algorithm 1 until convergence or the round cap."""
        config = self.config
        network = self.network
        initial_positions = list(network.positions())
        tracker = ConvergenceTracker(epsilon=config.epsilon, patience=config.convergence_patience)
        history: List[RoundStats] = []
        position_history: Optional[List[List[Point]]] = (
            [list(network.positions())] if config.record_positions else None
        )

        converged = False
        rounds = 0
        last_regions: Dict[int, DominatingRegion] = {}
        for round_index in range(config.max_rounds):
            rounds = round_index + 1
            engine_round = self.engine.compute_round()
            last_regions = engine_round.regions
            centers = engine_round.centers
            circumradii = engine_round.circumradii
            ranges_from_position = engine_round.ranges_from_position
            displacements = engine_round.displacements

            stats = RoundStats(
                round_index=round_index,
                max_circumradius=max(circumradii) if circumradii else 0.0,
                min_circumradius=min(circumradii) if circumradii else 0.0,
                max_range_from_position=max(ranges_from_position) if ranges_from_position else 0.0,
                min_range_from_position=min(ranges_from_position) if ranges_from_position else 0.0,
                max_displacement=max(displacements) if displacements else 0.0,
                mean_displacement=(sum(displacements) / len(displacements)) if displacements else 0.0,
                max_ring_hops=engine_round.max_ring_hops,
            )
            history.append(stats)

            if tracker.observe(displacements):
                converged = True
                break

            # Synchronous move: every node steps alpha of the way to its
            # Chebyshev center, constrained by the mobility model.
            for node_id, center in centers.items():
                node = network.node(node_id)
                if distance(node.position, center) <= config.epsilon:
                    continue
                target = (
                    node.position[0] + config.alpha * (center[0] - node.position[0]),
                    node.position[1] + config.alpha * (center[1] - node.position[1]),
                )
                constrained = self.mobility.constrain(network.region, node.position, target)
                network.move_node(node_id, constrained, clamp_to_region=True)
            if config.record_positions and position_history is not None:
                position_history.append(list(network.positions()))

        # Final sensing ranges: the circumradius of each node's dominating
        # region measured from its final position.  Recompute the regions
        # if the last move changed positions after the last measurement.
        if not converged:
            last_regions, _ = self.engine.compute_regions()
        sensing_ranges: List[float] = []
        for node in network.nodes:
            if not node.alive:
                sensing_ranges.append(0.0)
                continue
            region = last_regions.get(node.node_id)
            if region is None:
                sensing_ranges.append(0.0)
                continue
            r = region.circumradius(node.position)
            network.set_sensing_range(node.node_id, r)
            sensing_ranges.append(r)

        return LaacadResult(
            config=config,
            initial_positions=initial_positions,
            final_positions=list(network.positions()),
            sensing_ranges=sensing_ranges,
            converged=converged,
            rounds_executed=rounds,
            history=history,
            position_history=position_history,
        )


def run_laacad(
    region: Region,
    initial_positions: Sequence[Point],
    config: LaacadConfig,
    comm_range: float = 0.25,
    mobility: Optional[MobilityModel] = None,
) -> LaacadResult:
    """Convenience wrapper: build a network from positions and run LAACAD."""
    network = SensorNetwork(region, list(initial_positions), comm_range=comm_range)
    runner = LaacadRunner(network, config, mobility=mobility)
    return runner.run()
