"""Sec. IV-C: approximating min-node k-coverage with LAACAD.

The min-node k-coverage problem fixes a common sensing range ``r_s`` and
asks for the fewest nodes that k-cover the area.  LAACAD solves the dual
(fix the node count, minimise the worst sensing range), so the paper's
transform runs LAACAD repeatedly, adding nodes while the achieved
``R*`` exceeds ``r_s`` and removing nodes while it is below, stopping at
the smallest node count whose ``R*`` still fits.

The search below is a monotone bracket-plus-bisection on the node count:
``R*(N)`` decreases (statistically) with ``N``, so an exponential bracket
followed by bisection finds the threshold with O(log N) LAACAD runs.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.config import LaacadConfig
from repro.regions.region import Region


@dataclasses.dataclass
class MinNodeResult:
    """Outcome of the min-node search.

    Attributes:
        node_count: smallest node count found whose max sensing range is
            at most the target.
        achieved_range: the ``R*`` obtained at that node count.
        target_range: the fixed sensing range ``r_s`` being matched.
        evaluations: map from node count to achieved ``R*`` for every
            LAACAD run performed during the search.
    """

    node_count: int
    achieved_range: float
    target_range: float
    evaluations: Dict[int, float]


class MinNodeSizer:
    """Search for the fewest nodes achieving k-coverage with a fixed range."""

    def __init__(
        self,
        region: Region,
        k: int,
        config: Optional[LaacadConfig] = None,
        comm_range: float = 0.25,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ValueError("coverage order k must be >= 1")
        self.region = region
        self.k = k
        self.config = (config or LaacadConfig()).with_k(k)
        self.comm_range = comm_range
        self.seed = seed
        self._cache: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def analytic_estimate(self, target_range: float) -> int:
        """First guess for the node count: ``k |A| / (pi r_s^2)``.

        This is the density a perfectly balanced deployment would need
        (each node covering ``k |A| / N`` of area with a disk of radius
        ``r_s``); the search uses it only as a starting bracket.
        """
        if target_range <= 0:
            raise ValueError("target_range must be positive")
        estimate = self.k * self.region.area / (math.pi * target_range**2)
        return max(self.k, int(math.ceil(estimate)))

    def required_range(self, node_count: int) -> float:
        """Run LAACAD with ``node_count`` random nodes and return the achieved ``R*``."""
        if node_count < self.k:
            raise ValueError("node_count must be at least k")
        if node_count in self._cache:
            return self._cache[node_count]
        from repro.api.session import deploy

        rng = np.random.default_rng(self.seed + node_count)
        positions = self.region.random_points(node_count, rng=rng)
        result = deploy(self.region, positions, self.config, comm_range=self.comm_range)
        self._cache[node_count] = result.max_sensing_range
        return self._cache[node_count]

    # ------------------------------------------------------------------
    def find_min_nodes(
        self,
        target_range: float,
        max_evaluations: int = 12,
        growth_factor: float = 1.5,
    ) -> MinNodeResult:
        """Smallest node count whose LAACAD ``R*`` is at most ``target_range``.

        Args:
            target_range: the fixed sensing range ``r_s``.
            max_evaluations: cap on the number of LAACAD runs.
            growth_factor: multiplicative step of the exponential bracket.
        """
        if target_range <= 0:
            raise ValueError("target_range must be positive")
        if growth_factor <= 1.0:
            raise ValueError("growth_factor must exceed 1")

        evaluations: Dict[int, float] = {}

        def evaluate(n: int) -> float:
            r = self.required_range(n)
            evaluations[n] = r
            return r

        count = self.analytic_estimate(target_range)
        achieved = evaluate(count)
        budget = max_evaluations - 1

        # Exponential bracket: find a feasible upper end.
        upper = count
        upper_range = achieved
        while upper_range > target_range and budget > 0:
            upper = max(upper + 1, int(math.ceil(upper * growth_factor)))
            upper_range = evaluate(upper)
            budget -= 1
        if upper_range > target_range:
            # Ran out of budget without reaching feasibility; report the
            # best attempt so callers can decide to retry with more budget.
            return MinNodeResult(upper, upper_range, target_range, evaluations)

        # Find an infeasible lower end (or learn that even `k` nodes work).
        lower = min(count, upper)
        lower_range = evaluations.get(lower, upper_range)
        while lower > self.k and lower_range <= target_range and budget > 0:
            lower = max(self.k, int(lower / growth_factor))
            lower_range = evaluate(lower)
            budget -= 1
        if lower_range <= target_range:
            return MinNodeResult(lower, lower_range, target_range, evaluations)

        # Bisection between infeasible `lower` and feasible `upper`.
        while upper - lower > 1 and budget > 0:
            mid = (upper + lower) // 2
            mid_range = evaluate(mid)
            budget -= 1
            if mid_range <= target_range:
                upper, upper_range = mid, mid_range
            else:
                lower, lower_range = mid, mid_range
        return MinNodeResult(upper, upper_range, target_range, evaluations)
