"""Pluggable round-execution backends for the LAACAD iteration.

The engine subsystem splits the hot path of Algorithm 1 into four
layers (see DESIGN.md for the full diagram):

* :mod:`repro.engine.arrays` — struct-of-arrays network state
  (:class:`NodeArrayState`) with explicit sync to/from node objects;
* :mod:`repro.engine.kernels` — vectorized distance, pre-filter and
  clipping kernels shared with the analysis layer;
* :mod:`repro.engine.base` — the :class:`RoundEngine` protocol, the
  backend registry and the shared per-round summarisation;
* :mod:`repro.engine.batch` / :mod:`repro.engine.legacy` /
  :mod:`repro.engine.sparse` — the built-in backends, selected by
  ``LaacadConfig.engine``.

``"legacy"`` and ``"batched"`` produce bitwise-identical results;
``"sparse"`` (grid-bucketed candidate pairs, no dense N×N matrix)
matches them under the 1e-9 tolerance contract documented in DESIGN.md.
``"batched"`` is the default; new backends plug in via
:func:`register_engine`.
"""

from repro.engine.arrays import NodeArrayState
from repro.engine.base import (
    EngineRound,
    RoundEngine,
    available_engines,
    make_engine,
    register_engine,
    summarize_regions,
)
from repro.engine.batch import BatchedRoundEngine
from repro.engine.legacy import LegacyRoundEngine
from repro.engine.sparse import SparseRoundEngine

__all__ = [
    "BatchedRoundEngine",
    "EngineRound",
    "LegacyRoundEngine",
    "SparseRoundEngine",
    "NodeArrayState",
    "RoundEngine",
    "available_engines",
    "make_engine",
    "register_engine",
    "summarize_regions",
]
