"""Pluggable round-execution backends for the LAACAD iteration.

The engine subsystem splits the hot path of Algorithm 1 into four
layers (see DESIGN.md for the full diagram):

* :mod:`repro.engine.arrays` — struct-of-arrays network state
  (:class:`NodeArrayState`) with explicit sync to/from node objects;
* :mod:`repro.engine.kernels` — vectorized distance, pre-filter and
  clipping kernels shared with the analysis layer;
* :mod:`repro.engine.base` — the :class:`RoundEngine` protocol, the
  backend registry and the shared per-round summarisation;
* :mod:`repro.engine.batch` / :mod:`repro.engine.legacy` — the two
  built-in backends, selected by ``LaacadConfig.engine``.

Both backends produce bitwise-identical results; ``"batched"`` is the
default and is the foundation future sharded/async backends plug into
via :func:`register_engine`.
"""

from repro.engine.arrays import NodeArrayState
from repro.engine.base import (
    EngineRound,
    RoundEngine,
    available_engines,
    make_engine,
    register_engine,
    summarize_regions,
)
from repro.engine.batch import BatchedRoundEngine
from repro.engine.legacy import LegacyRoundEngine

__all__ = [
    "BatchedRoundEngine",
    "EngineRound",
    "LegacyRoundEngine",
    "NodeArrayState",
    "RoundEngine",
    "available_engines",
    "make_engine",
    "register_engine",
    "summarize_regions",
]
