"""Array-of-structs → struct-of-arrays bridge for the sensor network.

The batched round engine works on contiguous NumPy arrays; the rest of
the repo works on :class:`~repro.network.node.Node` objects.
:class:`NodeArrayState` is the explicit synchronisation point between
the two worlds: a snapshot of positions, sensing ranges, movement
energy and liveness as ``(N, 2)`` / ``(N,)`` arrays, index-aligned with
``network.nodes``, with helpers to write array-side updates back.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.network import SensorNetwork


@dataclasses.dataclass
class NodeArrayState:
    """Struct-of-arrays snapshot of a :class:`SensorNetwork`.

    Attributes:
        node_ids: ``(N,)`` integer node identifiers.
        positions: ``(N, 2)`` float positions ``u_i``.
        sensing_ranges: ``(N,)`` float sensing ranges ``r_i``.
        distance_traveled: ``(N,)`` cumulative movement (the one-time
            movement-energy investment of the paper's energy model).
        alive: ``(N,)`` boolean liveness mask.
    """

    node_ids: np.ndarray
    positions: np.ndarray
    sensing_ranges: np.ndarray
    distance_traveled: np.ndarray
    alive: np.ndarray

    # ------------------------------------------------------------------
    # Construction / synchronisation
    # ------------------------------------------------------------------
    @classmethod
    def from_network(cls, network: "SensorNetwork") -> "NodeArrayState":
        """Snapshot the network's node attributes into contiguous arrays."""
        nodes = network.nodes
        return cls(
            node_ids=np.asarray([n.node_id for n in nodes], dtype=np.intp),
            positions=np.asarray([n.position for n in nodes], dtype=float),
            sensing_ranges=np.asarray([n.sensing_range for n in nodes], dtype=float),
            distance_traveled=np.asarray(
                [n.distance_traveled for n in nodes], dtype=float
            ),
            alive=network.alive_mask(),
        )

    def apply_to_network(
        self,
        network: "SensorNetwork",
        positions: bool = True,
        sensing_ranges: bool = True,
    ) -> None:
        """Write the array-side state back onto the network's nodes.

        Positions are applied through ``Node.move_to`` so that
        ``distance_traveled`` keeps accounting for the movement energy;
        the network's spatial caches are invalidated once at the end
        rather than per node.
        """
        if self.positions.shape[0] != len(network.nodes):
            raise ValueError("array state and network have different node counts")
        for idx, node in enumerate(network.nodes):
            if positions:
                target = (float(self.positions[idx, 0]), float(self.positions[idx, 1]))
                if target != node.position:
                    node.move_to(target)
            if sensing_ranges:
                node.sensing_range = float(self.sensing_ranges[idx])
        network._invalidate()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.positions.shape[0])

    def alive_indices(self) -> np.ndarray:
        """Indices (into the full arrays) of alive nodes, ascending."""
        return np.nonzero(self.alive)[0]

    def alive_positions(self) -> np.ndarray:
        """Positions of alive nodes only, ``(A, 2)``, in node order."""
        return self.positions[self.alive]

    def alive_node_ids(self) -> np.ndarray:
        """Node ids of alive nodes, in node order."""
        return self.node_ids[self.alive]

    def sensing_energy(self) -> np.ndarray:
        """Vectorized per-node sensing energy ``E(r_i) = pi * r_i**2``."""
        return np.pi * self.sensing_ranges * self.sensing_ranges

    def copy(self) -> "NodeArrayState":
        """An independent copy of every array."""
        return NodeArrayState(
            node_ids=self.node_ids.copy(),
            positions=self.positions.copy(),
            sensing_ranges=self.sensing_ranges.copy(),
            distance_traveled=self.distance_traveled.copy(),
            alive=self.alive.copy(),
        )
