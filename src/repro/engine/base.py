"""The ``RoundEngine`` protocol and shared per-round summarisation.

A *round engine* computes, for one synchronous LAACAD round, every alive
node's dominating region (and, derived from it, the Chebyshev centers
and the per-round statistics the runner records).  The runner in
``repro.core.laacad`` is engine-agnostic: it asks the configured engine
for an :class:`EngineRound` and only keeps the movement / convergence /
bookkeeping logic for itself.

Backends register themselves with :func:`register_engine` under a short
name; :func:`make_engine` instantiates by name.  Adding a backend is a
three-step affair (see DESIGN.md): subclass :class:`RoundEngine`,
implement :meth:`RoundEngine.compute_regions`, decorate with
``@register_engine``.

The derived quantities (Chebyshev centers, circumradii, displacements)
are deliberately computed by the *shared* :func:`summarize_regions`
helper in both built-in backends: once two engines produce identical
region polygons, everything downstream is identical by construction.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Type

from repro.geometry.primitives import Point, distance
from repro.voronoi.dominating import DominatingRegion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import LaacadConfig
    from repro.network.network import SensorNetwork


@dataclasses.dataclass
class EngineRound:
    """Everything one round of region computation produces.

    Attributes:
        regions: dominating region of every alive node (keyed by node id,
            in alive-node order).
        centers: Chebyshev center of every region (same keys/order).
        circumradii: Chebyshev radius per region, in alive-node order.
        ranges_from_position: distance from each node's *current*
            position to the farthest point of its region (the paper's
            ``R-hat``), in alive-node order.
        displacements: node-to-Chebyshev-center distance per node, in
            alive-node order (the stopping-rule quantity).
        max_ring_hops: deepest expanding-ring search of the round (only
            populated by the localized Algorithm-2 backend).
        profile: per-stage wall-clock seconds when ``REPRO_PROFILE=1``
            (see :mod:`repro.engine.profiling`); ``None`` otherwise.
    """

    regions: Dict[int, DominatingRegion]
    centers: Dict[int, Point]
    circumradii: List[float]
    ranges_from_position: List[float]
    displacements: List[float]
    max_ring_hops: int = 0
    profile: Optional[Dict[str, float]] = None


def summarize_regions(
    network: "SensorNetwork",
    regions: Dict[int, DominatingRegion],
    max_ring_hops: int = 0,
) -> EngineRound:
    """Derive centers and per-round statistics from computed regions.

    Shared by every engine so the derived floats are bitwise identical
    whenever the regions are.
    """
    centers: Dict[int, Point] = {}
    circumradii: List[float] = []
    ranges_from_position: List[float] = []
    displacements: List[float] = []
    for node_id, region in regions.items():
        node = network.node(node_id)
        center, radius = region.chebyshev_center()
        centers[node_id] = center
        circumradii.append(radius)
        ranges_from_position.append(region.circumradius(node.position))
        displacements.append(distance(node.position, center))
    return EngineRound(
        regions=regions,
        centers=centers,
        circumradii=circumradii,
        ranges_from_position=ranges_from_position,
        displacements=displacements,
        max_ring_hops=max_ring_hops,
    )


class RoundEngine(abc.ABC):
    """Computes all per-round dominating regions for a network.

    Engines are constructed once per deployment session (see
    :class:`repro.api.deployers.CentralizedDeployer`) and queried every
    round; they may cache anything derivable from the network and
    config but must re-read node positions each call (the deployer moves
    nodes between rounds).
    """

    #: Short name used by ``LaacadConfig.engine`` / :func:`make_engine`.
    name: str = "abstract"

    def __init__(self, network: "SensorNetwork", config: "LaacadConfig") -> None:
        self.network = network
        self.config = config

    @abc.abstractmethod
    def compute_regions(self) -> Tuple[Dict[int, DominatingRegion], int]:
        """Dominating regions of every alive node; returns (regions, max ring hops)."""

    def compute_round(self) -> EngineRound:
        """One full round of region computation plus derived statistics."""
        regions, max_hops = self.compute_regions()
        return summarize_regions(self.network, regions, max_hops)


_REGISTRY: Dict[str, Type[RoundEngine]] = {}


def register_engine(cls: Type[RoundEngine]) -> Type[RoundEngine]:
    """Class decorator adding an engine to the backend registry."""
    if not getattr(cls, "name", None) or cls.name == "abstract":
        raise ValueError("engine classes must define a unique 'name'")
    _REGISTRY[cls.name] = cls
    return cls


def available_engines() -> List[str]:
    """Names of all registered round-engine backends."""
    return sorted(_REGISTRY)


def make_engine(
    name: str, network: "SensorNetwork", config: "LaacadConfig"
) -> RoundEngine:
    """Instantiate a registered engine backend by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown round engine {name!r}; available: {', '.join(available_engines())}"
        ) from None
    return cls(network, config)
