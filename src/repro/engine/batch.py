"""The array-native batched round engine.

Where the legacy backend recomputes distances, competitor orders and
half-plane values node by node in scalar Python, this engine:

* snapshots the network once per round into a :class:`NodeArrayState`,
* computes one shared pairwise distance matrix (and its row-wise sorted
  form) for every alive node at once,
* selects each node's Lemma-1 competitor candidates by boolean masking
  that matrix instead of re-measuring distances per pre-filter pass, and
* runs the budgeted clipping sweep through the array kernels in
  :mod:`repro.engine.kernels`, which evaluate all remaining competitors
  against all live piece vertices in single vectorized operations.

The results are bitwise identical to the legacy backend (see the
numerical contract in ``kernels.py``); the equivalence suite in
``tests/test_engine_equivalence.py`` enforces it.

The localized (Algorithm 2) backend is inherently per-node — each node
may only read ring members' positions — so for ``use_localized`` runs
this engine delegates to the same expanding-ring computation the legacy
path uses (sharing the network's cached spatial grid) and batches only
the derived statistics.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.engine.arrays import NodeArrayState
from repro.engine.base import RoundEngine, register_engine
from repro.engine.kernels import (
    ClippingSweep,
    dominating_pieces_batch,
    pairwise_distance_matrix,
    select_competitors,
)
from repro.geometry.primitives import EPS
from repro.voronoi.dominating import DominatingRegion, initial_prefilter_radius

#: Above this many alive nodes the distance matrix is built in row blocks.
_DISTANCE_CHUNK_THRESHOLD = 2048


@register_engine
class BatchedRoundEngine(RoundEngine):
    """Vectorized whole-network round computation."""

    name = "batched"

    def compute_regions(self) -> Tuple[Dict[int, DominatingRegion], int]:
        if self.config.use_localized:
            return self._compute_regions_localized()
        return self._compute_regions_global()

    # ------------------------------------------------------------------
    # Localized (Algorithm 2) backend: delegated per node
    # ------------------------------------------------------------------
    def _compute_regions_localized(self) -> Tuple[Dict[int, DominatingRegion], int]:
        # Imported lazily: core.dominating reaches back into the engine
        # kernels via the voronoi layer, so a module-level import would
        # be a hard cycle.
        from repro.core.dominating import localized_dominating_region

        regions: Dict[int, DominatingRegion] = {}
        max_hops = 0
        config = self.config
        for node in self.network.alive_nodes():
            computation = localized_dominating_region(
                self.network,
                node.node_id,
                config.k,
                ring_granularity=config.ring_granularity,
                circle_check_samples=config.circle_check_samples,
            )
            regions[node.node_id] = computation.region
            max_hops = max(max_hops, computation.hops)
        return regions, max_hops

    # ------------------------------------------------------------------
    # Exact global backend: fully batched
    # ------------------------------------------------------------------
    def _compute_regions_global(self) -> Tuple[Dict[int, DominatingRegion], int]:
        network = self.network
        config = self.config
        k = config.k
        region = network.region
        area_pieces = region.convex_pieces()
        diameter = region.diameter

        state = NodeArrayState.from_network(network)
        alive_ids = state.alive_node_ids()
        positions = state.alive_positions()
        count = positions.shape[0]

        chunk = _DISTANCE_CHUNK_THRESHOLD if count > _DISTANCE_CHUNK_THRESHOLD else None
        dist = pairwise_distance_matrix(positions, chunk_size=chunk)
        if count > 1 and config.prefilter:
            # Distance to the k-th nearest *other* node per row: index
            # ``min(k, count - 1)`` of the row including the self-zero.
            kth = min(k, count - 1)
            kth_distances = np.partition(dist, kth, axis=1)[:, kth]
        else:
            kth_distances = None

        regions: Dict[int, DominatingRegion] = {}
        alive_nodes = network.alive_nodes()
        for row, node in enumerate(alive_nodes):
            site = node.position
            if count <= 1 or not config.prefilter:
                competitors = np.delete(positions, row, axis=0)
                pieces = dominating_pieces_batch(site, competitors, area_pieces, k)
                regions[int(alive_ids[row])] = DominatingRegion(
                    site=site,
                    k=k,
                    pieces=pieces,
                    competitors_used=count - 1,
                    search_radius=math.inf,
                )
                continue
            regions[int(alive_ids[row])] = self._prefiltered_region(
                site,
                positions,
                dist[row],
                float(kth_distances[row]),
                row,
                area_pieces,
                diameter,
                k,
            )
        return regions, 0

    def _prefiltered_region(
        self,
        site,
        positions: np.ndarray,
        dist_row: np.ndarray,
        kth_distance: float,
        self_index: int,
        area_pieces: List,
        diameter: float,
        k: int,
    ) -> DominatingRegion:
        """Expanding-radius Lemma-1 pre-filter over the shared matrix.

        Walks the exact radius schedule of the scalar
        ``compute_dominating_region`` — initial radius from
        :func:`initial_prefilter_radius`, doubling until the resulting
        region fits in the half-radius disk — but selects candidates by
        masking the precomputed distance row and, crucially, folds each
        widened ring *incrementally* into one :class:`ClippingSweep`:
        every expansion only processes the newly admitted competitors
        (all farther than everything already folded), instead of
        re-clipping the whole region from scratch.  The sweep's cached
        ``site_radius`` doubles as the termination measurement.
        """
        eps = EPS
        rho = float(initial_prefilter_radius((kth_distance,), k, diameter, eps))
        max_needed = diameter * 2.0 + 1.0
        sweep = ClippingSweep(site, area_pieces, k, eps)
        previous_mask = None
        while True:
            if previous_mask is None:
                new_indices = select_competitors(dist_row, self_index, rho)
                selected = new_indices.shape[0]
                previous_mask = np.zeros(dist_row.shape[0], dtype=bool)
                previous_mask[new_indices] = True
            else:
                mask = dist_row < rho
                mask[self_index] = False
                new_indices = np.nonzero(mask & ~previous_mask)[0]
                selected = int(mask.sum())
                previous_mask = mask
            if new_indices.size:
                sweep.extend(positions[new_indices])
            if sweep.site_radius() <= rho / 2.0 + eps or rho >= max_needed:
                return DominatingRegion(
                    site=site,
                    k=k,
                    pieces=sweep.pieces(),
                    competitors_used=selected,
                    search_radius=rho,
                )
            rho *= 2.0
