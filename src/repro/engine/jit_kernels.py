"""Optional JIT kernel tier for the bandwidth-bound sparse kernels.

The sparse tier's hot loops are memory-bandwidth bound in NumPy: the
per-pass body of :func:`~repro.engine.sparse_kernels.clip_cells_batch`
(first-event classification of each piece's upcoming competitors, the
fused two-sided Sutherland–Hodgman over crossing pieces, and the ring
compression that dedupes the emitted children) and the circle-check
closer-counting panels of the distributed gather (every ``(known,
sample)`` pair is expanded into a float64 panel).  This module gives
each of them a *kernel seam* with two interchangeable implementations:

* a **NumPy reference implementation** — always present, always the
  equivalence oracle.  It reproduces the exact array expressions the
  kernels used before the seam existed, so introducing the seam changes
  no floats;
* an optional **JIT implementation** compiled with ``numba`` on first
  use.  The loop bodies use the same IEEE-754 operations in the same
  grouping (no ``fastmath``), so half-plane values and clip vertices are
  bitwise identical and every *decision* (first-event classification,
  closer-count ``>= k`` verdicts, dedupe keep/drop) is identical; see
  DESIGN.md "Kernel tiers" for the contract.  All JIT kernels compile
  with ``nogil=True``: they read the flat piece pools / CSR descriptors
  directly and write disjoint output slices, so independent chunks run
  concurrently on the shared kernel thread pool
  (``REPRO_KERNEL_THREADS``, see :mod:`repro.engine.kernels`).

Tier selection is the ``REPRO_KERNELS`` environment knob:

* ``auto`` (default) — JIT when ``numba`` imports, NumPy otherwise;
* ``numpy`` — force the reference implementation;
* ``jit`` — require numba; raises with a clear message when missing.
  If numba *imports* but **compilation fails** (e.g. a corrupted or
  unwritable cache directory), the tier degrades to numpy with a single
  warning naming the knob instead of surfacing a raw numba traceback.

``numba`` is an *optional* dependency: nothing in this module imports it
at module load, and the loop-form kernel bodies are plain Python
functions (compiled lazily on first JIT call), so they double as a slow
but dependency-free oracle for the JIT code path in tests.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.engine.kernels import (
    chunk_budget_bytes,
    kernel_threads,
    run_chunk_tasks,
    split_ranges,
)
from repro.geometry.primitives import EPS

__all__ = [
    "KERNELS_ENV",
    "kernel_tier",
    "numba_available",
    "halfplane_minmax",
    "closer_counts",
    "classify_first_events",
    "clip_crossing_pieces",
    "compress_rings",
]

#: Environment knob selecting the kernel tier: ``jit`` | ``numpy`` | ``auto``.
KERNELS_ENV = "REPRO_KERNELS"

_VALID_TIERS = ("auto", "numpy", "jit")

#: Cached numba availability probe (None = not probed yet).
_NUMBA_OK: Optional[bool] = None

#: Set when numba imported but a kernel failed to compile: the tier
#: permanently degrades to numpy for this process (one warning).
_JIT_BROKEN = False

#: Lazily compiled JIT kernels, keyed by seam name.
_JIT_CACHE: Dict[str, Callable] = {}


def numba_available() -> bool:
    """Whether ``numba`` can be imported (probed once, then cached)."""
    global _NUMBA_OK
    if _NUMBA_OK is None:
        try:
            import numba  # noqa: F401

            _NUMBA_OK = True
        except ImportError:
            _NUMBA_OK = False
    return _NUMBA_OK


def kernel_tier() -> str:
    """Resolve ``REPRO_KERNELS`` to the effective tier: ``jit`` or ``numpy``.

    Read per call (not cached) so tests and benchmarks can flip the knob
    at runtime; the JIT compilation cache persists across flips.  When a
    previous JIT compilation failed (broken numba install/cache), the
    resolution is ``numpy`` even for an explicit ``jit`` request — the
    failure already warned once, naming the knob.
    """
    raw = os.environ.get(KERNELS_ENV, "auto").strip().lower() or "auto"
    if raw not in _VALID_TIERS:
        raise ValueError(
            f"{KERNELS_ENV} must be one of {', '.join(_VALID_TIERS)}, got {raw!r}"
        )
    if raw == "numpy":
        return "numpy"
    if _JIT_BROKEN:
        return "numpy"
    if raw == "jit":
        if not numba_available():
            raise RuntimeError(
                f"{KERNELS_ENV}=jit requires numba, which is not installed; "
                f"install numba or use {KERNELS_ENV}=auto|numpy"
            )
        return "jit"
    return "jit" if numba_available() else "numpy"


# ----------------------------------------------------------------------
# Loop-form kernel bodies (numba-compilable, plain-Python runnable)
# ----------------------------------------------------------------------
def _halfplane_minmax_loops(vx, vy, starts, counts, ca, cb, cc, pmax, pmin):
    """Per-piece max/min of ``a*x + b*y - c`` over the piece's vertices.

    Written in numba's nopython subset; the arithmetic is the exact
    IEEE grouping of the NumPy reference (one multiply-add chain per
    vertex, plain comparisons for the reductions), so JIT results are
    bitwise identical.
    """
    for p in range(starts.shape[0]):
        s = starts[p]
        e = s + counts[p]
        a = ca[p]
        b = cb[p]
        c = cc[p]
        hi = -np.inf
        lo = np.inf
        for i in range(s, e):
            v = a * vx[i] + b * vy[i] - c
            if v > hi:
                hi = v
            if v < lo:
                lo = v
        pmax[p] = hi
        pmin[p] = lo


def _closer_counts_loops(
    kx, ky, offsets, counts, sample_x, sample_y, threshold_sq, cap, k, out
):
    """Two-stage closer-than-node counting, fused per row.

    Row ``r`` owns the ``counts[r]`` known positions at
    ``kx/ky[offsets[r]:offsets[r] + counts[r]]``.  Stage 1 counts the
    first ``min(counts[r], cap)`` knowns for every sample; only when a
    sample is still short of ``k`` (and knowns remain) does stage 2 add
    the remainder.  Comparisons use ``dx*dx + dy*dy < threshold_sq`` on
    the same operands as the NumPy reference, so the counts compared
    against ``k`` are identical.
    """
    n_rows, n_samples = sample_x.shape
    for r in range(n_rows):
        off = offsets[r]
        n = counts[r]
        use = n if n < cap else cap
        short = False
        for s in range(n_samples):
            px = sample_x[r, s]
            py = sample_y[r, s]
            t = threshold_sq[r, s]
            cnt = 0
            for j in range(off, off + use):
                dx = kx[j] - px
                dy = ky[j] - py
                if dx * dx + dy * dy < t:
                    cnt += 1
            out[r, s] = cnt
            if cnt < k:
                short = True
        if short and n > cap:
            for s in range(n_samples):
                px = sample_x[r, s]
                py = sample_y[r, s]
                t = threshold_sq[r, s]
                cnt = 0
                for j in range(off + use, off + n):
                    dx = kx[j] - px
                    dy = ky[j] - py
                    if dx * dx + dy * dy < t:
                        cnt += 1
                out[r, s] += cnt


def _classify_first_events_loops(
    pool_x, pool_y, pstart, pc, centry, nblk, ca, cb, cc, sep, eps,
    first_out, kind_out,
):
    """First clip event per piece over its competitor lookahead block.

    Piece ``p`` owns ``pc[p]`` pool vertices at ``pstart[p]`` and a
    block of ``nblk[p]`` upcoming competitors whose bisector
    coefficients sit contiguously at ``centry[p]`` in ``ca/cb/cc``.
    Walking the block in order, a non-separated competitor is skipped
    outright and a separated one whose signed maximum over the piece's
    vertices is ``<= eps`` is untouched; the first other entry is the
    event: kind 1 (all-out) when the signed minimum is ``>= -eps``,
    else kind 2 (crossing).  ``first_out[p]`` is the event's block
    position (``nblk[p]`` when none fired; ``kind_out[p]`` is 0 then).

    Unlike the NumPy reference — which evaluates the whole block and
    discards entries past the event — the walk stops at the event, so
    the JIT tier does strictly less arithmetic for identical decisions.
    """
    for p in range(pstart.shape[0]):
        s = pstart[p]
        e = s + pc[p]
        base = centry[p]
        n = nblk[p]
        evt = n
        kind = 0
        for b in range(n):
            ci = base + b
            if not sep[ci]:
                continue
            a = ca[ci]
            bb = cb[ci]
            c = cc[ci]
            hi = -np.inf
            lo = np.inf
            for i in range(s, e):
                v = a * pool_x[i] + bb * pool_y[i] - c
                if v > hi:
                    hi = v
                if v < lo:
                    lo = v
            if hi <= eps:
                continue
            evt = b
            if lo >= -eps:
                kind = 1
            else:
                kind = 2
            break
        first_out[p] = evt
        kind_out[p] = kind


def _compress_ring_slot(x, y, start, m, eps):
    """In-place ring compression of ``x/y[start : start + m]``.

    Pass-for-pass analogue of the whole-array dedupe in the NumPy
    reference: each pass compares every vertex against its predecessor
    *in the current array* (pre-compaction values), removes all flagged
    duplicates at once, and repeats until a pass removes nothing; then
    trailing vertices cyclically within ``eps`` of the ring head are
    dropped.  Returns the compressed vertex count.
    """
    while m > 0:
        ndup = 0
        w = 1
        prevx = x[start]
        prevy = y[start]
        for r in range(1, m):
            curx = x[start + r]
            cury = y[start + r]
            if abs(curx - prevx) <= eps and abs(cury - prevy) <= eps:
                ndup += 1
            else:
                x[start + w] = curx
                y[start + w] = cury
                w += 1
            prevx = curx
            prevy = cury
        m = w
        if ndup == 0:
            break
    while (
        m >= 2
        and abs(x[start + m - 1] - x[start]) <= eps
        and abs(y[start + m - 1] - y[start]) <= eps
    ):
        m -= 1
    return m


def _compress_rings_loops(x, y, starts, counts, eps, out_counts):
    """Per-ring compression over rings already compacted into slots."""
    for r in range(starts.shape[0]):
        out_counts[r] = _compress_ring_slot(x, y, starts[r], counts[r], eps)


def _clip_crossing_loops(
    pool_x, pool_y, pstart, pc, ca, cb, cc, want_farther, eps, degen_eps,
    slot_start, clo_x, clo_y, clo_n, far_x, far_y, far_n,
):
    """Fused two-sided Sutherland–Hodgman + ring compression per piece.

    Piece ``p`` (``pc[p]`` pool vertices at ``pstart[p]``) is split by
    its event bisector ``ca[p]*x + cb[p]*y - cc[p]``: the closer-side
    child keeps ``value <= eps`` vertices, the farther-side child (only
    when ``want_farther[p]``) keeps ``value >= -eps`` vertices, and
    edge/bisector intersections are computed once and emitted to both
    sides in the scalar append order ``[intersection, current vertex]``.
    Children are written into the disjoint slot windows
    ``[slot_start[p], slot_start[p] + 2*pc[p])`` of the output buffers
    and compressed in place; ``clo_n/far_n[p]`` receive the final
    counts.  The arithmetic is the exact IEEE grouping of the NumPy
    reference (midpoint fallback for degenerate edges, clamped
    interpolation parameter), so emitted vertices are bitwise identical.
    """
    for p in range(pstart.shape[0]):
        s = pstart[p]
        n = pc[p]
        a = ca[p]
        b = cb[p]
        c = cc[p]
        base = slot_start[p]
        wantf = want_farther[p]
        mclo = 0
        mfar = 0
        pvx = pool_x[s + n - 1]
        pvy = pool_y[s + n - 1]
        pval = a * pvx + b * pvy - c
        for i in range(n):
            cvx = pool_x[s + i]
            cvy = pool_y[s + i]
            cval = a * cvx + b * cvy - c
            inside_c = cval <= eps
            prev_in_c = pval <= eps
            inside_f = cval >= -eps
            prev_in_f = pval >= -eps
            cross_c = inside_c != prev_in_c
            cross_f = inside_f != prev_in_f
            if cross_c or (wantf and cross_f):
                denom = pval - cval
                if abs(denom) <= degen_eps:
                    ipx = (pvx + cvx) / 2.0
                    ipy = (pvy + cvy) / 2.0
                else:
                    t = pval / denom
                    if t <= 0.0:
                        t = 0.0
                    elif t >= 1.0:
                        t = 1.0
                    ipx = pvx + t * (cvx - pvx)
                    ipy = pvy + t * (cvy - pvy)
                if cross_c:
                    clo_x[base + mclo] = ipx
                    clo_y[base + mclo] = ipy
                    mclo += 1
                if wantf and cross_f:
                    far_x[base + mfar] = ipx
                    far_y[base + mfar] = ipy
                    mfar += 1
            if inside_c:
                clo_x[base + mclo] = cvx
                clo_y[base + mclo] = cvy
                mclo += 1
            if wantf and inside_f:
                far_x[base + mfar] = cvx
                far_y[base + mfar] = cvy
                mfar += 1
            pvx = cvx
            pvy = cvy
            pval = cval
        clo_n[p] = _compress_ring_slot(clo_x, clo_y, base, mclo, eps)
        if wantf:
            far_n[p] = _compress_ring_slot(far_x, far_y, base, mfar, eps)
        else:
            far_n[p] = 0


#: Dummy argument factories per seam: calling the freshly decorated
#: dispatcher on a minimal concrete input forces compilation *inside*
#: ``_get_jit``'s try block (numba compiles lazily on first call), so a
#: broken numba install/cache surfaces there — and real calls hit the
#: already-typed fast path.
def _dummy_args(name: str) -> tuple:
    f1 = np.zeros(1)
    i1 = np.zeros(1, dtype=np.int64)
    one = np.ones(1, dtype=np.int64)
    if name == "halfplane_minmax":
        return (f1, f1, i1, one, f1, f1, f1, np.empty(1), np.empty(1))
    if name == "closer_counts":
        panel = np.zeros((1, 1))
        return (
            f1, f1, i1, one, panel, np.zeros((1, 1)), np.ones((1, 1)),
            np.int64(1), np.int64(1), np.zeros((1, 1), dtype=np.int64),
        )
    if name == "classify_first_events":
        return (
            f1, f1, i1, one, i1, one, f1, f1, f1,
            np.ones(1, dtype=bool), 1e-9,
            np.empty(1, dtype=np.int64), np.empty(1, dtype=np.int64),
        )
    if name == "compress_rings":
        return (np.zeros(4), np.zeros(4), i1, one, 1e-9, np.empty(1, dtype=np.int64))
    if name == "clip_crossing":
        tri_x = np.asarray([0.0, 1.0, 0.0])
        tri_y = np.asarray([0.0, 0.0, 1.0])
        return (
            tri_x, tri_y, i1, np.full(1, 3, dtype=np.int64),
            np.ones(1), np.zeros(1), np.zeros(1), np.ones(1, dtype=bool),
            1e-9, 1e-24, i1,
            np.empty(6), np.empty(6), np.empty(1, dtype=np.int64),
            np.empty(6), np.empty(6), np.empty(1, dtype=np.int64),
        )
    raise KeyError(name)


def _get_jit(name: str) -> Optional[Callable]:
    """Compile (once) and return the JIT build of a loop-form body.

    Returns ``None`` — after a single :class:`RuntimeWarning` naming
    ``REPRO_KERNELS`` — when numba imports but compilation fails (e.g. a
    corrupted or unwritable cache directory); callers then fall through
    to the NumPy reference and :func:`kernel_tier` resolves to
    ``numpy`` for the rest of the process.
    """
    global _JIT_BROKEN, _compress_ring_slot
    fn = _JIT_CACHE.get(name)
    if fn is not None:
        return fn
    if _JIT_BROKEN:
        return None
    try:
        import numba

        njit = numba.njit(cache=False, fastmath=False, nogil=True)
        if name in ("clip_crossing", "compress_rings") and "_ring_slot" not in _JIT_CACHE:
            # The ring-compression helper is called from other JIT
            # bodies, so numba must see it as a compiled dispatcher:
            # rebind the module global before compiling the callers.
            # (The dispatcher is still a callable, so the plain-Python
            # loop-form oracles keep working unchanged.)
            _compress_ring_slot = njit(_compress_ring_slot)
            _JIT_CACHE["_ring_slot"] = _compress_ring_slot
        body = {
            "halfplane_minmax": _halfplane_minmax_loops,
            "closer_counts": _closer_counts_loops,
            "classify_first_events": _classify_first_events_loops,
            "compress_rings": _compress_rings_loops,
            "clip_crossing": _clip_crossing_loops,
        }[name]
        # Bodies stay serial per call (no ``parallel=True``): they
        # release the GIL instead, and the seams split work into
        # chunk-ordered, disjoint-output tasks on the shared kernel
        # thread pool — deterministic for every worker count.
        fn = njit(body)
        fn(*_dummy_args(name))
    except Exception as exc:
        _JIT_BROKEN = True
        warnings.warn(
            f"{KERNELS_ENV}=jit kernel compilation failed "
            f"({type(exc).__name__}: {exc}); falling back to the numpy "
            f"kernel tier for this process. Set {KERNELS_ENV}=numpy to "
            f"silence this warning.",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    _JIT_CACHE[name] = fn
    return fn


# ----------------------------------------------------------------------
# Seam entry points
# ----------------------------------------------------------------------
def halfplane_minmax(
    vx: np.ndarray,
    vy: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    coeff_a: np.ndarray,
    coeff_b: np.ndarray,
    coeff_c: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-piece ``(max, min)`` of the signed half-plane value.

    Piece ``p`` spans ``vx/vy[starts[p] : starts[p] + counts[p]]``
    (``counts[p] >= 1``) and is evaluated against its own bisector
    ``coeff_a[p]*x + coeff_b[p]*y - coeff_c[p]``.  The NumPy reference
    is the pre-seam array expression (gather + elementwise + reduceat);
    the JIT tier computes identical floats without materialising the
    per-vertex value array.
    """
    n_pieces = int(starts.shape[0])
    if n_pieces == 0:
        return np.zeros(0), np.zeros(0)
    if kernel_tier() == "jit":
        fn = _get_jit("halfplane_minmax")
        if fn is not None:
            pmax = np.empty(n_pieces)
            pmin = np.empty(n_pieces)
            run_chunk_tasks(
                [
                    (
                        lambda lo=lo, hi=hi: fn(
                            vx, vy, starts[lo:hi], counts[lo:hi],
                            coeff_a[lo:hi], coeff_b[lo:hi], coeff_c[lo:hi],
                            pmax[lo:hi], pmin[lo:hi],
                        )
                    )
                    for lo, hi in split_ranges(n_pieces, min_per_worker=1024)
                ]
            )
            return pmax, pmin
    ranges = split_ranges(n_pieces, min_per_worker=4096)
    if len(ranges) <= 1:
        return _halfplane_minmax_numpy(
            vx, vy, starts, counts, coeff_a, coeff_b, coeff_c
        )
    # Per-piece reductions are independent, so the range split changes
    # no floats; chunk-ordered disjoint writes keep any worker count
    # bitwise identical to serial.
    pmax = np.empty(n_pieces)
    pmin = np.empty(n_pieces)

    def _run(lo: int, hi: int) -> Callable[[], None]:
        def task() -> None:
            pmax[lo:hi], pmin[lo:hi] = _halfplane_minmax_numpy(
                vx, vy, starts[lo:hi], counts[lo:hi],
                coeff_a[lo:hi], coeff_b[lo:hi], coeff_c[lo:hi],
            )

        return task

    run_chunk_tasks([_run(lo, hi) for lo, hi in ranges])
    return pmax, pmin


def _halfplane_minmax_numpy(vx, vy, starts, counts, coeff_a, coeff_b, coeff_c):
    """NumPy reference body of :func:`halfplane_minmax` (pre-seam exact)."""
    n_pieces = int(starts.shape[0])
    total = int(counts.sum())
    if n_pieces == 1 or np.array_equal(
        starts[1:], starts[0] + np.cumsum(counts[:-1])
    ):
        # Contiguous back-to-back pieces: skip the gather.
        base = int(starts[0])
        gvx = vx[base : base + total]
        gvy = vy[base : base + total]
    else:
        gidx = ragged_indices(starts, counts)
        gvx = vx[gidx]
        gvy = vy[gidx]
    vert_piece = segment_ids(counts, total)
    val = coeff_a[vert_piece] * gvx + coeff_b[vert_piece] * gvy - coeff_c[vert_piece]
    substarts = np.cumsum(counts) - counts
    return np.maximum.reduceat(val, substarts), np.minimum.reduceat(val, substarts)


def closer_counts(
    kx: np.ndarray,
    ky: np.ndarray,
    offsets: np.ndarray,
    counts: np.ndarray,
    sample_x: np.ndarray,
    sample_y: np.ndarray,
    threshold_sq: np.ndarray,
    cap: int,
    k: int,
) -> np.ndarray:
    """Decision-equivalent closer-than-node counts per ``(row, sample)``.

    Row ``i`` owns the ``counts[i]`` known positions starting at flat
    offset ``offsets[i]`` in ``kx/ky``; ``sample_x/sample_y/
    threshold_sq`` are ``(rows, samples)`` panels.  Counting is
    two-staged: a prefix of ``cap`` knowns settles most samples (a
    subset count already ``>= k`` can only grow), and only rows with a
    still-short sample pay for the remainder, whose totals are then
    exact.  Rows settled by stage 1 report the prefix count, so the
    returned matrix is *decision*-equivalent (``count >= k`` agrees
    everywhere with the one-shot count), not value-equal.
    """
    n_rows = int(offsets.shape[0])
    n_samples = int(sample_x.shape[1]) if sample_x.ndim == 2 else 0
    out = np.zeros((n_rows, n_samples), dtype=np.int64)
    if n_rows == 0 or n_samples == 0:
        return out
    if kernel_tier() == "jit":
        fn = _get_jit("closer_counts")
        if fn is not None:
            off64 = offsets.astype(np.int64, copy=False)
            cnt64 = counts.astype(np.int64, copy=False)
            run_chunk_tasks(
                [
                    (
                        lambda lo=lo, hi=hi: fn(
                            kx, ky, off64[lo:hi], cnt64[lo:hi],
                            sample_x[lo:hi], sample_y[lo:hi],
                            threshold_sq[lo:hi], np.int64(cap), np.int64(k),
                            out[lo:hi],
                        )
                    )
                    for lo, hi in split_ranges(n_rows, min_per_worker=16)
                ]
            )
            return out
    _closer_counts_numpy(
        kx, ky, offsets, counts, sample_x, sample_y, threshold_sq, cap, k, out
    )
    return out


def _closer_counts_numpy(
    kx, ky, offsets, counts, sample_x, sample_y, threshold_sq, cap, k, out
):
    """NumPy reference: chunked panels, both stages inside one row walk.

    The panel expression is the pre-seam one (``kx[g][:, None] -
    sample_x`` squared in place, summed, compared to ``threshold_sq``,
    ``np.add.reduceat`` over owner groups), so counts are bitwise
    identical to the historic two-pass implementation.
    """
    rows = np.arange(offsets.shape[0], dtype=np.int64)
    use = np.minimum(counts, cap)
    _panel_counts(
        kx, ky, offsets, use, rows, sample_x, sample_y, threshold_sq, out, add=False
    )
    need = np.nonzero((counts > cap) & np.any(out < k, axis=1))[0]
    if need.size:
        _panel_counts(
            kx,
            ky,
            offsets[need] + cap,
            counts[need] - cap,
            need,
            sample_x,
            sample_y,
            threshold_sq,
            out,
            add=True,
        )


def _panel_counts(
    kx, ky, offsets, ncand, rows, sample_x, sample_y, threshold_sq, out, add
):
    """One chunked counting pass over ``(row, known, sample)`` panels.

    ``rows[i]`` is the global row (into the sample panels and ``out``)
    owning the ``ncand[i]`` knowns at flat offset ``offsets[i]``.
    """
    n_rows = offsets.shape[0]
    n_samples = sample_x.shape[1]
    budget = max(chunk_budget_bytes(), 1)
    per_pair_bytes = n_samples * 8 * 3
    bounds = []
    start = 0
    while start < n_rows:
        stop = start
        pair_total = 0
        while (
            stop < n_rows
            and (pair_total + ncand[stop]) * per_pair_bytes <= budget
        ):
            pair_total += ncand[stop]
            stop += 1
        stop = max(stop, start + 1)
        bounds.append((start, stop))
        start = stop

    def _chunk(start: int, stop: int):
        def task() -> None:
            sub_counts = ncand[start:stop]
            total = int(sub_counts.sum())
            if not total:
                return
            gidx = ragged_indices(offsets[start:stop], sub_counts)
            pair_row = rows[start:stop][segment_ids(sub_counts, total)]
            pdx = kx[gidx][:, None] - sample_x[pair_row]
            pdy = ky[gidx][:, None] - sample_y[pair_row]
            np.multiply(pdx, pdx, out=pdx)
            np.multiply(pdy, pdy, out=pdy)
            pdx += pdy
            closer = pdx < threshold_sq[pair_row]
            group_starts = np.cumsum(sub_counts) - sub_counts
            nz = sub_counts > 0
            block = np.zeros((stop - start, n_samples), dtype=np.int64)
            block[nz] = np.add.reduceat(closer, group_starts[nz], axis=0)
            if add:
                out[rows[start:stop]] += block
            else:
                out[rows[start:stop]] = block

        return task

    # Chunks own disjoint row blocks of ``out`` (``rows`` is strictly
    # increasing), so the panel chunks run concurrently on the kernel
    # thread pool with bitwise-serial results.
    run_chunk_tasks([_chunk(lo, hi) for lo, hi in bounds])


# ----------------------------------------------------------------------
# Clip-pass seams: first-event classification, fused two-sided clip,
# ring compression — operating on the flat pools / CSR descriptors.
# ----------------------------------------------------------------------
def classify_first_events(
    pool_x: np.ndarray,
    pool_y: np.ndarray,
    pstart: np.ndarray,
    pc: np.ndarray,
    centry: np.ndarray,
    nblk: np.ndarray,
    coeff_a: np.ndarray,
    coeff_b: np.ndarray,
    coeff_c: np.ndarray,
    separated: np.ndarray,
    eps: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """First clip event per live piece over its competitor lookahead.

    Piece ``p`` spans ``pool_x/pool_y[pstart[p] : pstart[p] + pc[p]]``
    and looks at ``nblk[p] >= 1`` upcoming competitors whose bisector
    coefficients sit contiguously at ``coeff_*[centry[p] + b]``
    (``separated`` marks competitors not co-located with the owner
    site; non-separated entries are consumed as untouched).  Returns
    ``(first_evt, evt_kind)``: the block position of the first
    non-untouched competitor (``nblk[p]`` when the whole block is
    untouched) and its kind — 0 none, 1 all-out (signed minimum
    ``>= -eps``), 2 crossing.

    The NumPy reference evaluates the whole block with the pre-seam
    array expressions (identical floats, identical decisions); the JIT
    tier walks each piece and stops at its first event.  Both split
    into per-piece ranges for the kernel thread pool — outputs are
    per-piece, so every worker count is bitwise identical.
    """
    n = int(pstart.shape[0])
    first_evt = np.empty(n, dtype=np.int64)
    evt_kind = np.empty(n, dtype=np.int64)
    if n == 0:
        return first_evt, evt_kind
    if kernel_tier() == "jit":
        fn = _get_jit("classify_first_events")
        if fn is not None:
            run_chunk_tasks(
                [
                    (
                        lambda lo=lo, hi=hi: fn(
                            pool_x, pool_y, pstart[lo:hi], pc[lo:hi],
                            centry[lo:hi], nblk[lo:hi],
                            coeff_a, coeff_b, coeff_c, separated, eps,
                            first_evt[lo:hi], evt_kind[lo:hi],
                        )
                    )
                    for lo, hi in split_ranges(n, min_per_worker=512)
                ]
            )
            return first_evt, evt_kind

    def _range(lo: int, hi: int) -> Callable[[], None]:
        def task() -> None:
            _classify_first_events_numpy(
                pool_x, pool_y, pstart[lo:hi], pc[lo:hi],
                centry[lo:hi], nblk[lo:hi],
                coeff_a, coeff_b, coeff_c, separated, eps,
                first_evt[lo:hi], evt_kind[lo:hi],
            )

        return task

    run_chunk_tasks(
        [_range(lo, hi) for lo, hi in split_ranges(n, min_per_worker=2048)]
    )
    return first_evt, evt_kind


def _classify_first_events_numpy(
    pool_x, pool_y, pstart, pc, centry, nblk, coeff_a, coeff_b, coeff_c,
    separated, eps, first_out, kind_out,
):
    """NumPy reference: the pre-seam block-expanded classification."""
    blk_starts = np.cumsum(nblk) - nblk
    total_blk = int(nblk.sum())
    blk_piece = segment_ids(nblk, total_blk)
    blk_pos = np.arange(total_blk, dtype=np.int64) - blk_starts[blk_piece]
    cidx = centry[blk_piece] + blk_pos
    pmax, pmin = _halfplane_minmax_numpy(
        pool_x, pool_y, pstart[blk_piece], pc[blk_piece],
        coeff_a[cidx], coeff_b[cidx], coeff_c[cidx],
    )
    untouched = ~separated[cidx] | (pmax <= eps)
    allout = ~untouched & (pmin >= -eps)
    pos_or_sent = np.where(untouched, np.iinfo(np.int64).max, blk_pos)
    first = np.minimum.reduceat(pos_or_sent, blk_starts)
    has = first < nblk
    entry = blk_starts + np.where(has, first, 0)
    kind_out[:] = np.where(has, np.where(allout[entry], 1, 2), 0)
    first_out[:] = np.where(has, first, nblk)


def clip_crossing_pieces(
    pool_x: np.ndarray,
    pool_y: np.ndarray,
    pstart: np.ndarray,
    pc: np.ndarray,
    coeff_a: np.ndarray,
    coeff_b: np.ndarray,
    coeff_c: np.ndarray,
    want_farther: np.ndarray,
    eps: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split every crossing piece by its event bisector, both sides.

    Piece ``p`` (``pc[p]`` pool vertices at ``pstart[p]``) is clipped
    against ``coeff_a[p]*x + coeff_b[p]*y - coeff_c[p]``.  Returns
    ``(clo_x, clo_y, clo_counts, far_x, far_y, far_counts)``: compacted
    deduped rings in piece order, with full-length count arrays —
    ``far_counts[p] == 0`` whenever ``not want_farther[p]`` (the
    farther child of a budget-exhausted piece is discarded without
    being built).

    Both tiers split the pieces into ranges for the kernel thread
    pool; each range's outputs are compacted in chunk order (NumPy) or
    written to disjoint slot windows of a shared buffer (JIT), so any
    worker count reproduces the serial floats bitwise.
    """
    n = int(pc.shape[0])
    if n == 0:
        z = np.zeros(0)
        zc = np.zeros(0, dtype=np.int64)
        return z, z, zc, z.copy(), z.copy(), zc.copy()
    want = np.asarray(want_farther, dtype=bool)
    if kernel_tier() == "jit":
        fn = _get_jit("clip_crossing")
        if fn is not None:
            slot_start = 2 * (np.cumsum(pc) - pc).astype(np.int64)
            cap = int(2 * pc.sum())
            slot_clo_x = np.empty(cap)
            slot_clo_y = np.empty(cap)
            slot_far_x = np.empty(cap)
            slot_far_y = np.empty(cap)
            clo_counts = np.zeros(n, dtype=np.int64)
            far_counts = np.zeros(n, dtype=np.int64)
            run_chunk_tasks(
                [
                    (
                        lambda lo=lo, hi=hi: fn(
                            pool_x, pool_y, pstart[lo:hi], pc[lo:hi],
                            coeff_a[lo:hi], coeff_b[lo:hi], coeff_c[lo:hi],
                            want[lo:hi], eps, EPS * EPS, slot_start[lo:hi],
                            slot_clo_x, slot_clo_y, clo_counts[lo:hi],
                            slot_far_x, slot_far_y, far_counts[lo:hi],
                        )
                    )
                    for lo, hi in split_ranges(n, min_per_worker=128)
                ]
            )
            cidx = ragged_indices(slot_start, clo_counts)
            fidx = ragged_indices(slot_start, far_counts)
            return (
                slot_clo_x[cidx], slot_clo_y[cidx], clo_counts,
                slot_far_x[fidx], slot_far_y[fidx], far_counts,
            )
    ranges = split_ranges(n, min_per_worker=512)
    parts = run_chunk_tasks(
        [
            (
                lambda lo=lo, hi=hi: _clip_crossing_numpy(
                    pool_x, pool_y, pstart[lo:hi], pc[lo:hi],
                    coeff_a[lo:hi], coeff_b[lo:hi], coeff_c[lo:hi],
                    want[lo:hi], eps,
                )
            )
            for lo, hi in ranges
        ]
    )
    if len(parts) == 1:
        return parts[0]
    return tuple(np.concatenate([part[j] for part in parts]) for j in range(6))


def _clip_crossing_numpy(
    pool_x, pool_y, pstart, pc, a_cross, b_cross, c_cross, want, eps
):
    """NumPy reference: the pre-seam fused two-sided clip expressions."""
    ccounts = pc
    ctotal = int(ccounts.sum())
    cgather = ragged_indices(pstart, ccounts)
    cvx = pool_x[cgather]
    cvy = pool_y[cgather]
    vert_piece = segment_ids(ccounts, ctotal)
    cval = (
        a_cross[vert_piece] * cvx
        + b_cross[vert_piece] * cvy
        - c_cross[vert_piece]
    )
    cstarts = np.cumsum(ccounts) - ccounts
    prev = np.arange(ctotal, dtype=np.int64) - 1
    prev[cstarts] = cstarts + ccounts - 1
    pvx = cvx[prev]
    pvy = cvy[prev]
    pval = cval[prev]
    inside_c = cval <= eps
    prev_in_c = pval <= eps
    cross_c = inside_c != prev_in_c
    # Edge/bisector intersections: one evaluation shared by both sides,
    # in the exact scalar grouping (midpoint fallback for degenerate
    # edges, clamped interpolation parameter).
    denom = pval - cval
    degen = np.abs(denom) <= EPS * EPS
    t = np.clip(pval / np.where(degen, 1.0, denom), 0.0, 1.0)
    ipx = np.where(degen, (pvx + cvx) / 2.0, pvx + t * (cvx - pvx))
    ipy = np.where(degen, (pvy + cvy) / 2.0, pvy + t * (cvy - pvy))
    # Emission slots per vertex: [intersection, current vertex] — the
    # scalar append order.
    n2 = 2 * ctotal
    ex = np.empty(n2)
    ey = np.empty(n2)
    ex[0::2] = ipx
    ex[1::2] = cvx
    ey[0::2] = ipy
    ey[1::2] = cvy
    slot_piece = np.repeat(vert_piece, 2)
    emit_c = np.empty(n2, dtype=bool)
    emit_c[0::2] = cross_c
    emit_c[1::2] = inside_c
    clo_x, clo_y, clo_counts = _compress_rings_numpy(
        ex, ey, slot_piece, emit_c, ccounts.shape[0], eps
    )
    # The farther side exists only for pieces that still have clip
    # budget; the ring machinery runs on the budgeted subset only and
    # the counts are scattered back to full length (zero => discarded).
    far_counts = np.zeros(ccounts.shape[0], dtype=np.int64)
    wsel = np.nonzero(want)[0]
    if wsel.size:
        fcounts = ccounts[wsel]
        fg = ragged_indices(cstarts[wsel], fcounts)
        cval_f = cval[fg]
        pval_f = pval[fg]
        inside_f = cval_f >= -eps
        prev_in_f = pval_f >= -eps
        cross_f = inside_f != prev_in_f
        nf2 = 2 * fg.shape[0]
        fx = np.empty(nf2)
        fy = np.empty(nf2)
        fx[0::2] = ipx[fg]
        fx[1::2] = cvx[fg]
        fy[0::2] = ipy[fg]
        fy[1::2] = cvy[fg]
        slot_piece_f = np.repeat(segment_ids(fcounts, fg.shape[0]), 2)
        emit_f = np.empty(nf2, dtype=bool)
        emit_f[0::2] = cross_f
        emit_f[1::2] = inside_f
        far_x, far_y, fcnt = _compress_rings_numpy(
            fx, fy, slot_piece_f, emit_f, wsel.size, eps
        )
        far_counts[wsel] = fcnt
    else:
        far_x = np.zeros(0)
        far_y = np.zeros(0)
    return clo_x, clo_y, clo_counts, far_x, far_y, far_counts


def compress_rings(
    ex: np.ndarray,
    ey: np.ndarray,
    ring_of_slot: np.ndarray,
    emit: np.ndarray,
    nrings: int,
    eps: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compact emitted clip vertices into deduped rings.

    Consecutive vertices within ``eps`` (per axis) are collapsed, then
    trailing vertices cyclically equal to the ring head are dropped —
    array-pass analogues of the scalar running dedupe in
    ``split_ring_halfplane`` (identical except on chains of 3+ vertices
    that are pairwise but not transitively within ``eps``, which the
    sparse tier's tolerance contract covers).  Rings are independent,
    so the JIT tier's per-ring fixpoint reaches the identical result.
    """
    if kernel_tier() == "jit":
        fn = _get_jit("compress_rings")
        if fn is not None:
            x = ex[emit]
            y = ey[emit]
            counts = np.bincount(
                ring_of_slot[emit], minlength=nrings
            ).astype(np.int64)
            starts = np.cumsum(counts) - counts
            out_counts = np.empty(nrings, dtype=np.int64)
            fn(x, y, starts, counts, eps, out_counts)
            gidx = ragged_indices(starts, out_counts)
            return x[gidx], y[gidx], out_counts
    return _compress_rings_numpy(ex, ey, ring_of_slot, emit, nrings, eps)


def _compress_rings_numpy(ex, ey, ring_of_slot, emit, nrings, eps):
    """NumPy reference: whole-array dedupe passes until fixpoint."""
    x = ex[emit]
    y = ey[emit]
    ring = ring_of_slot[emit]
    counts = np.bincount(ring, minlength=nrings)
    while x.size:
        starts = np.cumsum(counts) - counts
        first = np.zeros(x.size, dtype=bool)
        first[starts[counts > 0]] = True
        prev = np.arange(x.size, dtype=np.int64) - 1
        dup = ~first & (np.abs(x - x[prev]) <= eps) & (np.abs(y - y[prev]) <= eps)
        if not dup.any():
            break
        keep = ~dup
        x = x[keep]
        y = y[keep]
        ring = ring[keep]
        counts = np.bincount(ring, minlength=nrings)
    while x.size:
        starts = np.cumsum(counts) - counts
        rows = np.nonzero(counts >= 2)[0]
        if rows.size == 0:
            break
        lasts = starts[rows] + counts[rows] - 1
        close = (np.abs(x[lasts] - x[starts[rows]]) <= eps) & (
            np.abs(y[lasts] - y[starts[rows]]) <= eps
        )
        if not close.any():
            break
        drop = np.zeros(x.size, dtype=bool)
        drop[lasts[close]] = True
        keep = ~drop
        x = x[keep]
        y = y[keep]
        ring = ring[keep]
        counts = np.bincount(ring, minlength=nrings)
    return x, y, counts


# ----------------------------------------------------------------------
# Ragged-index primitives (shared with the sparse kernels)
# ----------------------------------------------------------------------
def ragged_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat gather indices for ragged runs ``[starts[i], starts[i]+counts[i])``.

    Single-cumsum construction (no ``np.repeat``): the output is seeded
    with ones, each segment boundary carries the jump from the previous
    segment's last index to the next segment's start, and one cumulative
    sum materialises every run.  Empty runs are skipped up front.
    """
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    nz = counts > 0
    if not nz.all():
        starts = starts[nz]
        counts = counts[nz]
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if starts.shape[0] > 1:
        ends = np.cumsum(counts[:-1])
        out[ends] = starts[1:] - starts[:-1] - counts[:-1] + 1
    return np.cumsum(out)


def segment_ids(counts: np.ndarray, total: Optional[int] = None) -> np.ndarray:
    """Segment id of every element of ragged runs with the given counts.

    The ``np.repeat(np.arange(n), counts)`` replacement: a bincount of
    the inner run boundaries followed by one cumulative sum.  Empty
    segments are handled (their ids are simply skipped).
    """
    if total is None:
        total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)[:-1]
    ends = ends[ends < total]
    if ends.size == 0:
        return np.zeros(total, dtype=np.int64)
    bumps = np.bincount(ends, minlength=total)
    return np.cumsum(bumps)
