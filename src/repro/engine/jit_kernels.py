"""Optional JIT kernel tier for the bandwidth-bound sparse kernels.

The sparse tier's two remaining hot loops are memory-bandwidth bound in
NumPy: the per-piece signed half-plane reduction inside
:func:`~repro.engine.sparse_kernels.clip_cells_batch` (every live vertex
is read, multiplied and max/min-reduced once per clipping level) and the
circle-check closer-counting panels of the distributed gather (every
``(known, sample)`` pair is expanded into a float64 panel).  This module
gives each of them a *kernel seam* with two interchangeable
implementations:

* a **NumPy reference implementation** — always present, always the
  equivalence oracle.  It reproduces the exact array expressions the
  kernels used before the seam existed, so introducing the seam changes
  no floats;
* an optional **JIT implementation** compiled with ``numba`` on first
  use.  The loop bodies use the same IEEE-754 operations in the same
  grouping (no ``fastmath``), so half-plane values are bitwise identical
  and the closer-count *decisions* (integer counts compared against
  ``k``) are identical; see DESIGN.md "Kernel tiers" for the contract.

Tier selection is the ``REPRO_KERNELS`` environment knob:

* ``auto`` (default) — JIT when ``numba`` imports, NumPy otherwise;
* ``numpy`` — force the reference implementation;
* ``jit`` — require numba; raises with a clear message when missing.

``numba`` is an *optional* dependency: nothing in this module imports it
at module load, and the loop-form kernel bodies are plain Python
functions (compiled lazily on first JIT call), so they double as a slow
but dependency-free oracle for the JIT code path in tests.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.engine.kernels import chunk_budget_bytes

__all__ = [
    "KERNELS_ENV",
    "kernel_tier",
    "numba_available",
    "halfplane_minmax",
    "closer_counts",
]

#: Environment knob selecting the kernel tier: ``jit`` | ``numpy`` | ``auto``.
KERNELS_ENV = "REPRO_KERNELS"

_VALID_TIERS = ("auto", "numpy", "jit")

#: Cached numba availability probe (None = not probed yet).
_NUMBA_OK: Optional[bool] = None

#: Lazily compiled JIT kernels, keyed by seam name.
_JIT_CACHE: Dict[str, Callable] = {}


def numba_available() -> bool:
    """Whether ``numba`` can be imported (probed once, then cached)."""
    global _NUMBA_OK
    if _NUMBA_OK is None:
        try:
            import numba  # noqa: F401

            _NUMBA_OK = True
        except ImportError:
            _NUMBA_OK = False
    return _NUMBA_OK


def kernel_tier() -> str:
    """Resolve ``REPRO_KERNELS`` to the effective tier: ``jit`` or ``numpy``.

    Read per call (not cached) so tests and benchmarks can flip the knob
    at runtime; the JIT compilation cache persists across flips.
    """
    raw = os.environ.get(KERNELS_ENV, "auto").strip().lower() or "auto"
    if raw not in _VALID_TIERS:
        raise ValueError(
            f"{KERNELS_ENV} must be one of {', '.join(_VALID_TIERS)}, got {raw!r}"
        )
    if raw == "numpy":
        return "numpy"
    if raw == "jit":
        if not numba_available():
            raise RuntimeError(
                f"{KERNELS_ENV}=jit requires numba, which is not installed; "
                f"install numba or use {KERNELS_ENV}=auto|numpy"
            )
        return "jit"
    return "jit" if numba_available() else "numpy"


# ----------------------------------------------------------------------
# Loop-form kernel bodies (numba-compilable, plain-Python runnable)
# ----------------------------------------------------------------------
def _halfplane_minmax_loops(vx, vy, starts, counts, ca, cb, cc, pmax, pmin):
    """Per-piece max/min of ``a*x + b*y - c`` over the piece's vertices.

    Written in numba's nopython subset; the arithmetic is the exact
    IEEE grouping of the NumPy reference (one multiply-add chain per
    vertex, plain comparisons for the reductions), so JIT results are
    bitwise identical.
    """
    for p in range(starts.shape[0]):
        s = starts[p]
        e = s + counts[p]
        a = ca[p]
        b = cb[p]
        c = cc[p]
        hi = -np.inf
        lo = np.inf
        for i in range(s, e):
            v = a * vx[i] + b * vy[i] - c
            if v > hi:
                hi = v
            if v < lo:
                lo = v
        pmax[p] = hi
        pmin[p] = lo


def _closer_counts_loops(
    kx, ky, offsets, counts, sample_x, sample_y, threshold_sq, cap, k, out
):
    """Two-stage closer-than-node counting, fused per row.

    Row ``r`` owns the ``counts[r]`` known positions at
    ``kx/ky[offsets[r]:offsets[r] + counts[r]]``.  Stage 1 counts the
    first ``min(counts[r], cap)`` knowns for every sample; only when a
    sample is still short of ``k`` (and knowns remain) does stage 2 add
    the remainder.  Comparisons use ``dx*dx + dy*dy < threshold_sq`` on
    the same operands as the NumPy reference, so the counts compared
    against ``k`` are identical.
    """
    n_rows, n_samples = sample_x.shape
    for r in range(n_rows):
        off = offsets[r]
        n = counts[r]
        use = n if n < cap else cap
        short = False
        for s in range(n_samples):
            px = sample_x[r, s]
            py = sample_y[r, s]
            t = threshold_sq[r, s]
            cnt = 0
            for j in range(off, off + use):
                dx = kx[j] - px
                dy = ky[j] - py
                if dx * dx + dy * dy < t:
                    cnt += 1
            out[r, s] = cnt
            if cnt < k:
                short = True
        if short and n > cap:
            for s in range(n_samples):
                px = sample_x[r, s]
                py = sample_y[r, s]
                t = threshold_sq[r, s]
                cnt = 0
                for j in range(off + use, off + n):
                    dx = kx[j] - px
                    dy = ky[j] - py
                    if dx * dx + dy * dy < t:
                        cnt += 1
                out[r, s] += cnt


def _get_jit(name: str) -> Callable:
    """Compile (once) and return the JIT build of a loop-form body."""
    fn = _JIT_CACHE.get(name)
    if fn is None:
        import numba

        body = {
            "halfplane_minmax": _halfplane_minmax_loops,
            "closer_counts": _closer_counts_loops,
        }[name]
        # ``parallel=True`` would be tempting, but the outer loops carry
        # no dependencies *and* no shared writes, so plain ``njit`` with
        # an explicit prange rewrite is the safe default only for the
        # row loop; keep it serial-per-call and deterministic — the
        # panels parallelise across calls at the protocol level.
        fn = numba.njit(cache=False, fastmath=False)(body)
        _JIT_CACHE[name] = fn
    return fn


# ----------------------------------------------------------------------
# Seam entry points
# ----------------------------------------------------------------------
def halfplane_minmax(
    vx: np.ndarray,
    vy: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    coeff_a: np.ndarray,
    coeff_b: np.ndarray,
    coeff_c: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-piece ``(max, min)`` of the signed half-plane value.

    Piece ``p`` spans ``vx/vy[starts[p] : starts[p] + counts[p]]``
    (``counts[p] >= 1``) and is evaluated against its own bisector
    ``coeff_a[p]*x + coeff_b[p]*y - coeff_c[p]``.  The NumPy reference
    is the pre-seam array expression (gather + elementwise + reduceat);
    the JIT tier computes identical floats without materialising the
    per-vertex value array.
    """
    n_pieces = int(starts.shape[0])
    if n_pieces == 0:
        return np.zeros(0), np.zeros(0)
    if kernel_tier() == "jit":
        pmax = np.empty(n_pieces)
        pmin = np.empty(n_pieces)
        _get_jit("halfplane_minmax")(
            vx, vy, starts, counts, coeff_a, coeff_b, coeff_c, pmax, pmin
        )
        return pmax, pmin
    total = int(counts.sum())
    if n_pieces == 1 or np.array_equal(
        starts[1:], starts[0] + np.cumsum(counts[:-1])
    ):
        # Contiguous back-to-back pieces: skip the gather.
        base = int(starts[0])
        gvx = vx[base : base + total]
        gvy = vy[base : base + total]
    else:
        gidx = ragged_indices(starts, counts)
        gvx = vx[gidx]
        gvy = vy[gidx]
    vert_piece = segment_ids(counts, total)
    val = coeff_a[vert_piece] * gvx + coeff_b[vert_piece] * gvy - coeff_c[vert_piece]
    substarts = np.cumsum(counts) - counts
    return np.maximum.reduceat(val, substarts), np.minimum.reduceat(val, substarts)


def closer_counts(
    kx: np.ndarray,
    ky: np.ndarray,
    offsets: np.ndarray,
    counts: np.ndarray,
    sample_x: np.ndarray,
    sample_y: np.ndarray,
    threshold_sq: np.ndarray,
    cap: int,
    k: int,
) -> np.ndarray:
    """Decision-equivalent closer-than-node counts per ``(row, sample)``.

    Row ``i`` owns the ``counts[i]`` known positions starting at flat
    offset ``offsets[i]`` in ``kx/ky``; ``sample_x/sample_y/
    threshold_sq`` are ``(rows, samples)`` panels.  Counting is
    two-staged: a prefix of ``cap`` knowns settles most samples (a
    subset count already ``>= k`` can only grow), and only rows with a
    still-short sample pay for the remainder, whose totals are then
    exact.  Rows settled by stage 1 report the prefix count, so the
    returned matrix is *decision*-equivalent (``count >= k`` agrees
    everywhere with the one-shot count), not value-equal.
    """
    n_rows = int(offsets.shape[0])
    n_samples = int(sample_x.shape[1]) if sample_x.ndim == 2 else 0
    out = np.zeros((n_rows, n_samples), dtype=np.int64)
    if n_rows == 0 or n_samples == 0:
        return out
    if kernel_tier() == "jit":
        _get_jit("closer_counts")(
            kx,
            ky,
            offsets.astype(np.int64, copy=False),
            counts.astype(np.int64, copy=False),
            sample_x,
            sample_y,
            threshold_sq,
            np.int64(cap),
            np.int64(k),
            out,
        )
        return out
    _closer_counts_numpy(
        kx, ky, offsets, counts, sample_x, sample_y, threshold_sq, cap, k, out
    )
    return out


def _closer_counts_numpy(
    kx, ky, offsets, counts, sample_x, sample_y, threshold_sq, cap, k, out
):
    """NumPy reference: chunked panels, both stages inside one row walk.

    The panel expression is the pre-seam one (``kx[g][:, None] -
    sample_x`` squared in place, summed, compared to ``threshold_sq``,
    ``np.add.reduceat`` over owner groups), so counts are bitwise
    identical to the historic two-pass implementation.
    """
    rows = np.arange(offsets.shape[0], dtype=np.int64)
    use = np.minimum(counts, cap)
    _panel_counts(
        kx, ky, offsets, use, rows, sample_x, sample_y, threshold_sq, out, add=False
    )
    need = np.nonzero((counts > cap) & np.any(out < k, axis=1))[0]
    if need.size:
        _panel_counts(
            kx,
            ky,
            offsets[need] + cap,
            counts[need] - cap,
            need,
            sample_x,
            sample_y,
            threshold_sq,
            out,
            add=True,
        )


def _panel_counts(
    kx, ky, offsets, ncand, rows, sample_x, sample_y, threshold_sq, out, add
):
    """One chunked counting pass over ``(row, known, sample)`` panels.

    ``rows[i]`` is the global row (into the sample panels and ``out``)
    owning the ``ncand[i]`` knowns at flat offset ``offsets[i]``.
    """
    n_rows = offsets.shape[0]
    n_samples = sample_x.shape[1]
    budget = max(chunk_budget_bytes(), 1)
    per_pair_bytes = n_samples * 8 * 3
    start = 0
    while start < n_rows:
        stop = start
        pair_total = 0
        while (
            stop < n_rows
            and (pair_total + ncand[stop]) * per_pair_bytes <= budget
        ):
            pair_total += ncand[stop]
            stop += 1
        stop = max(stop, start + 1)
        sub_counts = ncand[start:stop]
        total = int(sub_counts.sum())
        if total:
            gidx = ragged_indices(offsets[start:stop], sub_counts)
            pair_row = rows[start:stop][segment_ids(sub_counts, total)]
            pdx = kx[gidx][:, None] - sample_x[pair_row]
            pdy = ky[gidx][:, None] - sample_y[pair_row]
            np.multiply(pdx, pdx, out=pdx)
            np.multiply(pdy, pdy, out=pdy)
            pdx += pdy
            closer = pdx < threshold_sq[pair_row]
            group_starts = np.cumsum(sub_counts) - sub_counts
            nz = sub_counts > 0
            block = np.zeros((stop - start, n_samples), dtype=np.int64)
            block[nz] = np.add.reduceat(closer, group_starts[nz], axis=0)
            if add:
                out[rows[start:stop]] += block
            else:
                out[rows[start:stop]] = block
        start = stop


# ----------------------------------------------------------------------
# Ragged-index primitives (shared with the sparse kernels)
# ----------------------------------------------------------------------
def ragged_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat gather indices for ragged runs ``[starts[i], starts[i]+counts[i])``.

    Single-cumsum construction (no ``np.repeat``): the output is seeded
    with ones, each segment boundary carries the jump from the previous
    segment's last index to the next segment's start, and one cumulative
    sum materialises every run.  Empty runs are skipped up front.
    """
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    nz = counts > 0
    if not nz.all():
        starts = starts[nz]
        counts = counts[nz]
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if starts.shape[0] > 1:
        ends = np.cumsum(counts[:-1])
        out[ends] = starts[1:] - starts[:-1] - counts[:-1] + 1
    return np.cumsum(out)


def segment_ids(counts: np.ndarray, total: Optional[int] = None) -> np.ndarray:
    """Segment id of every element of ragged runs with the given counts.

    The ``np.repeat(np.arange(n), counts)`` replacement: a bincount of
    the inner run boundaries followed by one cumulative sum.  Empty
    segments are handled (their ids are simply skipped).
    """
    if total is None:
        total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)[:-1]
    ends = ends[ends < total]
    if ends.size == 0:
        return np.zeros(total, dtype=np.int64)
    bumps = np.bincount(ends, minlength=total)
    return np.cumsum(bumps)
