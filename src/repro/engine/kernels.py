"""Vectorized geometry kernels backing the batched round engine.

Three families of kernels live here:

* **distance kernels** — pairwise / cross distance matrices with an
  optional chunked evaluation so memory stays bounded for large inputs
  (:func:`pairwise_distance_matrix`, :func:`cross_distances`) and the
  chunked disk-counting kernel shared with ``repro.analysis.coverage``
  and ``repro.voronoi.raster`` (:func:`disk_cover_counts`);
* **clipping kernels** — the Sutherland–Hodgman half-plane clip driven
  by precomputed signed-value arrays (:func:`clip_ring_halfplane`, the
  fused two-sided :func:`split_ring_halfplane`) and the incremental
  budgeted clipping sweep over whole competitor sets
  (:class:`ClippingSweep`, :func:`dominating_pieces_batch`);
* **prefilter kernels** — the Lemma-1 candidate selection expressed as
  array operations (:func:`select_competitors`).

Numerical contract
------------------
The batched engine must produce results *bitwise identical* to the
scalar per-node path.  Two rules keep that true:

1. Every computation whose result feeds the simulation output (clip
   intersection points, half-plane coefficients and signed values) uses
   only IEEE-754 ``+ - * /`` in exactly the grouping of the scalar code.
   Those operations round identically in NumPy and CPython, so the
   vectorized results are bitwise equal.  (Negation is exact, so the
   flipped half-plane's values are exactly ``-v`` and both sides of a
   split share one evaluation and one set of intersection points.)
2. Computations that only steer *decisions with measure-zero knife
   edges* (which competitors fall inside a search radius, the sorted
   competitor order) may use ``np.hypot``, which can differ from
   ``math.hypot`` by 1 ulp.  A 1-ulp difference only matters when a
   distance ties a threshold exactly, which does not occur for the
   deployments this engine runs on.  Everything downstream of a
   decision (dedupe, sliver-area tests, Chebyshev centers) reuses the
   *scalar* helpers, so no drift can accumulate.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.clipping import dedupe_ring
from repro.geometry.polygon import polygon_area
from repro.geometry.primitives import EPS, Point
from repro.obs import trace as _trace
from repro.voronoi.dominating import _MIN_PIECE_AREA

Polygon = List[Point]

#: Batches at most this large skip the NumPy set-up in the sweep: for a
#: handful of competitors plain-float sorting and coefficients are
#: cheaper than array construction.
_SMALL_BATCH = 24

#: Remaining-competitor tails at most this long are finished in scalar
#: mode: packing the vertex arrays costs more than a few scalar passes.
_MIN_VECTOR_TAIL = 8


# ----------------------------------------------------------------------
# Memory budgets
# ----------------------------------------------------------------------
#: Environment knob capping any single dense pairwise matrix allocation.
DENSE_MATRIX_BYTES_ENV = "REPRO_DENSE_MATRIX_BYTES"
_DEFAULT_DENSE_MATRIX_BYTES = 1 << 30  # 1 GiB

#: Environment knob bounding the transient working set of chunked kernels.
#: The default is sized to keep a chunk's transient panels resident in a
#: typical last-level cache: panel kernels are memory-bandwidth bound, and
#: streaming much larger chunks through DRAM measures ~3x slower than
#: cache-resident ones for identical results.
CHUNK_BYTES_ENV = "REPRO_CHUNK_BYTES"
_DEFAULT_CHUNK_BYTES = 16 << 20  # 16 MiB

#: Environment knob selecting the intra-round worker count of the
#: chunked kernel seams.  Default: one worker per available core
#: (respecting CPU affinity / container quotas where the platform
#: exposes them); ``1`` disables the executor entirely and runs the
#: exact serial dispatch path.  Every parallel site partitions its work
#: into per-item-independent chunks with disjoint output slices (or a
#: chunk-ordered concatenation), so the computed floats are identical
#: for every worker count — the knob changes wall-clock only.
KERNEL_THREADS_ENV = "REPRO_KERNEL_THREADS"


def _env_bytes(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer byte count, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def dense_matrix_byte_cap() -> int:
    """Byte cap for one dense pairwise matrix (``REPRO_DENSE_MATRIX_BYTES``)."""
    return _env_bytes(DENSE_MATRIX_BYTES_ENV, _DEFAULT_DENSE_MATRIX_BYTES)


def chunk_budget_bytes() -> int:
    """Transient working-set budget of chunked kernels (``REPRO_CHUNK_BYTES``)."""
    return _env_bytes(CHUNK_BYTES_ENV, _DEFAULT_CHUNK_BYTES)


def _available_cores() -> int:
    """Cores available to this process (affinity-aware where possible)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


def kernel_threads() -> int:
    """Resolve ``REPRO_KERNEL_THREADS`` to the effective worker count.

    Read per call (not cached) so tests and benchmarks can flip the
    knob at runtime.  Unset/empty means one worker per available core;
    ``1`` is the serial dispatch path, byte-for-byte today's behaviour.
    """
    raw = os.environ.get(KERNEL_THREADS_ENV, "").strip()
    if not raw:
        return _available_cores()
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{KERNEL_THREADS_ENV} must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"{KERNEL_THREADS_ENV} must be a positive integer, got {raw!r}"
        )
    return value


#: Shared intra-round executor, built lazily and grown (never shrunk)
#: to the largest worker count requested so far.  One pool serves every
#: kernel seam of every engine in the process: the seams release the
#: GIL for the bulk of their work (NumPy ufunc inner loops, numba
#: ``nogil`` kernels), so chunks genuinely overlap.
_EXECUTOR = None
_EXECUTOR_WORKERS = 0
_EXECUTOR_LOCK = threading.Lock()


def _shared_executor(workers: int):
    global _EXECUTOR, _EXECUTOR_WORKERS
    with _EXECUTOR_LOCK:
        if _EXECUTOR is None or workers > _EXECUTOR_WORKERS:
            from concurrent.futures import ThreadPoolExecutor

            old = _EXECUTOR
            _EXECUTOR = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-kernel"
            )
            _EXECUTOR_WORKERS = workers
            if old is not None:
                old.shutdown(wait=False)
        return _EXECUTOR


def run_chunk_tasks(tasks, workers: Optional[int] = None) -> list:
    """Run independent chunk thunks, returning results in task order.

    The deterministic chunk-ordered reduction primitive shared by the
    kernel seams: submission order *is* reduction order, so callers that
    concatenate the returned chunks (or let chunks write disjoint slices
    of a preallocated output) produce identical arrays for every worker
    count.  With one worker — or one task — the tasks run inline on the
    calling thread, which is exactly the historic serial path.
    """
    tasks = list(tasks)
    if workers is None:
        workers = kernel_threads()
    if _trace._ACTIVE is not None:
        # Traced run: each chunk becomes a span parented to the caller's
        # current span even when executed on a pool thread (the wrapper
        # copies the submitting context).  Chunk count, order and the
        # thunks themselves are unchanged, so results stay bitwise
        # identical; with tracing off this costs the one global check.
        tasks = _trace.wrap_chunk_tasks(tasks)
    if workers <= 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    executor = _shared_executor(workers)
    futures = [executor.submit(task) for task in tasks]
    return [future.result() for future in futures]


def split_ranges(
    total_items: int, workers: Optional[int] = None, min_per_worker: int = 1
) -> List[Tuple[int, int]]:
    """Contiguous near-equal ``(start, stop)`` ranges for worker fan-out.

    At most ``workers`` ranges, each at least ``min_per_worker`` items
    (the last range takes the remainder); a single range when the work
    is too small to be worth splitting.  Used by seams whose per-item
    results are independent, so the split is invisible in the output.
    """
    if workers is None:
        workers = kernel_threads()
    if total_items <= 0:
        return []
    n_ranges = min(workers, max(1, total_items // max(1, min_per_worker)))
    if n_ranges <= 1:
        return [(0, total_items)]
    step = -(-total_items // n_ranges)
    return [
        (start, min(start + step, total_items))
        for start in range(0, total_items, step)
    ]


def _check_dense_budget(n: int, matrices: int) -> None:
    """Refuse a dense ``(N, N)`` allocation that would blow the byte cap.

    Raises a *clear* ``MemoryError`` before NumPy attempts the
    allocation: the chunked evaluation paths bound the intermediate
    broadcast tensors but still materialise the full output matrices,
    so the guard is on the output size, chunked or not.
    """
    cap = dense_matrix_byte_cap()
    needed = n * n * 8 * matrices
    if needed > cap:
        raise MemoryError(
            f"dense pairwise distance matrix for {n} points needs "
            f"{needed / 1e9:.1f} GB ({matrices} float64 matrix(es) of "
            f"{n}x{n}), exceeding the {cap / 1e9:.1f} GB cap; use the "
            f'sparse engine tier (LaacadConfig(engine="sparse") or '
            f"REPRO_ENGINE=sparse), which never builds an N x N matrix, "
            f"or raise {DENSE_MATRIX_BYTES_ENV}."
        )


def plan_chunks(
    total_items: int,
    bytes_per_item: int,
    budget: Optional[int] = None,
    workers: int = 1,
) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` slices bounding transient memory.

    The shape-first idiom of the chunked kernel drivers: callers size
    their *output* up front (``total_items`` and the per-item transient
    footprint are known before any work happens), then stream fixed-size
    chunks through the kernel so the working set never exceeds the
    budget (``REPRO_CHUNK_BYTES`` by default).  Always yields at least
    one item per chunk, so pathologically large rows degrade to
    item-at-a-time evaluation instead of failing.

    ``workers`` is the executor fan-out the caller intends to dispatch
    the chunks across (``kernel_threads()``): with more than one worker
    the chunk size is additionally capped so at least ``workers`` chunks
    exist, otherwise one budget-sized chunk could serialise the whole
    pass on a single thread.  ``workers=1`` (the default) is bitwise the
    historic plan — the budget alone sizes the chunks.
    """
    if total_items < 0:
        raise ValueError("total_items must be non-negative")
    if bytes_per_item <= 0:
        raise ValueError("bytes_per_item must be positive")
    if budget is None:
        budget = chunk_budget_bytes()
    chunk = max(1, budget // bytes_per_item)
    if workers > 1:
        chunk = max(1, min(chunk, -(-total_items // workers)))
    for start in range(0, total_items, chunk):
        yield start, min(start + chunk, total_items)


def csr_pair_distances(
    centers: np.ndarray,
    point_x: np.ndarray,
    point_y: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    budget: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Hypot and squared distances for CSR candidate-pair lists, chunked.

    The sparse tier's replacement for the dense
    :func:`pairwise_distance_and_sq`: ``indices[indptr[i]:indptr[i+1]]``
    are the candidate partners of center ``i`` (as produced by
    ``SpatialGrid.query_radius_many``), and the returned arrays are
    aligned with ``indices``.  Per element the arithmetic is exactly the
    dense kernel's (``np.hypot(dx, dy)`` and ``dx*dx + dy*dy`` on the
    same operands), so thresholds and hop counts derived from either
    form agree bitwise; the output is sized first and the pair list is
    streamed through in budget-bounded chunks.
    """
    centers = np.asarray(centers, dtype=float).reshape(-1, 2)
    total = int(indices.shape[0])
    owners = np.repeat(
        np.arange(centers.shape[0], dtype=np.int64), np.diff(indptr)
    )
    dist = np.empty(total, dtype=float)
    dist_sq = np.empty(total, dtype=float)

    def _chunk(start: int, stop: int):
        def task() -> None:
            idx = indices[start:stop]
            own = owners[start:stop]
            dx = point_x[idx] - centers[own, 0]
            dy = point_y[idx] - centers[own, 1]
            dist[start:stop] = np.hypot(dx, dy)
            dist_sq[start:stop] = dx * dx + dy * dy

        return task

    # Transient footprint per pair: owner row, gathered coordinates and
    # the dx/dy temporaries (~6 float64 lanes).  Chunks write disjoint
    # output slices, so dispatching them across the kernel thread pool
    # is bitwise invisible.
    workers = kernel_threads()
    run_chunk_tasks(
        [_chunk(start, stop) for start, stop in plan_chunks(total, 48, budget, workers)],
        workers,
    )
    return dist, dist_sq


# ----------------------------------------------------------------------
# Distance kernels
# ----------------------------------------------------------------------
def cross_distances(
    points_a: np.ndarray, points_b: np.ndarray, chunk_size: Optional[int] = None
) -> np.ndarray:
    """Dense ``(A, B)`` Euclidean distance matrix between two point sets.

    Uses the ``sqrt(dx*dx + dy*dy)`` formulation (matching the historic
    analysis code).  With ``chunk_size`` the rows are evaluated in
    blocks, bounding peak memory at ``O(chunk_size * B)`` instead of
    ``O(A * B)`` for the intermediate difference tensor.
    """
    a = np.asarray(points_a, dtype=float).reshape(-1, 2)
    b = np.asarray(points_b, dtype=float).reshape(-1, 2)
    if chunk_size is None or a.shape[0] <= chunk_size:
        diff = a[:, None, :] - b[None, :, :]
        return np.sqrt(np.sum(diff * diff, axis=2))
    out = np.empty((a.shape[0], b.shape[0]), dtype=float)
    for start in range(0, a.shape[0], chunk_size):
        block = a[start : start + chunk_size]
        diff = block[:, None, :] - b[None, :, :]
        out[start : start + block.shape[0]] = np.sqrt(np.sum(diff * diff, axis=2))
    return out


def pairwise_distance_matrix(
    points: np.ndarray, chunk_size: Optional[int] = None
) -> np.ndarray:
    """Dense ``(N, N)`` pairwise distance matrix via ``np.hypot``.

    Used for threshold decisions (competitor selection) only — see the
    module docstring's numerical contract.  Raises a descriptive
    ``MemoryError`` (suggesting ``engine="sparse"``) when the output
    matrix would exceed :func:`dense_matrix_byte_cap`.
    """
    pts = np.asarray(points, dtype=float).reshape(-1, 2)
    n = pts.shape[0]
    _check_dense_budget(n, 1)
    if chunk_size is None or n <= chunk_size:
        dx = pts[:, 0][:, None] - pts[:, 0][None, :]
        dy = pts[:, 1][:, None] - pts[:, 1][None, :]
        return np.hypot(dx, dy)
    out = np.empty((n, n), dtype=float)
    for start in range(0, n, chunk_size):
        block = pts[start : start + chunk_size]
        dx = block[:, 0][:, None] - pts[:, 0][None, :]
        dy = block[:, 1][:, None] - pts[:, 1][None, :]
        out[start : start + block.shape[0]] = np.hypot(dx, dy)
    return out


def pairwise_distance_and_sq(
    points: np.ndarray, chunk_size: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Dense ``(N, N)`` hypot *and* squared distance matrices in one pass.

    The distributed round engine needs both forms of the same pairwise
    geometry with two different numerical contracts:

    * the squared matrix (``dx*dx + dy*dy``) drives ring *membership*,
      which must reproduce ``SpatialGrid.query_radius``'s
      ``dx*dx + dy*dy <= r2 + 1e-15`` test bitwise (the ``1e-15`` slack
      deliberately admits boundary-exact points, e.g. lattice spacings
      that tie a ring radius, so the squared form cannot be derived from
      the rounded hypot distance);
    * the hypot matrix feeds hop counting
      (``ceil(distance / gamma - 1e-9)``), a threshold decision where
      ``np.hypot``'s potential 1-ulp difference from ``math.hypot`` is
      covered by rule 2 of the numerical contract above.

    Sharing one ``dx``/``dy`` evaluation keeps the two matrices
    consistent and halves the broadcast work; ``chunk_size`` bounds the
    intermediate memory exactly like :func:`pairwise_distance_matrix`.
    Raises a descriptive ``MemoryError`` (suggesting ``engine="sparse"``)
    when the *two* output matrices would exceed
    :func:`dense_matrix_byte_cap`.
    """
    pts = np.asarray(points, dtype=float).reshape(-1, 2)
    n = pts.shape[0]
    _check_dense_budget(n, 2)
    if chunk_size is None or n <= chunk_size:
        dx = pts[:, 0][:, None] - pts[:, 0][None, :]
        dy = pts[:, 1][:, None] - pts[:, 1][None, :]
        return np.hypot(dx, dy), dx * dx + dy * dy
    dist = np.empty((n, n), dtype=float)
    dist_sq = np.empty((n, n), dtype=float)
    for start in range(0, n, chunk_size):
        block = pts[start : start + chunk_size]
        dx = block[:, 0][:, None] - pts[:, 0][None, :]
        dy = block[:, 1][:, None] - pts[:, 1][None, :]
        dist[start : start + block.shape[0]] = np.hypot(dx, dy)
        dist_sq[start : start + block.shape[0]] = dx * dx + dy * dy
    return dist, dist_sq


def disk_cover_counts(
    positions: Sequence[Point],
    ranges: Sequence[float],
    sample_points: np.ndarray,
    slack: float = 1e-9,
    chunk_size: int = 4096,
) -> np.ndarray:
    """Number of sensing disks covering each sample point (chunked).

    Drop-in replacement for the dense ``(M, N, 2)`` broadcast the
    coverage verifier used to build: samples are processed in blocks of
    ``chunk_size`` so peak memory stays bounded while the per-element
    arithmetic (and therefore the result) is unchanged.
    """
    pos = np.asarray(positions, dtype=float)
    rng = np.asarray(ranges, dtype=float)
    if pos.shape[0] != rng.shape[0]:
        raise ValueError("positions and ranges must have the same length")
    samples = np.asarray(sample_points, dtype=float)
    if samples.size == 0:
        return np.zeros(0, dtype=int)
    samples = samples.reshape(-1, 2)
    counts = np.empty(samples.shape[0], dtype=np.int64)
    threshold = rng[None, :] + slack
    for start in range(0, samples.shape[0], chunk_size):
        block = samples[start : start + chunk_size]
        diff = block[:, None, :] - pos[None, :, :]
        dist = np.sqrt(np.sum(diff * diff, axis=2))
        counts[start : start + block.shape[0]] = (dist <= threshold).sum(axis=1)
    return counts


# ----------------------------------------------------------------------
# Containment kernels
# ----------------------------------------------------------------------
class _PolygonArrays:
    """Edge arrays of one polygon, precomputed for batched queries."""

    def __init__(self, polygon: Sequence[Point]) -> None:
        verts = np.asarray(polygon, dtype=float).reshape(-1, 2)
        # Closed edge list a -> b with a = vertex i, b = vertex i+1
        # (cyclic); the scalar ray cast pairs vertex i with the
        # *previous* vertex j, which is the same edge set.
        ax = verts[:, 0]
        ay = verts[:, 1]
        bx = np.roll(ax, -1)
        by = np.roll(ay, -1)
        self.ax, self.ay, self.bx, self.by = ax, ay, bx, by
        self.dx = bx - ax
        self.dy = by - ay
        seg_len_sq = self.dx * self.dx + self.dy * self.dy
        self.degenerate = seg_len_sq <= EPS * EPS
        # Avoid 0/0 in the vectorized projection; degenerate edges take
        # the point-to-endpoint branch instead.
        self.seg_len_sq = np.where(self.degenerate, 1.0, seg_len_sq)

    def on_boundary(self, xs: np.ndarray, ys: np.ndarray, eps: float) -> np.ndarray:
        """Per-sample "within eps of any edge", matching the scalar test.

        Elementwise the arithmetic is ``point_segment_distance``'s —
        projection parameter, clamp, foot point, hypot — so the decision
        agrees with the scalar boundary test (``np.hypot`` 1-ulp
        latitude aside, which only matters for points exactly ``eps``
        from an edge).
        """
        px = xs[:, None]
        py = ys[:, None]
        t = ((px - self.ax) * self.dx + (py - self.ay) * self.dy) / self.seg_len_sq
        t = np.clip(t, 0.0, 1.0)
        cx = self.ax + t * self.dx
        cy = self.ay + t * self.dy
        dist = np.hypot(px - cx, py - cy)
        if self.degenerate.any():
            endpoint = np.hypot(px - self.ax, py - self.ay)
            dist = np.where(self.degenerate[None, :], endpoint, dist)
        return (dist <= eps).any(axis=1)

    def ray_cast(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Per-sample ray-cast parity, matching ``point_in_polygon``.

        The scalar loop visits vertex ``i`` paired with its *previous*
        vertex ``j`` and computes the crossing abscissa as
        ``(xj - xi) * (y - yi) / (yj - yi) + xi``; on the edge
        ``a -> b`` that makes ``i`` the edge end ``b`` and ``j`` the
        edge start ``a``, and the formula below keeps that exact
        operand grouping.  Edges that do not straddle the scan line are
        masked out before the division's result is consumed, exactly
        like the scalar short-circuit.
        """
        px = xs[:, None]
        py = ys[:, None]
        straddles = (self.by[None, :] > py) != (self.ay[None, :] > py)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_cross = (self.ax - self.bx) * (py - self.by) / (self.ay - self.by) + self.bx
        crossings = (straddles & (px < x_cross)).sum(axis=1)
        return (crossings % 2).astype(bool)


class BatchedRegionContainment:
    """Vectorised, decision-exact ``Region.contains`` over sample arrays.

    Precomputes the edge arrays of the outer boundary and every hole
    once; :meth:`contains` then answers an entire batch of points with
    a handful of broadcast operations while reproducing the scalar
    decision structure bit for bit: a point is contained when it is on
    (or ray-cast inside) the outer polygon and neither strictly inside
    nor... precisely, ``point_in_polygon(p, outer,
    include_boundary=True) and not any(point_in_polygon(p, hole,
    include_boundary=False))`` — boundary points of the outer polygon
    count as inside, boundary points of a hole count as *outside* the
    hole (hence still free).
    """

    def __init__(self, region, eps: float = 1e-9) -> None:
        self.eps = eps
        self._outer = _PolygonArrays(region.outer)
        self._holes = [_PolygonArrays(hole) for hole in region.holes]

    def contains(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Boolean free-area mask for the sample points ``(xs, ys)``."""
        inside = self._outer.on_boundary(xs, ys, self.eps) | self._outer.ray_cast(
            xs, ys
        )
        for hole in self._holes:
            in_hole = ~hole.on_boundary(xs, ys, self.eps) & hole.ray_cast(xs, ys)
            inside &= ~in_hole
        return inside


# ----------------------------------------------------------------------
# Prefilter kernels
# ----------------------------------------------------------------------
def select_competitors(
    distance_row: np.ndarray, self_index: int, radius: float
) -> np.ndarray:
    """Indices of competitors strictly within ``radius`` (original order).

    Mirrors the scalar pre-filter's ``[q for q in others if
    distance(site, q) < rho]``: strict inequality, self excluded, and
    the surviving indices keep their original (alive-node) order.
    """
    mask = distance_row < radius
    mask[self_index] = False
    return np.nonzero(mask)[0]


# ----------------------------------------------------------------------
# Clipping kernels
# ----------------------------------------------------------------------
def halfplane_coefficient_arrays(
    site: Point, competitors: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Perpendicular-bisector half-plane coefficients for many competitors.

    Returns ``(a, b, c)`` arrays such that ``a*x + b*y <= c`` is the
    "at least as close to ``site`` as to competitor j" half-plane —
    elementwise identical to ``halfplane_from_bisector``.
    """
    sx, sy = float(site[0]), float(site[1])
    a = competitors[:, 0] - sx
    b = competitors[:, 1] - sy
    c = (
        competitors[:, 0] * competitors[:, 0]
        + competitors[:, 1] * competitors[:, 1]
        - sx * sx
        - sy * sy
    ) / 2.0
    return a, b, c


def clip_ring_halfplane(
    ring: Sequence[Point], values: Sequence[float], eps: float = EPS
) -> Polygon:
    """Sutherland–Hodgman half-plane clip driven by precomputed values.

    The sweep evaluates ``a*x + b*y - c`` for every live vertex of
    every piece in one vectorized pass; this clip consumes those
    per-vertex signed values instead of re-deriving them, so the
    per-polygon work reduces to output assembly.  Pass the negated
    values to clip against the flipped half-plane — IEEE negation makes
    ``-v`` exactly the flipped evaluation.

    Bitwise identical to ``clip_polygon_halfplane`` (including the
    boundary-intersection arithmetic, the clamped interpolation
    parameter, the degenerate-edge midpoint fallback and the final ring
    dedupe).

    Args:
        ring: the convex polygon's vertices.
        values: signed half-plane evaluation of each vertex, aligned
            with ``ring``.
        eps: boundary tolerance (vertices within ``eps`` count as
            inside).

    Returns:
        The clipped vertex ring (empty when fewer than 3 vertices
        survive).
    """
    if not ring:
        return []
    output: List[Point] = []
    prev = ring[-1]
    prev_val = values[-1]
    degenerate_eps = EPS * EPS
    for current, cur_val in zip(ring, values):
        cur_inside = cur_val <= eps
        prev_inside = prev_val <= eps
        if cur_inside != prev_inside:
            # Boundary crossing: replicate HalfPlane.boundary_intersection.
            denom = prev_val - cur_val
            if abs(denom) <= degenerate_eps:
                output.append(
                    ((prev[0] + current[0]) / 2.0, (prev[1] + current[1]) / 2.0)
                )
            else:
                t = prev_val / denom
                t = max(0.0, min(1.0, t))
                output.append(
                    (
                        prev[0] + t * (current[0] - prev[0]),
                        prev[1] + t * (current[1] - prev[1]),
                    )
                )
        if cur_inside:
            output.append(current)
        prev, prev_val = current, cur_val
    return dedupe_ring(output, eps)


def _ring_area(ring: Sequence[Point]) -> float:
    """Absolute shoelace area of a clipped ring.

    Delegates to the canonical ``polygon_area`` so the sliver-area
    decisions of both backends always share one float accumulation.
    """
    return polygon_area(ring)


def split_ring_halfplane(
    ring: Sequence[Point],
    values: Sequence[float],
    eps: float,
    want_farther: bool,
) -> Tuple[Polygon, float, Polygon, float]:
    """Fused two-sided clip of a convex ring against one bisector.

    Produces, in a single pass, both the "closer to the site" ring (the
    half-plane of the given ``values``) and — when ``want_farther`` —
    the "closer to the competitor" ring (the flipped half-plane, whose
    per-vertex values are exactly ``-v``).  The crossing intersections
    of the two sides coincide bitwise, so each edge's intersection
    arithmetic runs once rather than once per side.  Each output ring
    is deduped and measured exactly like ``clip_ring_halfplane`` +
    ``polygon_area`` would.

    Returns:
        ``(closer_ring, closer_area, farther_ring, farther_area)`` with
        empty rings / zero areas for degenerate results (and always for
        the farther side when ``want_farther`` is false).
    """
    closer: List[Point] = []
    farther: List[Point] = []
    closer_last: Optional[Point] = None
    farther_last: Optional[Point] = None
    prev = ring[-1]
    prev_val = values[-1]
    prev_inside_c = prev_val <= eps
    prev_inside_f = prev_val >= -eps
    degenerate_eps = EPS * EPS
    for current, cur_val in zip(ring, values):
        cur_inside_c = cur_val <= eps
        cur_inside_f = cur_val >= -eps
        crossing_c = cur_inside_c != prev_inside_c
        crossing_f = want_farther and (cur_inside_f != prev_inside_f)
        if crossing_c or crossing_f:
            denom = prev_val - cur_val
            if abs(denom) <= degenerate_eps:
                point = ((prev[0] + current[0]) / 2.0, (prev[1] + current[1]) / 2.0)
            else:
                t = prev_val / denom
                t = max(0.0, min(1.0, t))
                point = (
                    prev[0] + t * (current[0] - prev[0]),
                    prev[1] + t * (current[1] - prev[1]),
                )
            if crossing_c and (
                closer_last is None
                or abs(point[0] - closer_last[0]) > eps
                or abs(point[1] - closer_last[1]) > eps
            ):
                closer.append(point)
                closer_last = point
            if crossing_f and (
                farther_last is None
                or abs(point[0] - farther_last[0]) > eps
                or abs(point[1] - farther_last[1]) > eps
            ):
                farther.append(point)
                farther_last = point
        if cur_inside_c and (
            closer_last is None
            or abs(current[0] - closer_last[0]) > eps
            or abs(current[1] - closer_last[1]) > eps
        ):
            closer.append(current)
            closer_last = current
        if want_farther and cur_inside_f and (
            farther_last is None
            or abs(current[0] - farther_last[0]) > eps
            or abs(current[1] - farther_last[1]) > eps
        ):
            farther.append(current)
            farther_last = current
        prev, prev_val = current, cur_val
        prev_inside_c = cur_inside_c
        prev_inside_f = cur_inside_f

    # Cyclic wrap of the dedupe (exactly dedupe_ring's trailing pass).
    for output in (closer, farther):
        while len(output) >= 2 and (
            abs(output[0][0] - output[-1][0]) <= eps
            and abs(output[0][1] - output[-1][1]) <= eps
        ):
            output.pop()
    closer_area = _ring_area(closer) if len(closer) >= 3 else 0.0
    if len(closer) < 3:
        closer = []
    farther_area = _ring_area(farther) if len(farther) >= 3 else 0.0
    if len(farther) < 3:
        farther = []
    return closer, closer_area, farther, farther_area


class ClippingSweep:
    """Incremental array-native budgeted clipping sweep for one site.

    Folds nearest-first competitors into the site's live piece set
    exactly like ``repro.voronoi.dominating.dominating_pieces`` — but
    incrementally: :meth:`extend` may be called repeatedly with batches
    of farther competitors (the Lemma-1 pre-filter's expanding rings),
    and the fold continues from the cached state instead of re-clipping
    from scratch.  Because the sweep is a deterministic fold over the
    distance-sorted competitor sequence, the result after extending
    with rings ``A`` then ``B`` is bitwise identical to one scalar
    sweep over ``A ∪ B``.

    Internally each batch runs in two modes:

    * **scalar mode** while the state is churning (the nearest
      competitors nearly always clip something): per-piece evaluation
      with plain floats, the two-sided fused clip, and no array
      (re)builds;
    * **vector mode** once a competitor leaves every piece untouched
      and enough competitors remain: the live vertices are packed into
      coordinate arrays once and *blocks* of upcoming competitors are
      evaluated in single vectorized operations (``a*x + b*y - c`` over
      a (block, vertices) grid), with block sizes growing geometrically
      through the long no-op tail.  A half-plane is a no-op exactly
      when its row maximum is ``<= eps``, so one row-wise max
      classifies a whole block.
    """

    #: Safety margin for the far-competitor cutoff, vastly larger than
    #: any accumulated rounding error on O(1)-scale coordinates.
    _CUTOFF_MARGIN = 1e-7

    def __init__(
        self, site: Point, area_pieces: Sequence[Polygon], k: int, eps: float = EPS
    ) -> None:
        if k < 1:
            raise ValueError("coverage order k must be >= 1")
        self.site = site
        self.site_x = float(site[0])
        self.site_y = float(site[1])
        self.budget = k - 1
        self.eps = eps
        # state entries: (vertex ring, violation count)
        self.state: List[Tuple[Polygon, int]] = [
            (list(piece), 0) for piece in area_pieces if len(piece) >= 3
        ]
        #: Whether the previous batch ended in the no-op tail; the next
        #: batch then starts vectorized instead of probing scalar-first.
        self._tail_mode = False
        #: Cached max distance from the site to any live vertex.
        self._site_radius: Optional[float] = None

    def pieces(self) -> List[Polygon]:
        """The current live pieces (the dominating region so far)."""
        return [entry[0] for entry in self.state]

    def site_radius(self) -> float:
        """Largest distance from the site to any live vertex (cached).

        This is the quantity the Lemma-1 pre-filter terminates on (the
        paper's ``R-hat`` of the partial region), computed exactly like
        the scalar path's ``max(distance(site, v) ...)``.  It also backs
        the far-competitor cutoff: a competitor at distance ``d`` with
        ``d/2 > radius`` has its perpendicular bisector strictly outside
        every live vertex, so it provably cannot clip anything — and
        since the sweep folds competitors nearest-first, the entire
        remainder of the batch is a no-op too.
        """
        if self._site_radius is None:
            hypot = math.hypot
            sx, sy = self.site_x, self.site_y
            radius = 0.0
            for entry in self.state:
                for v in entry[0]:
                    d = hypot(v[0] - sx, v[1] - sy)
                    if d > radius:
                        radius = d
            self._site_radius = radius
        return self._site_radius

    # ------------------------------------------------------------------
    def extend(self, competitors) -> None:
        """Fold a batch of competitors into the sweep.

        Every competitor in the batch must be at least as far from the
        site as every previously folded competitor (the pre-filter's
        expanding rings guarantee this); within the batch, competitors
        are sorted nearest-first exactly like the scalar sweep.  Accepts
        an ``(M, 2)`` array or a sequence of point pairs.
        """
        if not self.state:
            return
        if isinstance(competitors, np.ndarray):
            count = competitors.shape[0]
            comp_rows: Optional[List[Point]] = None
        else:
            comp_rows = [(float(p[0]), float(p[1])) for p in competitors]
            count = len(comp_rows)
        if count == 0:
            return
        sx, sy = self.site_x, self.site_y
        # Far-competitor cutoff: competitors whose bisector provably
        # lies beyond every live vertex (squared-distance form of
        # ``d/2 > site_radius + margin``) are no-ops, and so is every
        # farther competitor in this nearest-first batch.
        cutoff_distance = 2.0 * (self.site_radius() + self._CUTOFF_MARGIN)
        cutoff_sq = cutoff_distance * cutoff_distance

        arrays: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        if count <= _SMALL_BATCH:
            # Plain-float set-up: sorting and coefficients for a handful
            # of competitors cost less than building NumPy arrays.  The
            # stable sort on the squared distance matches np.argsort.
            if comp_rows is None:
                comp_rows = competitors.tolist()
            hypot = math.hypot
            eps = self.eps
            sx2 = sx * sx
            sy2 = sy * sy
            decorated = sorted(
                ((cx - sx) * (cx - sx) + (cy - sy) * (cy - sy), index)
                for index, (cx, cy) in enumerate(comp_rows)
            )
            a_list: List[float] = []
            b_list: List[float] = []
            c_list: List[float] = []
            for dist_sq, index in decorated:
                if dist_sq > cutoff_sq:
                    break
                cx, cy = comp_rows[index]
                if hypot(cx - sx, cy - sy) <= eps:
                    # Co-located competitor: never strictly closer.
                    continue
                a_list.append(cx - sx)
                b_list.append(cy - sy)
                c_list.append((cx * cx + cy * cy - sx2 - sy2) / 2.0)
            total = len(a_list)
        else:
            comps = np.asarray(competitors, dtype=float).reshape(-1, 2)
            dx = comps[:, 0] - sx
            dy = comps[:, 1] - sy
            dist_sq = dx * dx + dy * dy
            order = np.argsort(dist_sq, kind="stable")
            comps = comps[order]
            cut = int(np.searchsorted(dist_sq[order], cutoff_sq, side="right"))
            comps = comps[:cut]
            if comps.shape[0]:
                # Co-located competitors are never strictly closer: no
                # constraint.
                separated = np.hypot(comps[:, 0] - sx, comps[:, 1] - sy) > self.eps
                if not separated.all():
                    comps = comps[separated]
            total = comps.shape[0]
            if total:
                a_arr, b_arr, c_arr = halfplane_coefficient_arrays(self.site, comps)
                a_list = a_arr.tolist()
                b_list = b_arr.tolist()
                c_list = c_arr.tolist()
                arrays = (a_arr, b_arr, c_arr)
        if total == 0:
            return

        i = 0
        while i < total and self.state:
            if (
                self._tail_mode
                and arrays is not None
                and total - i > _MIN_VECTOR_TAIL
            ):
                i = self._run_vectorized(arrays[0], arrays[1], arrays[2], i, total)
            else:
                i = self._run_scalar(a_list, b_list, c_list, i, total)

    # ------------------------------------------------------------------
    def _run_scalar(
        self,
        a_list: List[float],
        b_list: List[float],
        c_list: List[float],
        i: int,
        total: int,
    ) -> int:
        """Process competitors one at a time with plain-float evaluation.

        Returns the index of the next unprocessed competitor.  When a
        competitor leaves the state untouched, ``_tail_mode`` flips on
        and control returns to :meth:`extend`, which decides whether
        enough competitors remain to justify the vectorized bulk path
        (otherwise this method is simply re-entered).
        """
        eps = self.eps
        budget = self.budget
        state = self.state
        while i < total and state:
            a = a_list[i]
            b = b_list[i]
            c = c_list[i]
            changed = False
            new_state: List[Tuple[Polygon, int]] = []
            for entry in state:
                ring, violations = entry
                values = [a * x + b * y - c for x, y in ring]
                if max(values) <= eps:
                    # Entire piece is at least as close to the site.
                    new_state.append(entry)
                    continue
                changed = True
                if min(values) >= -eps:
                    # Entire piece is closer to the competitor.
                    if violations + 1 <= budget:
                        new_state.append((ring, violations + 1))
                    continue
                closer, closer_area, farther, farther_area = split_ring_halfplane(
                    ring, values, eps, violations + 1 <= budget
                )
                if closer_area > _MIN_PIECE_AREA:
                    new_state.append((closer, violations))
                if farther_area > _MIN_PIECE_AREA:
                    new_state.append((farther, violations + 1))
            i += 1
            if changed:
                self.state = state = new_state
                self._site_radius = None
            elif not self._tail_mode:
                self._tail_mode = True
                return i
        return i

    def _run_vectorized(
        self,
        a_arr: np.ndarray,
        b_arr: np.ndarray,
        c_arr: np.ndarray,
        i: int,
        total: int,
    ) -> int:
        """Bulk-classify competitor blocks against the packed vertex array.

        Returns the index of the next unprocessed competitor; flips back
        to scalar mode when a competitor touches the state (the change
        itself is applied here, from the already-computed row values).
        """
        eps = self.eps
        budget = self.budget
        flat: List[Point] = []
        lengths: List[int] = []
        for entry in self.state:
            flat.extend(entry[0])
            lengths.append(len(entry[0]))
        stacked = np.asarray(flat, dtype=float)
        xs = np.ascontiguousarray(stacked[:, 0])
        ys = np.ascontiguousarray(stacked[:, 1])
        block = 4
        while i < total:
            end = min(i + block, total)
            vals = (
                a_arr[i:end, None] * xs[None, :]
                + b_arr[i:end, None] * ys[None, :]
                - c_arr[i:end, None]
            )
            touched = vals.max(axis=1) > eps
            if not touched.any():
                i = end
                block = min(block * 2, 4096)
                continue
            step = int(np.argmax(touched))
            row_values = vals[step].tolist()
            new_state: List[Tuple[Polygon, int]] = []
            cursor = 0
            for entry, n in zip(self.state, lengths):
                ring, violations = entry
                values = row_values[cursor : cursor + n]
                cursor += n
                if max(values) <= eps:
                    new_state.append(entry)
                    continue
                if min(values) >= -eps:
                    if violations + 1 <= budget:
                        new_state.append((ring, violations + 1))
                    continue
                closer, closer_area, farther, farther_area = split_ring_halfplane(
                    ring, values, eps, violations + 1 <= budget
                )
                if closer_area > _MIN_PIECE_AREA:
                    new_state.append((closer, violations))
                if farther_area > _MIN_PIECE_AREA:
                    new_state.append((farther, violations + 1))
            self.state = new_state
            self._site_radius = None
            self._tail_mode = False
            return i + step + 1
        return i


def dominating_pieces_batch(
    site: Point,
    competitors: np.ndarray,
    area_pieces: Sequence[Polygon],
    k: int,
    eps: float = EPS,
) -> List[Polygon]:
    """One-shot array-native budgeted clipping sweep.

    Bitwise-identical drop-in for ``repro.voronoi.dominating
    .dominating_pieces``; see :class:`ClippingSweep` for how the work is
    vectorized.

    Args:
        site: the site whose region is computed.
        competitors: ``(C, 2)`` competitor positions in the caller's
            order (the sweep re-sorts them nearest-first exactly like
            the scalar path).
        area_pieces: convex decomposition of the target area.
        k: coverage order (>= 1).
        eps: geometric tolerance.

    Returns:
        Convex polygons (lists of ``(x, y)`` tuples) whose union is the
        dominating region, in the same order the scalar sweep produces.
    """
    sweep = ClippingSweep(site, area_pieces, k, eps)
    sweep.extend(competitors)
    return sweep.pieces()
