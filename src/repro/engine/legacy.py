"""The original per-node round computation behind the engine protocol.

This is, verbatim, the region loop ``LaacadRunner`` used to inline:
every alive node independently runs either the exact global computation
(with the Lemma-1 pre-filter) or the Algorithm-2 expanding ring.  It is
kept as the reference backend: the equivalence suite asserts the
batched engine reproduces its results bitwise.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.engine.base import RoundEngine, register_engine
from repro.voronoi.dominating import DominatingRegion, compute_dominating_region


@register_engine
class LegacyRoundEngine(RoundEngine):
    """Scalar per-node reference backend."""

    name = "legacy"

    def compute_regions(self) -> Tuple[Dict[int, DominatingRegion], int]:
        # Lazy import: see the matching note in ``repro.engine.batch``.
        from repro.core.dominating import localized_dominating_region

        regions: Dict[int, DominatingRegion] = {}
        max_hops = 0
        network = self.network
        config = self.config
        alive = network.alive_nodes()
        if config.use_localized:
            for node in alive:
                computation = localized_dominating_region(
                    network,
                    node.node_id,
                    config.k,
                    ring_granularity=config.ring_granularity,
                    circle_check_samples=config.circle_check_samples,
                )
                regions[node.node_id] = computation.region
                max_hops = max(max_hops, computation.hops)
        else:
            positions = {n.node_id: n.position for n in alive}
            for node in alive:
                others = [p for j, p in positions.items() if j != node.node_id]
                regions[node.node_id] = compute_dominating_region(
                    node.position,
                    others,
                    network.region,
                    config.k,
                    prefilter=config.prefilter,
                )
        return regions, max_hops
