"""Preallocated piece emission and lazy region materialisation.

The sparse engines produce region geometry as flat CSR-style vertex
arrays (``clip_cells_batch``'s output format).  Historically the
centralized engine copied those arrays into per-node Python lists as
each node finished its expanding-radius search (``_stash_pieces``) — a
pure-Python loop that cost ~3 s at N=50k.  This module replaces that
bookkeeping with array-native building blocks shared by both sparse
backends:

* :class:`PieceAccumulator` — collects the *frozen* pieces of every
  finishing iteration as flat array chunks and, once at the very end,
  regroups them by owner into one CSR block (a stable argsort keeps
  each owner's discovery order, since an owner finishes exactly once);
* :func:`materialize_pieces` — the single flat-arrays → Python-polygon
  conversion, run once per round at most;
* :class:`LazyRegions` — a regions dict whose materialisation is
  deferred to the first read, keeping the conversion off the per-round
  critical path entirely (the protocol/deployer hot loops only consume
  the vectorised summaries; polygons are read by ``result()`` and the
  compat agent surface).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.jit_kernels import ragged_indices
from repro.geometry.primitives import Point
from repro.obs import metrics as _metrics

__all__ = ["LazyRegions", "PieceAccumulator", "materialize_pieces"]

#: Pool telemetry (process-wide): freezes are `extend` calls that grew
#: the pool (one per finishing expanding-radius iteration with output),
#: pieces the total frozen piece count.  Incremented per iteration, not
#: per piece, so the counters stay off the per-item hot path.
_POOL_FREEZES = _metrics.counter(
    "repro_piece_pool_freezes_total",
    "Piece-pool freeze events (iterations that emitted finished pieces)",
)
_POOL_PIECES = _metrics.counter(
    "repro_piece_pool_pieces_total",
    "Region pieces frozen into the preallocated piece pools",
)

Polygon = List[Point]

#: Finalised emission block: ``(vert_x, vert_y, piece_indptr,
#: piece_owner, vert_indptr)`` — pieces grouped by ascending owner row,
#: plus the per-owner flat-vertex index (``vert_indptr`` of length
#: ``n_rows + 1``).
EmittedPieces = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class PieceAccumulator:
    """Frozen-piece sink for the expanding-radius loop.

    Each call to :meth:`extend` appends one iteration's finished pieces
    (already-gathered vertex arrays, per-piece vertex counts, and the
    owning node row of each piece); :meth:`finalize` concatenates the
    chunks and regroups by owner.  Because every owner finishes in
    exactly one iteration and pieces within an iteration arrive in clip
    output order, the stable owner sort reproduces the historic
    owner-then-discovery piece order exactly.
    """

    def __init__(self) -> None:
        self._vx: List[np.ndarray] = []
        self._vy: List[np.ndarray] = []
        self._counts: List[np.ndarray] = []
        self._owners: List[np.ndarray] = []

    def extend(
        self,
        vx: np.ndarray,
        vy: np.ndarray,
        counts: np.ndarray,
        owners: np.ndarray,
    ) -> None:
        """Append pieces: flat vertices, per-piece counts, per-piece owner rows."""
        if counts.size == 0:
            return
        _POOL_FREEZES.inc()
        _POOL_PIECES.inc(int(counts.size))
        self._vx.append(vx)
        self._vy.append(vy)
        self._counts.append(np.asarray(counts, dtype=np.int64))
        self._owners.append(np.asarray(owners, dtype=np.int64))

    def extend_csr(
        self,
        vx: np.ndarray,
        vy: np.ndarray,
        piece_indptr: np.ndarray,
        owners: np.ndarray,
        rows: Optional[np.ndarray] = None,
    ) -> None:
        """Append pieces straight from ``clip_cells_batch`` CSR output.

        ``owners[p]`` is the owning node row of piece ``p``.  With
        ``rows`` given, only those piece rows are appended (one ragged
        gather); otherwise the arrays are appended as-is, with no
        materialisation at all.
        """
        counts = np.diff(piece_indptr)
        if rows is None:
            self.extend(vx, vy, counts, owners)
            return
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        sub_counts = counts[rows]
        gidx = ragged_indices(piece_indptr[:-1][rows], sub_counts)
        self.extend(vx[gidx], vy[gidx], sub_counts, owners[rows])

    def finalize(self, n_rows: int) -> EmittedPieces:
        """Regroup every emitted piece by ascending owner row."""
        if not self._counts:
            return (
                np.zeros(0),
                np.zeros(0),
                np.zeros(1, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(n_rows + 1, dtype=np.int64),
            )
        counts = np.concatenate(self._counts)
        owners = np.concatenate(self._owners)
        vx = np.concatenate(self._vx)
        vy = np.concatenate(self._vy)
        self._vx = []
        self._vy = []
        self._counts = []
        self._owners = []
        order = np.argsort(owners, kind="stable")
        starts = np.cumsum(counts) - counts
        gidx = ragged_indices(starts[order], counts[order])
        pc = counts[order]
        piece_owner = owners[order]
        piece_indptr = np.concatenate(([0], np.cumsum(pc))).astype(np.int64)
        vert_counts = np.zeros(n_rows, dtype=np.int64)
        np.add.at(vert_counts, piece_owner, pc)
        vert_indptr = np.concatenate(([0], np.cumsum(vert_counts))).astype(np.int64)
        return vx[gidx], vy[gidx], piece_indptr, piece_owner, vert_indptr


def materialize_pieces(
    vx: np.ndarray,
    vy: np.ndarray,
    piece_indptr: np.ndarray,
    piece_owner: np.ndarray,
    n_rows: int,
) -> List[List[Polygon]]:
    """Convert CSR piece arrays into per-row Python polygon lists.

    The one place flat geometry becomes Python objects; every caller
    reaches it at most once per round (and lazily, via
    :class:`LazyRegions`, not on the round's critical path).
    """
    pieces_per_row: List[List[Polygon]] = [[] for _ in range(n_rows)]
    if piece_owner.shape[0] == 0:
        return pieces_per_row
    vx_list = vx.tolist()
    vy_list = vy.tolist()
    indptr = piece_indptr.tolist()
    for p, owner in enumerate(piece_owner.tolist()):
        s = indptr[p]
        e = indptr[p + 1]
        pieces_per_row[owner].append(list(zip(vx_list[s:e], vy_list[s:e])))
    return pieces_per_row


class LazyRegions(dict):
    """A regions dict materialised on first read access.

    The per-round hot paths only consume the vectorised summaries
    (centers, displacements, proposed targets); the region *polygons*
    are read by ``result()`` at the very end and by the compat agent
    surface.  Deferring the flat-array → Python-piece conversion to the
    first read keeps it off the per-round critical path.
    """

    def __init__(self, builder: Optional[Callable[[], Dict]] = None) -> None:
        super().__init__()
        self._builder = builder

    def _ensure(self) -> None:
        builder = self._builder
        if builder is not None:
            self._builder = None
            super().update(builder())

    def __getitem__(self, key):
        self._ensure()
        return super().__getitem__(key)

    def __iter__(self):
        self._ensure()
        return super().__iter__()

    def __len__(self):
        self._ensure()
        return super().__len__()

    def __contains__(self, key):
        self._ensure()
        return super().__contains__(key)

    def __eq__(self, other):
        self._ensure()
        return super().__eq__(other)

    __hash__ = None

    def __repr__(self):
        self._ensure()
        return super().__repr__()

    def get(self, key, default=None):
        self._ensure()
        return super().get(key, default)

    def keys(self):
        self._ensure()
        return super().keys()

    def values(self):
        self._ensure()
        return super().values()

    def items(self):
        self._ensure()
        return super().items()

    def __reduce__(self):
        self._ensure()
        return (dict, (dict(self),))
