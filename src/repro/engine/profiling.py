"""Per-stage timing hooks for the sparse engines (``REPRO_PROFILE``).

Squeezing the sparse tier has so far required ad-hoc cProfile sessions;
this module makes the stage breakdown a first-class, always-available
observable.  With ``REPRO_PROFILE=1`` in the environment, the sparse
engines time their internal stages (query / candidates / clip / emit /
summary on the centralized path; gather / circle_check / clip / summary
on the distributed path) and attach a ``{stage: seconds}`` dict to the
round result's ``profile`` field; ``benchmarks/export_bench.py
--profile`` prints the breakdown for the acceptance workloads.

:class:`StageTimer` is a thin adapter over :mod:`repro.obs.trace`
spans: every stage entry opens a span named after the stage, so a
traced run (``REPRO_TRACE`` / ``--trace-out``) sees the same stage
boundaries as the profile dict, and the profile accumulates the span's
measured duration — one clock, two projections.  The ``REPRO_PROFILE``
semantics are unchanged: the dict accumulates across re-entered stages
and ``result()`` returns ``None`` when the knob is off.

When both knobs are off (the default) the per-stage overhead is one
attribute check plus the tracing module-global check, so the hooks can
stay on the hot path permanently — the contract is enforced by
``benchmarks/export_bench.py --check-overhead``.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Optional

from repro.obs import trace as _trace

__all__ = [
    "PROFILE_ENV",
    "StageTimer",
    "profile_meta",
    "profile_stages",
    "profiling_enabled",
]

#: Environment knob: any value but ``""``/``"0"`` enables stage timing.
PROFILE_ENV = "REPRO_PROFILE"


def profiling_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` asks for per-stage timings."""
    return os.environ.get(PROFILE_ENV, "0") not in ("", "0")


def profile_stages(profile: Optional[Dict[str, object]]) -> Dict[str, float]:
    """The ``{stage: seconds}`` entries of a profile dict, ``meta`` skipped.

    The one implementation of the "skip the ``meta`` key" convention:
    :meth:`StageTimer.result` attaches the execution context (kernel
    tier, worker count) under ``"meta"``, so every consumer iterating
    stages — the bench ``--profile`` printer, ``--profile-out`` JSON,
    efficiency reports — must come through here instead of re-filtering.
    """
    return {
        name: secs
        for name, secs in (profile or {}).items()
        if name != "meta"
    }


def profile_meta(profile: Optional[Dict[str, object]]) -> Dict[str, object]:
    """The ``meta`` sub-dict of a profile (``{}`` when absent)."""
    meta = (profile or {}).get("meta") or {}
    return dict(meta)


class StageTimer:
    """Accumulates wall-clock seconds per named stage.

    A stage may be entered repeatedly (e.g. once per expanding-radius
    iteration); its times accumulate.  ``result()`` returns the dict to
    attach to the round result, or ``None`` when profiling is off — so
    the round dataclasses carry no profiling payload by default.
    """

    __slots__ = ("enabled", "_acc")

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = profiling_enabled() if enabled is None else enabled
        self._acc: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str):
        if _trace._ACTIVE is None:
            if not self.enabled:
                yield
                return
            start = time.perf_counter()
            try:
                yield
            finally:
                self._acc[name] = self._acc.get(name, 0.0) + (
                    time.perf_counter() - start
                )
            return
        # Traced path: the span is the clock; the profile dict (when
        # REPRO_PROFILE is also on) accumulates the span's duration so
        # both projections report the identical measurement.
        handle = _trace.span(name)
        handle.__enter__()
        try:
            yield
        finally:
            handle.__exit__(None, None, None)
            if self.enabled:
                self._acc[name] = self._acc.get(name, 0.0) + handle.duration

    def result(self, **meta: object) -> Optional[Dict[str, object]]:
        """The accumulated ``{stage: seconds}`` dict, or ``None`` when off.

        Keyword arguments are attached under a ``"meta"`` sub-dict —
        the engines record the execution context the timings were
        measured under (kernel ``tier``, worker ``threads``), so a
        profile is self-describing when exported or compared across
        configurations.  Consumers iterating stages must skip the
        ``"meta"`` key (use :func:`profile_stages`).
        """
        if not self.enabled:
            return None
        out: Dict[str, object] = dict(self._acc)
        if meta:
            out["meta"] = dict(meta)
        return out
