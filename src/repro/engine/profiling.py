"""Per-stage timing hooks for the sparse engines (``REPRO_PROFILE``).

Squeezing the sparse tier has so far required ad-hoc cProfile sessions;
this module makes the stage breakdown a first-class, always-available
observable.  With ``REPRO_PROFILE=1`` in the environment, the sparse
engines time their internal stages (query / candidates / clip / emit /
summary on the centralized path; gather / circle_check / clip / summary
on the distributed path) and attach a ``{stage: seconds}`` dict to the
round result's ``profile`` field; ``benchmarks/export_bench.py
--profile`` prints the breakdown for the acceptance workloads.

When the knob is off (the default) the timer degrades to a no-op whose
per-stage overhead is one attribute check, so the hooks can stay on the
hot path permanently.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Optional

__all__ = ["PROFILE_ENV", "StageTimer", "profiling_enabled"]

#: Environment knob: any value but ``""``/``"0"`` enables stage timing.
PROFILE_ENV = "REPRO_PROFILE"


def profiling_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` asks for per-stage timings."""
    return os.environ.get(PROFILE_ENV, "0") not in ("", "0")


class StageTimer:
    """Accumulates wall-clock seconds per named stage.

    A stage may be entered repeatedly (e.g. once per expanding-radius
    iteration); its times accumulate.  ``result()`` returns the dict to
    attach to the round result, or ``None`` when profiling is off — so
    the round dataclasses carry no profiling payload by default.
    """

    __slots__ = ("enabled", "_acc")

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = profiling_enabled() if enabled is None else enabled
        self._acc: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str):
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self._acc[name] = self._acc.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def result(self, **meta: object) -> Optional[Dict[str, object]]:
        """The accumulated ``{stage: seconds}`` dict, or ``None`` when off.

        Keyword arguments are attached under a ``"meta"`` sub-dict —
        the engines record the execution context the timings were
        measured under (kernel ``tier``, worker ``threads``), so a
        profile is self-describing when exported or compared across
        configurations.  Consumers iterating stages must skip the
        ``"meta"`` key.
        """
        if not self.enabled:
            return None
        out: Dict[str, object] = dict(self._acc)
        if meta:
            out["meta"] = dict(meta)
        return out
