"""The sparse (grid-bucketed) round engine: no N×N anything.

The batched engine's one remaining scalability wall is the dense
pairwise distance matrix (O(N²) time *and* memory) plus its per-node
Python sweep loop.  The LAACAD protocol is strictly local — Lemma 1
bounds every node's relevant competitors to an expanding disk — so this
engine replaces both:

* candidate competitors come from :class:`~repro.network.neighbors
  .SpatialGrid` bucket queries (:meth:`query_radius_many`, CSR output),
  never from a dense matrix; the first query doubles as the
  ``k``-th-nearest pre-pass (the same sorted candidate panel yields
  both the Lemma-1 start radius and the first competitor sets, so no
  separate expanding-radius kth sweep runs);
* the Lemma-1 expanding-radius loop runs *level-synchronously*: all
  nodes still searching at radius ``rho`` are re-clipped together by
  one :func:`~repro.engine.sparse_kernels.clip_cells_batch` call, and
  nodes whose region fits inside the half-radius disk retire from the
  loop;
* finished pieces are emitted straight into flat CSR arrays
  (:class:`~repro.engine.pieces.PieceAccumulator`) and the Python
  polygon lists are materialised **lazily, once** on first region read
  (:class:`~repro.engine.pieces.LazyRegions`) — there is no per-node
  Python bookkeeping anywhere in the loop;
* the per-round summary (Chebyshev centers, circumradii, displacements)
  is computed by :func:`~repro.engine.sparse_kernels.mec_batch` over
  flat vertex arrays instead of one scalar Welzl call per node.

With ``REPRO_PROFILE=1`` the round result carries a per-stage timing
dict (see :mod:`repro.engine.profiling`).

Numerical contract: **tolerance, not bitwise** (see DESIGN.md "Sparse
engine tier").  Results agree with the batched engine to well within
1e-9 on positions, ranges and areas, and the convergence behaviour
(round counts) is identical on the reference scenarios, but individual
floats may differ in the last bits because clipping is fused across
nodes and centers come from a different (equally minimal) enclosing
circle search.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.engine.arrays import NodeArrayState
from repro.engine.base import EngineRound, register_engine, summarize_regions
from repro.engine.batch import BatchedRoundEngine
from repro.engine.jit_kernels import kernel_tier, ragged_indices, segment_ids
from repro.engine.kernels import chunk_budget_bytes, kernel_threads
from repro.engine.pieces import LazyRegions, PieceAccumulator, materialize_pieces
from repro.engine.profiling import StageTimer
from repro.engine.sparse_kernels import clip_cells_batch, mec_batch
from repro.geometry.primitives import EPS
from repro.network.neighbors import SpatialGrid
from repro.obs import metrics as _metrics
from repro.voronoi.dominating import DominatingRegion

#: Candidate volume actually fetched from the spatial grid, summed per
#: query wave — the series that shows when a workload's density pushes
#: the expanding-radius search toward quadratic candidate counts.
_GRID_CANDIDATES = _metrics.counter(
    "repro_grid_candidates_total",
    "Candidate neighbors returned by spatial-grid radius queries",
)

#: Flat per-node region geometry stashed between ``compute_regions`` and
#: ``compute_round``: (vert_x, vert_y, per-node indptr, alive ids).
_FlatRegions = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


@register_engine
class SparseRoundEngine(BatchedRoundEngine):
    """Grid-bucketed, level-synchronous round computation."""

    name = "sparse"

    def __init__(self, network, config) -> None:
        super().__init__(network, config)
        self._flat_regions: Optional[_FlatRegions] = None
        self._stage_timer: Optional[StageTimer] = None

    # ------------------------------------------------------------------
    def compute_regions(self) -> Tuple[Dict[int, DominatingRegion], int]:
        self._flat_regions = None
        self._stage_timer = StageTimer()
        if self.config.use_localized:
            return self._compute_regions_localized()
        return self._compute_regions_sparse()

    def compute_round(self) -> EngineRound:
        regions, max_hops = self.compute_regions()
        if self._flat_regions is None:
            return summarize_regions(self.network, regions, max_hops)
        return self._summarize_vectorized(regions, max_hops)

    # ------------------------------------------------------------------
    # Region computation
    # ------------------------------------------------------------------
    def _compute_regions_sparse(self) -> Tuple[Dict[int, DominatingRegion], int]:
        network = self.network
        config = self.config
        k = config.k
        timer = self._stage_timer
        area = network.region
        area_pieces = area.convex_pieces()
        diameter = area.diameter

        state = NodeArrayState.from_network(network)
        alive_ids = state.alive_node_ids()
        positions = state.alive_positions()
        count = positions.shape[0]
        if count == 0:
            self._flat_regions = (
                np.zeros(0),
                np.zeros(0),
                np.zeros(1, dtype=np.int64),
                alive_ids,
            )
            return {}, 0

        if count == 1 or not config.prefilter:
            return self._compute_regions_exhaustive(
                alive_ids, positions, area_pieces, k
            )

        px = np.ascontiguousarray(positions[:, 0])
        py = np.ascontiguousarray(positions[:, 1])
        # Cell size ~ mean node spacing: radius-r queries then scan
        # O((r/cell)^2) buckets of O(1) points each.
        cell = max(diameter / max(math.sqrt(count), 1.0), 1e-9)
        grid = SpatialGrid(positions, cell_size=cell)
        need = min(k, count - 1)
        # The scalar schedule (initial_prefilter_radius, then doubling)
        # floors the start radius at 5% of the diameter — a constant
        # radius that at high density sweeps in O(N) competitors per
        # node and turns the whole pass quadratic.  Cap the floor at a
        # few grid cells (~ mean spacing) so the start population stays
        # O(1) at every N; a start that proves too small only costs
        # doubling iterations, never changes the Lemma-1 fixed point.
        floor = max(min(diameter * 0.05, 4.0 * cell), EPS * 10)
        max_needed = diameter * 2.0 + 1.0

        emit = PieceAccumulator()
        used = np.zeros(count, dtype=np.int64)
        search_radius = np.zeros(count)
        # Per-node search radius: starts at the floor and is raised to
        # ``max(2 * kth-nearest, floor)`` as soon as a query disk holds
        # enough candidates to read the kth-nearest distance off the
        # sorted panel — the first query serves as the kth pre-pass.
        rho = np.full(count, floor)
        kth_known = np.zeros(count, dtype=bool)
        pending = np.arange(count, dtype=np.int64)
        while pending.size:
            qrad = rho[pending].copy()
            with timer.stage("query"):
                cand, cand_indptr = grid.query_radius_many(
                    positions[pending], qrad
                )
            with timer.stage("candidates"):
                counts_all = np.diff(cand_indptr)
                total_cand = cand.shape[0]
                _GRID_CANDIDATES.inc(total_cand)
                owners = segment_ids(counts_all, total_cand)
                sub_px = px[pending]
                sub_py = py[pending]
                dx = px[cand] - sub_px[owners]
                dy = py[cand] - sub_py[owners]
                dist = np.hypot(dx, dy)
                dist_sq = dx * dx + dy * dy
                # Nearest-first within each owner, stable on ties (the
                # sweep's competitor order).  ``owners`` is already
                # ascending, so it is its own sorted image.
                order = np.lexsort((dist_sq, owners))
                cand = cand[order]
                dist = dist[order]

            unknown = ~kth_known[pending]
            if unknown.any():
                with timer.stage("kth"):
                    rows_u = np.nonzero(unknown)[0]
                    enough = counts_all[rows_u] >= need + 1
                    rows_e = rows_u[enough]
                    if rows_e.size:
                        # The disk holds >= need+1 points (self incl.),
                        # so the need+1 globally nearest are all inside
                        # it and the kth distance reads straight off
                        # the sorted panel.
                        kth = dist[cand_indptr[rows_e] + need]
                        rho[pending[rows_e]] = np.maximum(2.0 * kth, floor)
                        kth_known[pending[rows_e]] = True
                    rho[pending[rows_u[~enough]]] *= 2.0

            # A node can clip this iteration iff its kth-derived rho is
            # known and covered by the radius actually queried; other
            # nodes requery at their grown rho next iteration.
            clippable = kth_known[pending] & (rho[pending] <= qrad)
            act = np.nonzero(clippable)[0]
            if act.size == 0:
                continue
            act_nodes = pending[act]
            rho_act = rho[act_nodes]

            with timer.stage("candidates"):
                if act.size == pending.size:
                    sel_cand = cand
                    sel_dist = dist
                    sel_owner = owners
                else:
                    gidx = ragged_indices(cand_indptr[act], counts_all[act])
                    sel_cand = cand[gidx]
                    sel_dist = dist[gidx]
                    sel_owner = segment_ids(counts_all[act], gidx.shape[0])
                # The pre-filter is *strict* (`dist < rho`, self
                # excluded) — the grid's inclusive boundary slack is
                # filtered out here so the competitor sets match the
                # batched engine's ``select_competitors`` exactly.
                keep = (sel_dist < rho_act[sel_owner]) & (
                    sel_cand != act_nodes[sel_owner]
                )
                comp = sel_cand[keep]
                comp_counts = np.bincount(sel_owner[keep], minlength=act.size)
                comp_indptr = np.concatenate(
                    ([0], np.cumsum(comp_counts))
                ).astype(np.int64)
            with timer.stage("clip"):
                vx, vy, piece_indptr, piece_owner = clip_cells_batch(
                    positions[act_nodes], px[comp], py[comp], comp_indptr,
                    area_pieces, k,
                )

            with timer.stage("finish"):
                vert_counts = np.diff(piece_indptr)
                total_verts = vx.shape[0]
                site_rad = np.zeros(act.size)
                if total_verts:
                    vert_owner = piece_owner[
                        segment_ids(vert_counts, total_verts)
                    ]
                    dist_v = np.hypot(
                        vx - px[act_nodes][vert_owner],
                        vy - py[act_nodes][vert_owner],
                    )
                    group_start = np.nonzero(
                        np.concatenate(([True], vert_owner[1:] != vert_owner[:-1]))
                    )[0]
                    site_rad[vert_owner[group_start]] = np.maximum.reduceat(
                        dist_v, group_start
                    )
                # Lemma-1 termination: the region fits in the rho/2
                # disk, so no competitor beyond rho can clip it.
                finished = (site_rad <= rho_act / 2.0 + EPS) | (
                    rho_act >= max_needed
                )
                fin_rows = np.nonzero(finished)[0]
                if fin_rows.size:
                    fin_piece = finished[piece_owner]
                    emit.extend_csr(
                        vx, vy, piece_indptr, act_nodes[piece_owner],
                        rows=None if fin_piece.all() else np.nonzero(fin_piece)[0],
                    )
                    used[act_nodes[fin_rows]] = comp_counts[fin_rows]
                    search_radius[act_nodes[fin_rows]] = rho_act[fin_rows]
                rho[act_nodes[~finished]] *= 2.0
                drop = np.zeros(pending.size, dtype=bool)
                drop[act[finished]] = True
                pending = pending[~drop]

        with timer.stage("emit"):
            evx, evy, piece_indptr, piece_owner, vert_indptr = emit.finalize(
                count
            )
            self._flat_regions = (evx, evy, vert_indptr, alive_ids)
        return (
            self._lazy_regions(
                evx, evy, piece_indptr, piece_owner, alive_ids, px, py, k,
                used, search_radius,
            ),
            0,
        )

    def _lazy_regions(
        self, vx, vy, piece_indptr, piece_owner, alive_ids, px, py, k,
        used, search_radius,
    ) -> Dict[int, DominatingRegion]:
        """Regions dict whose Python polygons build on first read."""
        count = alive_ids.shape[0]

        def build() -> Dict[int, DominatingRegion]:
            pieces_per_row = materialize_pieces(
                vx, vy, piece_indptr, piece_owner, count
            )
            built: Dict[int, DominatingRegion] = {}
            for row in range(count):
                built[int(alive_ids[row])] = DominatingRegion(
                    site=(float(px[row]), float(py[row])),
                    k=k,
                    pieces=pieces_per_row[row],
                    competitors_used=int(used[row]),
                    search_radius=float(search_radius[row]),
                )
            return built

        return LazyRegions(build)

    # ------------------------------------------------------------------
    def _compute_regions_exhaustive(
        self, alive_ids, positions, area_pieces, k
    ) -> Tuple[Dict[int, DominatingRegion], int]:
        """``prefilter=False`` path: every competitor, chunked by rows.

        Still avoids one big N×N allocation: candidate rows are
        processed in blocks sized by :func:`chunk_budget_bytes`, each
        block building only a (block, N) distance panel.
        """
        count = positions.shape[0]
        px = np.ascontiguousarray(positions[:, 0])
        py = np.ascontiguousarray(positions[:, 1])
        emit = PieceAccumulator()
        # ~6 transient float64 panels of width N per block row.
        block_rows = max(1, int(chunk_budget_bytes() // max(count * 8 * 6, 1)))
        for start in range(0, count, block_rows):
            stop = min(start + block_rows, count)
            rows = np.arange(start, stop, dtype=np.int64)
            dx = px[None, :] - px[rows, None]
            dy = py[None, :] - py[rows, None]
            dist_sq = dx * dx + dy * dy
            dist_sq[np.arange(rows.size), rows] = np.inf
            order = np.argsort(dist_sq, axis=1, kind="stable")[:, : max(count - 1, 0)]
            flat = order.ravel()
            comp_indptr = (
                np.arange(rows.size + 1, dtype=np.int64) * max(count - 1, 0)
            )
            vx, vy, piece_indptr, piece_owner = clip_cells_batch(
                positions[rows], px[flat], py[flat], comp_indptr, area_pieces, k
            )
            emit.extend_csr(vx, vy, piece_indptr, rows[piece_owner])
        evx, evy, piece_indptr, piece_owner, vert_indptr = emit.finalize(count)
        self._flat_regions = (evx, evy, vert_indptr, alive_ids)
        used = np.full(count, count - 1, dtype=np.int64)
        search_radius = np.full(count, math.inf)
        return (
            self._lazy_regions(
                evx, evy, piece_indptr, piece_owner, alive_ids, px, py, k,
                used, search_radius,
            ),
            0,
        )

    # ------------------------------------------------------------------
    # Vectorized per-round summary
    # ------------------------------------------------------------------
    def _summarize_vectorized(self, regions, max_hops) -> EngineRound:
        timer = self._stage_timer
        with timer.stage("summary"):
            flat_x, flat_y, indptr, alive_ids = self._flat_regions
            self._flat_regions = None
            network = self.network
            count = alive_ids.shape[0]
            pos = np.asarray(
                [network.node(int(i)).position for i in alive_ids], dtype=float
            ).reshape(count, 2)
            cx, cy, radius = mec_batch(flat_x, flat_y, indptr)
            counts = np.diff(indptr)
            empty = counts == 0
            # Empty region: the update is a no-op anchored at the site.
            cx = np.where(empty, pos[:, 0] if count else cx, cx)
            cy = np.where(empty, pos[:, 1] if count else cy, cy)
            radius = np.where(empty, 0.0, radius)
            ranges = np.zeros(count)
            if flat_x.size:
                vert_owner = segment_ids(counts, flat_x.shape[0])
                dist_v = np.hypot(
                    flat_x - pos[vert_owner, 0], flat_y - pos[vert_owner, 1]
                )
                group_start = np.nonzero(
                    np.concatenate(([True], vert_owner[1:] != vert_owner[:-1]))
                )[0]
                ranges[vert_owner[group_start]] = np.maximum.reduceat(
                    dist_v, group_start
                )
            displacements = np.hypot(pos[:, 0] - cx, pos[:, 1] - cy)
            centers = {
                int(alive_ids[row]): (float(cx[row]), float(cy[row]))
                for row in range(count)
            }
        return EngineRound(
            regions=regions,
            centers=centers,
            circumradii=radius.tolist(),
            ranges_from_position=ranges.tolist(),
            displacements=displacements.tolist(),
            max_ring_hops=max_hops,
            profile=timer.result(threads=kernel_threads(), tier=kernel_tier()),
        )
