"""The sparse (grid-bucketed) round engine: no N×N anything.

The batched engine's one remaining scalability wall is the dense
pairwise distance matrix (O(N²) time *and* memory) plus its per-node
Python sweep loop.  The LAACAD protocol is strictly local — Lemma 1
bounds every node's relevant competitors to an expanding disk — so this
engine replaces both:

* candidate competitors come from :class:`~repro.network.neighbors
  .SpatialGrid` bucket queries (:meth:`query_radius_many`, CSR output),
  never from a dense matrix;
* the Lemma-1 expanding-radius loop runs *level-synchronously*: all
  nodes still searching at radius ``rho`` are re-clipped together by
  one :func:`~repro.engine.sparse_kernels.clip_cells_batch` call, and
  nodes whose region fits inside the half-radius disk retire from the
  loop;
* the per-round summary (Chebyshev centers, circumradii, displacements)
  is computed by :func:`~repro.engine.sparse_kernels.mec_batch` over
  flat vertex arrays instead of one scalar Welzl call per node.

Numerical contract: **tolerance, not bitwise** (see DESIGN.md "Sparse
engine tier").  Results agree with the batched engine to well within
1e-9 on positions, ranges and areas, and the convergence behaviour
(round counts) is identical on the reference scenarios, but individual
floats may differ in the last bits because clipping is fused across
nodes and centers come from a different (equally minimal) enclosing
circle search.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.arrays import NodeArrayState
from repro.engine.base import EngineRound, register_engine, summarize_regions
from repro.engine.batch import BatchedRoundEngine
from repro.engine.kernels import chunk_budget_bytes
from repro.engine.sparse_kernels import clip_cells_batch, mec_batch
from repro.geometry.primitives import EPS
from repro.network.neighbors import SpatialGrid
from repro.voronoi.dominating import DominatingRegion

#: Flat per-node region geometry stashed between ``compute_regions`` and
#: ``compute_round``: (vert_x, vert_b, per-node indptr, alive ids).
_FlatRegions = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


@register_engine
class SparseRoundEngine(BatchedRoundEngine):
    """Grid-bucketed, level-synchronous round computation."""

    name = "sparse"

    def __init__(self, network, config) -> None:
        super().__init__(network, config)
        self._flat_regions: Optional[_FlatRegions] = None

    # ------------------------------------------------------------------
    def compute_regions(self) -> Tuple[Dict[int, DominatingRegion], int]:
        self._flat_regions = None
        if self.config.use_localized:
            return self._compute_regions_localized()
        return self._compute_regions_sparse()

    def compute_round(self) -> EngineRound:
        regions, max_hops = self.compute_regions()
        if self._flat_regions is None:
            return summarize_regions(self.network, regions, max_hops)
        return self._summarize_vectorized(regions, max_hops)

    # ------------------------------------------------------------------
    # Region computation
    # ------------------------------------------------------------------
    def _compute_regions_sparse(self) -> Tuple[Dict[int, DominatingRegion], int]:
        network = self.network
        config = self.config
        k = config.k
        area = network.region
        area_pieces = area.convex_pieces()
        diameter = area.diameter

        state = NodeArrayState.from_network(network)
        alive_ids = state.alive_node_ids()
        positions = state.alive_positions()
        count = positions.shape[0]
        if count == 0:
            self._flat_regions = (
                np.zeros(0),
                np.zeros(0),
                np.zeros(1, dtype=np.int64),
                alive_ids,
            )
            return {}, 0

        if count == 1 or not config.prefilter:
            return self._compute_regions_exhaustive(
                alive_ids, positions, area_pieces, k
            )

        px = np.ascontiguousarray(positions[:, 0])
        py = np.ascontiguousarray(positions[:, 1])
        # Cell size ~ mean node spacing: radius-r queries then scan
        # O((r/cell)^2) buckets of O(1) points each.
        cell = max(diameter / max(math.sqrt(count), 1.0), 1e-9)
        grid = SpatialGrid(positions, cell_size=cell)
        need = min(k, count - 1)
        kth = _kth_nearest_many(grid, px, py, need)
        # The scalar schedule (initial_prefilter_radius, then doubling)
        # floors the start radius at 5% of the diameter — a constant
        # radius that at high density sweeps in O(N) competitors per
        # node and turns the whole pass quadratic.  Cap the floor at a
        # few grid cells (~ mean spacing) so the start population stays
        # O(1) at every N; a start that proves too small only costs
        # doubling iterations, never changes the Lemma-1 fixed point.
        floor = max(min(diameter * 0.05, 4.0 * cell), EPS * 10)
        rho = np.maximum(2.0 * kth, floor)
        max_needed = diameter * 2.0 + 1.0

        vert_parts: List[Optional[np.ndarray]] = [None] * count
        vert_parts_y: List[Optional[np.ndarray]] = [None] * count
        used = np.zeros(count, dtype=np.int64)
        search_radius = np.zeros(count)
        pending = np.arange(count, dtype=np.int64)
        while pending.size:
            sub_px = px[pending]
            sub_py = py[pending]
            cand, cand_indptr = grid.query_radius_many(
                positions[pending], rho[pending]
            )
            owners = np.repeat(
                np.arange(pending.size, dtype=np.int64), np.diff(cand_indptr)
            )
            dx = px[cand] - sub_px[owners]
            dy = py[cand] - sub_py[owners]
            dist = np.hypot(dx, dy)
            # The pre-filter is *strict* (`dist < rho`, self excluded) —
            # the grid's inclusive boundary slack is filtered out here
            # so the competitor sets match the batched engine's
            # ``select_competitors`` exactly.
            keep = (dist < rho[pending][owners]) & (cand != pending[owners])
            cand = cand[keep]
            owners = owners[keep]
            dist_sq = dx[keep] * dx[keep] + dy[keep] * dy[keep]
            # Nearest-first within each owner, stable on ties (the
            # sweep's competitor order).
            order = np.lexsort((dist_sq, owners))
            cand = cand[order]
            counts = np.bincount(owners, minlength=pending.size)
            comp_indptr = np.concatenate(
                ([0], np.cumsum(counts))
            ).astype(np.int64)
            vx, vy, piece_indptr, piece_owner = clip_cells_batch(
                positions[pending], px[cand], py[cand], comp_indptr, area_pieces, k
            )

            site_rad = np.zeros(pending.size)
            vert_counts = np.diff(piece_indptr)
            vert_owner = np.repeat(piece_owner, vert_counts)
            if vx.size:
                dist_v = np.hypot(vx - sub_px[vert_owner], vy - sub_py[vert_owner])
                group_start = np.nonzero(
                    np.concatenate(([True], vert_owner[1:] != vert_owner[:-1]))
                )[0]
                site_rad[vert_owner[group_start]] = np.maximum.reduceat(
                    dist_v, group_start
                )
            # Lemma-1 termination: the region fits in the rho/2 disk, so
            # no competitor beyond rho can clip it.
            finished = (site_rad <= rho[pending] / 2.0 + EPS) | (
                rho[pending] >= max_needed
            )
            fin_rows = np.nonzero(finished)[0]
            if fin_rows.size:
                in_fin = finished[vert_owner]
                fin_vert_owner = vert_owner[in_fin]
                fvx = vx[in_fin]
                fvy = vy[in_fin]
                per_fin = np.bincount(fin_vert_owner, minlength=pending.size)
                starts = np.cumsum(per_fin[fin_rows]) - per_fin[fin_rows]
                for pos, row in enumerate(fin_rows):
                    s = int(starts[pos])
                    e = s + int(per_fin[row])
                    node_row = int(pending[row])
                    vert_parts[node_row] = fvx[s:e]
                    vert_parts_y[node_row] = fvy[s:e]
                used[pending[fin_rows]] = counts[fin_rows]
                search_radius[pending[fin_rows]] = rho[pending[fin_rows]]
                # Also remember per-node piece boundaries for
                # materialisation: stored as ragged offsets below.
                self._stash_pieces(
                    pending, finished, piece_owner, piece_indptr, vx, vy
                )
            still = ~finished
            rho[pending[still]] *= 2.0
            pending = pending[still]

        return self._finalize_regions(
            alive_ids, px, py, vert_parts, vert_parts_y, used, search_radius, k
        )

    # Piece-boundary bookkeeping: regions are materialised as Python
    # polygon lists once at the end, piece by piece.
    def _stash_pieces(self, pending, finished, piece_owner, piece_indptr, vx, vy):
        if not hasattr(self, "_piece_rings"):
            self._piece_rings = {}
        fin_pieces = np.nonzero(finished[piece_owner])[0]
        if fin_pieces.size == 0:
            return
        vxl = vx.tolist()
        vyl = vy.tolist()
        for p in fin_pieces.tolist():
            s = int(piece_indptr[p])
            e = int(piece_indptr[p + 1])
            node_row = int(pending[piece_owner[p]])
            self._piece_rings.setdefault(node_row, []).append(
                list(zip(vxl[s:e], vyl[s:e]))
            )

    def _finalize_regions(
        self, alive_ids, px, py, vert_parts, vert_parts_y, used, search_radius, k
    ) -> Tuple[Dict[int, DominatingRegion], int]:
        count = alive_ids.shape[0]
        piece_rings = getattr(self, "_piece_rings", {})
        regions: Dict[int, DominatingRegion] = {}
        flat_x: List[np.ndarray] = []
        flat_y: List[np.ndarray] = []
        vert_counts = np.zeros(count, dtype=np.int64)
        for row in range(count):
            site = (float(px[row]), float(py[row]))
            pieces = piece_rings.get(row, [])
            regions[int(alive_ids[row])] = DominatingRegion(
                site=site,
                k=k,
                pieces=pieces,
                competitors_used=int(used[row]),
                search_radius=float(search_radius[row]),
            )
            part = vert_parts[row]
            if part is not None and part.size:
                flat_x.append(part)
                flat_y.append(vert_parts_y[row])
                vert_counts[row] = part.shape[0]
        self._piece_rings = {}
        indptr = np.concatenate(([0], np.cumsum(vert_counts))).astype(np.int64)
        self._flat_regions = (
            np.concatenate(flat_x) if flat_x else np.zeros(0),
            np.concatenate(flat_y) if flat_y else np.zeros(0),
            indptr,
            alive_ids,
        )
        return regions, 0

    # ------------------------------------------------------------------
    def _compute_regions_exhaustive(
        self, alive_ids, positions, area_pieces, k
    ) -> Tuple[Dict[int, DominatingRegion], int]:
        """``prefilter=False`` path: every competitor, chunked by rows.

        Still avoids one big N×N allocation: candidate rows are
        processed in blocks sized by :func:`chunk_budget_bytes`, each
        block building only a (block, N) distance panel.
        """
        count = positions.shape[0]
        px = np.ascontiguousarray(positions[:, 0])
        py = np.ascontiguousarray(positions[:, 1])
        regions: Dict[int, DominatingRegion] = {}
        flat_x: List[np.ndarray] = []
        flat_y: List[np.ndarray] = []
        vert_counts = np.zeros(count, dtype=np.int64)
        # ~6 transient float64 panels of width N per block row.
        block_rows = max(1, int(chunk_budget_bytes() // max(count * 8 * 6, 1)))
        for start in range(0, count, block_rows):
            stop = min(start + block_rows, count)
            rows = np.arange(start, stop, dtype=np.int64)
            dx = px[None, :] - px[rows, None]
            dy = py[None, :] - py[rows, None]
            dist_sq = dx * dx + dy * dy
            dist_sq[np.arange(rows.size), rows] = np.inf
            order = np.argsort(dist_sq, axis=1, kind="stable")[:, : max(count - 1, 0)]
            flat = order.ravel()
            comp_indptr = (
                np.arange(rows.size + 1, dtype=np.int64) * max(count - 1, 0)
            )
            vx, vy, piece_indptr, piece_owner = clip_cells_batch(
                positions[rows], px[flat], py[flat], comp_indptr, area_pieces, k
            )
            vxl = vx.tolist()
            vyl = vy.tolist()
            block_pieces: List[List] = [[] for _ in range(rows.size)]
            for p in range(piece_owner.shape[0]):
                s = int(piece_indptr[p])
                e = int(piece_indptr[p + 1])
                block_pieces[int(piece_owner[p])].append(
                    list(zip(vxl[s:e], vyl[s:e]))
                )
            vert_owner = np.repeat(piece_owner, np.diff(piece_indptr))
            for local, row in enumerate(rows.tolist()):
                regions[int(alive_ids[row])] = DominatingRegion(
                    site=(float(px[row]), float(py[row])),
                    k=k,
                    pieces=block_pieces[local],
                    competitors_used=count - 1,
                    search_radius=math.inf,
                )
                mask = vert_owner == local
                n_verts = int(mask.sum())
                if n_verts:
                    flat_x.append(vx[mask])
                    flat_y.append(vy[mask])
                    vert_counts[row] = n_verts
        indptr = np.concatenate(([0], np.cumsum(vert_counts))).astype(np.int64)
        self._flat_regions = (
            np.concatenate(flat_x) if flat_x else np.zeros(0),
            np.concatenate(flat_y) if flat_y else np.zeros(0),
            indptr,
            alive_ids,
        )
        return regions, 0

    # ------------------------------------------------------------------
    # Vectorized per-round summary
    # ------------------------------------------------------------------
    def _summarize_vectorized(self, regions, max_hops) -> EngineRound:
        flat_x, flat_y, indptr, alive_ids = self._flat_regions
        self._flat_regions = None
        network = self.network
        count = alive_ids.shape[0]
        pos = np.asarray(
            [network.node(int(i)).position for i in alive_ids], dtype=float
        ).reshape(count, 2)
        cx, cy, radius = mec_batch(flat_x, flat_y, indptr)
        counts = np.diff(indptr)
        empty = counts == 0
        # Empty region: the update is a no-op anchored at the site.
        cx = np.where(empty, pos[:, 0] if count else cx, cx)
        cy = np.where(empty, pos[:, 1] if count else cy, cy)
        radius = np.where(empty, 0.0, radius)
        ranges = np.zeros(count)
        if flat_x.size:
            vert_owner = np.repeat(np.arange(count, dtype=np.int64), counts)
            dist_v = np.hypot(
                flat_x - pos[vert_owner, 0], flat_y - pos[vert_owner, 1]
            )
            group_start = np.nonzero(
                np.concatenate(([True], vert_owner[1:] != vert_owner[:-1]))
            )[0]
            ranges[vert_owner[group_start]] = np.maximum.reduceat(
                dist_v, group_start
            )
        displacements = np.hypot(pos[:, 0] - cx, pos[:, 1] - cy)
        centers = {
            int(alive_ids[row]): (float(cx[row]), float(cy[row]))
            for row in range(count)
        }
        return EngineRound(
            regions=regions,
            centers=centers,
            circumradii=radius.tolist(),
            ranges_from_position=ranges.tolist(),
            displacements=displacements.tolist(),
            max_ring_hops=max_hops,
        )


def _kth_nearest_many(
    grid: SpatialGrid, px: np.ndarray, py: np.ndarray, need: int
) -> np.ndarray:
    """Distance to the ``need``-th nearest *other* point, per point.

    Expanding-radius batch queries: a point's answer is exact as soon as
    its query disk holds at least ``need + 1`` points (itself included),
    because the ``need+1`` nearest are then all inside the disk.
    """
    count = px.shape[0]
    centers = np.column_stack((px, py))
    kth = np.zeros(count)
    pending = np.arange(count, dtype=np.int64)
    radius = grid.cell_size * max(1.0, math.sqrt(need))
    while pending.size:
        cand, indptr = grid.query_radius_many(centers[pending], radius)
        counts = np.diff(indptr)
        done = counts >= need + 1
        rows = np.nonzero(done)[0]
        if rows.size:
            owners = np.repeat(np.arange(pending.size, dtype=np.int64), counts)
            dist = np.hypot(
                px[cand] - px[pending][owners], py[cand] - py[pending][owners]
            )
            by_owner_dist = np.lexsort((dist, owners))
            dist_sorted = dist[by_owner_dist]
            kth[pending[rows]] = dist_sorted[indptr[rows] + need]
        pending = pending[~done]
        radius *= 2.0
    return kth
