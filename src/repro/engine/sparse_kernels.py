"""Cross-node geometry kernels for the sparse engine tier.

The batched tier (PR 1 / PR 4) vectorises *within* one node — all of a
node's competitors are folded through :class:`~repro.engine.kernels
.ClippingSweep` in array operations — but still visits nodes one at a
time, so a round costs hundreds of microseconds of Python per node no
matter how local the protocol is.  The kernels here vectorise *across*
nodes:

* :func:`clip_cells_batch` runs the budgeted clipping sweep of **every**
  site simultaneously, level by level: at level ``L`` each site's
  ``L``-th nearest competitor clips that site's live pieces, and one
  pass of flat array operations (signed values, per-piece reductions,
  the fused two-sided Sutherland–Hodgman assembly) advances all sites
  at once.  The per-site far-competitor cutoff of ``ClippingSweep`` is
  applied progressively, so a site stops participating as soon as its
  remaining competitors provably cannot clip anything.
* :func:`mec_batch` computes smallest enclosing circles (Chebyshev
  centers) for many ragged vertex sets at once with a farthest-point
  support iteration, falling back to the scalar Welzl routine for the
  rare rows the iteration does not settle.

Both kernels follow the sparse tier's *tolerance* contract (see
DESIGN.md): results agree with the scalar/batched path to well within
1e-9, but are not bitwise identical — the ring dedupe is applied in
whole-array passes rather than the scalar running form, and the MEC
support search may pick a different (equally minimal) support among
near-degenerate candidates.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.engine.jit_kernels import (
    classify_first_events,
    clip_crossing_pieces,
    compress_rings,
    ragged_indices,
    segment_ids,
)
from repro.geometry.primitives import EPS, Point
from repro.geometry.welzl import welzl_disk
from repro.voronoi.dominating import _MIN_PIECE_AREA

Polygon = List[Point]

#: Mirror of ``ClippingSweep._CUTOFF_MARGIN``: the slack added to the
#: current site radius before a competitor is declared a provable no-op.
_CUTOFF_MARGIN = 1e-7

#: Ragged gather indices — the single-cumsum construction from the
#: kernel-tier module (no ``np.repeat``); kept under the historic name
#: for the existing call sites.
_ragged_indices = ragged_indices


#: Ring compression is a kernel seam now (see ``jit_kernels``); the
#: historic name remains for existing call sites and tests.
_compress_rings = compress_rings


def _ring_areas(x: np.ndarray, y: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Absolute shoelace area per ragged ring."""
    nrings = counts.shape[0]
    areas = np.zeros(nrings)
    if x.size == 0 or nrings == 0:
        return areas
    starts = np.cumsum(counts) - counts
    nxt = np.arange(x.size, dtype=np.int64) + 1
    nz = counts > 0
    nxt[starts[nz] + counts[nz] - 1] = starts[nz]
    cross = x * y[nxt] - x[nxt] * y
    areas[np.nonzero(nz)[0]] = np.abs(np.add.reduceat(cross, starts[nz])) / 2.0
    return areas


def _ring_radii(
    x: np.ndarray,
    y: np.ndarray,
    counts: np.ndarray,
    site_x: np.ndarray,
    site_y: np.ndarray,
) -> np.ndarray:
    """Max distance from ``site_*[r]`` to ring ``r``'s vertices (0 when empty)."""
    nrings = counts.shape[0]
    radii = np.zeros(nrings)
    if x.size == 0 or nrings == 0:
        return radii
    ring_of_vert = segment_ids(counts, x.shape[0])
    dist = np.hypot(x - site_x[ring_of_vert], y - site_y[ring_of_vert])
    starts = np.cumsum(counts) - counts
    nz = counts > 0
    radii[np.nonzero(nz)[0]] = np.maximum.reduceat(dist, starts[nz])
    return radii


# ----------------------------------------------------------------------
# Cross-node budgeted clipping sweep
# ----------------------------------------------------------------------
def clip_cells_batch(
    sites: np.ndarray,
    comp_x: np.ndarray,
    comp_y: np.ndarray,
    comp_indptr: np.ndarray,
    area_pieces: Sequence[Polygon],
    k: int,
    eps: float = EPS,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Budgeted clipping sweep of many sites in lock-stepped levels.

    Args:
        sites: ``(M, 2)`` site positions.
        comp_x, comp_y, comp_indptr: CSR competitor lists per site,
            **sorted nearest-first** within each site (ties in any
            stable order; the sweep is order-sensitive only on exact
            distance ties, which the tolerance contract covers).
        area_pieces: convex decomposition of the target area.
        k: coverage order (>= 1).
        eps: geometric tolerance.

    Returns:
        ``(vert_x, vert_y, piece_indptr, piece_owner)`` — ragged convex
        pieces grouped by ascending site row; the pieces of site ``i``
        are those with ``piece_owner == i`` (possibly none, when the
        site dominates no area).  Piece vertex ``j`` of piece ``p``
        lives at ``vert_x[piece_indptr[p] + j]``.
    """
    if k < 1:
        raise ValueError("coverage order k must be >= 1")
    budget = k - 1
    sites = np.asarray(sites, dtype=float).reshape(-1, 2)
    m = sites.shape[0]
    rings = [list(piece) for piece in area_pieces if len(piece) >= 3]
    if m == 0 or not rings:
        return (
            np.zeros(0),
            np.zeros(0),
            np.zeros(1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
    area_vx = np.asarray([v[0] for ring in rings for v in ring], dtype=float)
    area_vy = np.asarray([v[1] for ring in rings for v in ring], dtype=float)
    area_counts = np.asarray([len(ring) for ring in rings], dtype=np.int64)
    pieces_per_site = len(rings)

    # Live state: an append-only vertex pool plus per-piece descriptor
    # arrays (pool start, count, owner, violation budget).  A piece's
    # vertices are written to the pool exactly once — at initialisation
    # or when it is born from a clip — and never move again: retiring a
    # piece or replacing it with its children only touches the (small)
    # descriptor arrays, so a pass costs nothing proportional to the
    # vertices of unchanged pieces.
    vx = np.tile(area_vx, m)
    vy = np.tile(area_vy, m)
    pc = np.tile(area_counts, m)
    po = np.repeat(np.arange(m, dtype=np.int64), pieces_per_site)
    pv = np.zeros(m * pieces_per_site, dtype=np.int64)
    pstart = (np.cumsum(pc) - pc).astype(np.int64)

    sx = np.ascontiguousarray(sites[:, 0])
    sy = np.ascontiguousarray(sites[:, 1])
    # Per-piece circumradius about the owning site, maintained as live
    # state: a piece's vertices only change when the piece is clipped,
    # so recomputing the radius over every live vertex at every level
    # (the previous form) redid the identical hypot/max for the vast
    # untouched majority.  Max is exact and per-vertex hypot is the
    # same expression, so the cached values are bitwise identical.
    owner_of_vert = po[segment_ids(pc, vx.shape[0])]
    dist_v = np.hypot(vx - sx[owner_of_vert], vy - sy[owner_of_vert])
    prad = np.maximum.reduceat(dist_v, pstart)

    pool_used = vx.shape[0]
    pool_cap = max(4 * pool_used, 1024)
    pool_x = np.empty(pool_cap)
    pool_y = np.empty(pool_cap)
    pool_x[:pool_used] = vx
    pool_y[:pool_used] = vy
    ncomp = np.diff(comp_indptr)
    comp_owner = segment_ids(ncomp, comp_x.shape[0])
    cdx = comp_x - sx[comp_owner]
    cdy = comp_y - sy[comp_owner]
    comp_dist_sq = cdx * cdx + cdy * cdy
    # Co-located competitors are never strictly closer: no constraint.
    comp_separated = np.hypot(cdx, cdy) > eps
    # Perpendicular-bisector half-plane coefficients, the exact
    # ``halfplane_coefficient_arrays`` grouping.
    coeff_a = cdx
    coeff_b = cdy
    coeff_c = (
        comp_x * comp_x + comp_y * comp_y - sx[comp_owner] * sx[comp_owner]
        - sy[comp_owner] * sy[comp_owner]
    ) / 2.0

    # Per-piece walk state: each piece consumes its owner's competitor
    # list (sorted nearest-first) at its own pace.  Between two clip
    # events a piece's geometry is unchanged, so a whole block of
    # upcoming competitors can be classified against it in one fused
    # evaluation — every classification up to the piece's *first*
    # non-untouched competitor is exactly what the scalar one-at-a-time
    # sweep would compute, and later entries are simply discarded and
    # re-evaluated on the new geometry next pass.  This collapses the
    # former owner-lock-stepped level loop (one pass per competitor
    # rank, ~30 array dispatches each) into a handful of passes.
    pptr = np.zeros(pc.shape[0], dtype=np.int64)
    # Galloping block size per piece: the nearest competitors of a
    # fresh cell almost all clip it (an event per competitor), so a
    # fixed lookahead would waste most of its evaluations; a piece
    # instead looks 1 competitor ahead after an event and doubles its
    # lookahead (capped) after every event-free pass, so the crossing
    # storm at the head of the competitor list costs no wasted
    # evaluations while settled pieces race through their provably
    # harmless tail.
    pblk = np.ones(pc.shape[0], dtype=np.int64)
    max_block = 64
    fin_start_parts: List[np.ndarray] = []
    fin_pc_parts: List[np.ndarray] = []
    fin_po_parts: List[np.ndarray] = []
    while po.size:
        # Retire pieces whose competitor list is exhausted, plus frozen
        # pieces — those whose next (nearest remaining) competitor lies
        # beyond twice the piece circumradius: its bisector, and every
        # later one's, evaluates strictly negative on all the piece's
        # vertices, so the piece is final.  This per-piece test
        # subsumes the owner-level far-competitor cutoff of the scalar
        # sweep (the owner radius is the max over its pieces), and
        # skipping provable no-op competitors never changes an emitted
        # vertex.
        move = pptr >= ncomp[po]
        live_rows = np.nonzero(~move)[0]
        if live_rows.size:
            next_d_sq = comp_dist_sq[comp_indptr[po[live_rows]] + pptr[live_rows]]
            piece_reach = 2.0 * (prad[live_rows] + _CUTOFF_MARGIN)
            move[live_rows[next_d_sq > piece_reach * piece_reach]] = True
        if move.any():
            mv_sel = np.nonzero(move)[0]
            fin_start_parts.append(pstart[mv_sel])
            fin_pc_parts.append(pc[mv_sel])
            fin_po_parts.append(po[mv_sel])
            live_sel = np.nonzero(~move)[0]
            pstart = pstart[live_sel]
            pc = pc[live_sel]
            po = po[live_sel]
            pv = pv[live_sel]
            prad = prad[live_sel]
            pptr = pptr[live_sel]
            pblk = pblk[live_sel]
            if po.size == 0:
                break

        # Fused classification of each live piece's next (lookahead
        # many) competitors against its current geometry — a kernel
        # seam (``jit_kernels.classify_first_events``) reading the pool
        # and the per-piece walk descriptors directly.  The per-entry
        # bisector coefficients are the same float values as the
        # historic per-owner gather, so the signed extrema (and every
        # decision derived from them) are bitwise unchanged.
        nblk = np.minimum(pblk, ncomp[po] - pptr)
        centry = comp_indptr[po] + pptr
        first_evt, evt_kind = classify_first_events(
            pool_x, pool_y, pstart, pc, centry, nblk,
            coeff_a, coeff_b, coeff_c, comp_separated, eps,
        )
        has_evt = evt_kind != 0
        allout_evt = evt_kind == 1
        cross_evt = evt_kind == 2
        allout_keep_evt = allout_evt & (pv + 1 <= budget)
        allout_drop_evt = allout_evt & ~allout_keep_evt
        # Competitors consumed this pass: everything before the event
        # plus the event itself, or the whole block when none fired
        # (``first_evt == nblk`` then, so one expression covers both).
        ptr_advanced = pptr + first_evt + has_evt
        blk_next = np.where(has_evt, 1, np.minimum(pblk * 2, max_block))
        if not cross_evt.any() and not allout_drop_evt.any():
            pv = pv + allout_keep_evt
            pptr = ptr_advanced
            pblk = blk_next
            continue

        # ---- fused two-sided Sutherland–Hodgman over crossing pieces,
        # the second kernel seam: split every crossing piece by its
        # event bisector, dedupe the children, and hand back compacted
        # rings.  The farther side exists only for pieces that still
        # have clip budget (``pv + 1 <= budget``); once a piece's
        # budget is spent — for k=2, after its very first split — its
        # farther child is discarded unconditionally (count 0).
        cross_pieces_global = np.nonzero(cross_evt)[0]
        evt_cidx = centry[cross_pieces_global] + first_evt[cross_pieces_global]
        want_farther = pv[cross_pieces_global] + 1 <= budget
        clo_x, clo_y, clo_counts, far_x, far_y, far_counts = clip_crossing_pieces(
            pool_x, pool_y,
            pstart[cross_pieces_global], pc[cross_pieces_global],
            coeff_a[evt_cidx], coeff_b[evt_cidx], coeff_c[evt_cidx],
            want_farther, eps,
        )
        keep_closer = (clo_counts >= 3) & (
            _ring_areas(clo_x, clo_y, clo_counts) > _MIN_PIECE_AREA
        )
        keep_farther = (far_counts >= 3) & (
            _ring_areas(far_x, far_y, far_counts) > _MIN_PIECE_AREA
        )
        # Circumradii of the clipped children (the only pieces whose
        # vertices changed this level), same expression as the cached
        # state they feed.  Areas and radii stay NumPy on *both* tiers:
        # given identical rings the keep decisions are then identical
        # by construction.
        cross_owner = po[cross_pieces_global]
        clo_rad = _ring_radii(clo_x, clo_y, clo_counts, sx[cross_owner], sy[cross_owner])
        far_rad = _ring_radii(far_x, far_y, far_counts, sx[cross_owner], sy[cross_owner])

        # ---- append the kept children to the pool and rebuild the
        # descriptor arrays: survivors keep their pool slices verbatim.
        clo_starts = np.cumsum(clo_counts) - clo_counts
        far_starts = np.cumsum(far_counts) - far_counts
        clo_keep_counts = clo_counts[keep_closer]
        far_keep_counts = far_counts[keep_farther]
        n_clo = int(clo_keep_counts.sum())
        n_far = int(far_keep_counts.sum())
        if pool_used + n_clo + n_far > pool_cap:
            pool_cap = max(2 * pool_cap, pool_used + n_clo + n_far)
            grown_x = np.empty(pool_cap)
            grown_y = np.empty(pool_cap)
            grown_x[:pool_used] = pool_x[:pool_used]
            grown_y[:pool_used] = pool_y[:pool_used]
            pool_x = grown_x
            pool_y = grown_y
        if n_clo:
            src = _ragged_indices(clo_starts[keep_closer], clo_keep_counts)
            pool_x[pool_used : pool_used + n_clo] = clo_x[src]
            pool_y[pool_used : pool_used + n_clo] = clo_y[src]
        clo_child_start = pool_used + np.cumsum(clo_keep_counts) - clo_keep_counts
        pool_used += n_clo
        if n_far:
            src = _ragged_indices(far_starts[keep_farther], far_keep_counts)
            pool_x[pool_used : pool_used + n_far] = far_x[src]
            pool_y[pool_used : pool_used + n_far] = far_y[src]
        far_child_start = pool_used + np.cumsum(far_keep_counts) - far_keep_counts
        pool_used += n_far

        keep_orig = ~cross_evt & ~allout_drop_evt
        orig_rows = np.nonzero(keep_orig)[0]
        clo_rows = cross_pieces_global[keep_closer]
        far_rows = cross_pieces_global[keep_farther]
        pstart = np.concatenate(
            (pstart[orig_rows], clo_child_start, far_child_start)
        )
        pc = np.concatenate((pc[orig_rows], clo_keep_counts, far_keep_counts))
        pv = np.concatenate(
            (
                pv[orig_rows] + allout_keep_evt[orig_rows],
                pv[clo_rows],
                pv[far_rows] + 1,
            )
        )
        prad = np.concatenate(
            (prad[orig_rows], clo_rad[keep_closer], far_rad[keep_farther])
        )
        pptr = np.concatenate(
            (
                ptr_advanced[orig_rows],
                ptr_advanced[clo_rows],
                ptr_advanced[far_rows],
            )
        )
        pblk = np.concatenate(
            (
                blk_next[orig_rows],
                np.ones(clo_rows.size, dtype=np.int64),
                np.ones(far_rows.size, dtype=np.int64),
            )
        )
        po = np.concatenate((po[orig_rows], po[clo_rows], po[far_rows]))

    # Merge the stash with whatever is still live and regroup the
    # pieces by ascending owner (the stable sort groups each owner's
    # pieces in retirement order; piece order within an owner is not
    # part of the contract — every downstream consumer reduces over
    # the union of an owner's pieces).
    fin_start_parts.append(pstart)
    fin_pc_parts.append(pc)
    fin_po_parts.append(po)
    all_pc = np.concatenate(fin_pc_parts)
    all_po = np.concatenate(fin_po_parts)
    all_start = np.concatenate(fin_start_parts)
    order = np.argsort(all_po, kind="stable")
    gidx = _ragged_indices(all_start[order], all_pc[order])
    piece_indptr = np.concatenate(([0], np.cumsum(all_pc[order])))
    return (
        pool_x[gidx],
        pool_y[gidx],
        piece_indptr.astype(np.int64),
        all_po[order],
    )


# ----------------------------------------------------------------------
# Batched smallest enclosing circles
# ----------------------------------------------------------------------
#: Index tables of the candidate supports over the 4-point working set
#: ``[s0, s1, s2, f]`` — 6 diameter pairs (third index duplicates the
#: first: duplicates never change an enclosing circle) and 4 triples.
_COMBO_I = np.asarray([0, 1, 2, 0, 0, 1, 0, 0, 1, 0], dtype=np.int64)
_COMBO_J = np.asarray([3, 3, 3, 1, 2, 2, 1, 2, 2, 1], dtype=np.int64)
_COMBO_K = np.asarray([0, 1, 2, 0, 0, 1, 3, 3, 3, 2], dtype=np.int64)
_N_PAIRS = 6  # candidates [0:6] are pairs, [6:10] are triples


def mec_batch(
    xs: np.ndarray,
    ys: np.ndarray,
    indptr: np.ndarray,
    max_padded_width: int = 64,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Smallest enclosing circle of many ragged point sets at once.

    A vectorised farthest-point support iteration: start from the
    diameter circle of an approximate farthest pair, then repeatedly
    pull the farthest outside point into a <=4-point support set and
    take the smallest of the 10 pair/triple circles that encloses it.
    The radius grows strictly each step, so the loop settles in a few
    iterations; rows that do not (or whose point count exceeds
    ``max_padded_width``) fall back to the scalar Welzl routine.

    Returns ``(center_x, center_y, radius)`` arrays; empty rows get a
    zero circle at the origin (the Welzl empty-input convention).

    Accuracy: the returned circle encloses every point to within
    ``1e-11 * max(radius, 1)`` and is minimal for its support, which
    agrees with the scalar Welzl result to ~1e-11 on generic inputs —
    inside the sparse tier's 1e-9 tolerance contract.
    """
    counts = np.diff(indptr)
    m = counts.shape[0]
    out_cx = np.zeros(m)
    out_cy = np.zeros(m)
    out_r = np.zeros(m)
    fallback: List[int] = np.nonzero(counts > max_padded_width)[0].tolist()
    work = np.nonzero((counts >= 1) & (counts <= max_padded_width))[0]
    if work.size:
        wcounts = counts[work]
        width = int(wcounts.max())
        # Pad each row with its own first point: duplicates are inert
        # for enclosing circles, so no masking is needed anywhere.
        pad = indptr[:-1][work, None] + np.minimum(
            np.arange(width, dtype=np.int64)[None, :], (wcounts - 1)[:, None]
        )
        px = xs[pad]
        py = ys[pad]
        nrows = work.shape[0]
        rows_idx = np.arange(nrows)
        d0 = (px - px[:, :1]) ** 2 + (py - py[:, :1]) ** 2
        far0 = np.argmax(d0, axis=1)
        ax = px[rows_idx, far0]
        ay = py[rows_idx, far0]
        d1 = (px - ax[:, None]) ** 2 + (py - ay[:, None]) ** 2
        far1 = np.argmax(d1, axis=1)
        bx = px[rows_idx, far1]
        by = py[rows_idx, far1]
        cx = (ax + bx) / 2.0
        cy = (ay + by) / 2.0
        rad = np.hypot(ax - bx, ay - by) / 2.0
        sup_x = np.stack((ax, bx, ax), axis=1)
        sup_y = np.stack((ay, by, ay), axis=1)
        active = np.ones(nrows, dtype=bool)
        for _ in range(64):
            rows = np.nonzero(active)[0]
            if rows.size == 0:
                break
            dx = px[rows] - cx[rows, None]
            dy = py[rows] - cy[rows, None]
            dist = np.sqrt(dx * dx + dy * dy)
            far = np.argmax(dist, axis=1)
            sub = np.arange(rows.size)
            fmax = dist[sub, far]
            settled = fmax <= rad[rows] + 1e-11 * np.maximum(rad[rows], 1.0)
            active[rows[settled]] = False
            rows = rows[~settled]
            if rows.size == 0:
                break
            far = far[~settled]
            sub = np.arange(rows.size)
            qx = np.stack(
                (sup_x[rows, 0], sup_x[rows, 1], sup_x[rows, 2], px[rows, far]),
                axis=1,
            )
            qy = np.stack(
                (sup_y[rows, 0], sup_y[rows, 1], sup_y[rows, 2], py[rows, far]),
                axis=1,
            )
            qi = qx[:, _COMBO_I]
            qj = qx[:, _COMBO_J]
            qk = qx[:, _COMBO_K]
            ri = qy[:, _COMBO_I]
            rj = qy[:, _COMBO_J]
            rk = qy[:, _COMBO_K]
            # Pair candidates: diameter circles.
            cand_cx = (qi + qj) / 2.0
            cand_cy = (ri + rj) / 2.0
            cand_r = np.hypot(qi - qj, ri - rj) / 2.0
            # Triple candidates: circumcircles (circle_from_3 grouping).
            det = 2.0 * (qi * (rj - rk) + qj * (rk - ri) + qk * (ri - rj))
            degen = np.abs(det) <= EPS * EPS
            det_safe = np.where(degen, 1.0, det)
            a2 = qi * qi + ri * ri
            b2 = qj * qj + rj * rj
            c2 = qk * qk + rk * rk
            ux = (a2 * (rj - rk) + b2 * (rk - ri) + c2 * (ri - rj)) / det_safe
            uy = (a2 * (qk - qj) + b2 * (qi - qk) + c2 * (qj - qi)) / det_safe
            tri = np.arange(_COMBO_I.shape[0]) >= _N_PAIRS
            cand_cx = np.where(tri, ux, cand_cx)
            cand_cy = np.where(tri, uy, cand_cy)
            cand_r = np.where(tri, np.hypot(ux - qi, uy - ri), cand_r)
            invalid = tri & degen
            # Containment of all 4 working points, small slack.
            slack = 1e-12 * np.maximum(cand_r, 1.0)
            ok = np.ones_like(cand_r, dtype=bool)
            for point in range(4):
                ok &= (
                    np.hypot(qx[:, point, None] - cand_cx, qy[:, point, None] - cand_cy)
                    <= cand_r + slack
                )
            ok &= ~invalid
            cand_masked = np.where(ok, cand_r, np.inf)
            pick = np.argmin(cand_masked, axis=1)
            valid_pick = ok[sub, pick]
            if not valid_pick.all():
                bad = rows[~valid_pick]
                fallback.extend(work[bad].tolist())
                active[bad] = False
                rows = rows[valid_pick]
                sub = np.arange(rows.size)
                pick = pick[valid_pick]
                qx = qx[valid_pick]
                qy = qy[valid_pick]
                cand_cx = cand_cx[valid_pick]
                cand_cy = cand_cy[valid_pick]
                cand_r = cand_r[valid_pick]
                if rows.size == 0:
                    continue
            cx[rows] = cand_cx[sub, pick]
            cy[rows] = cand_cy[sub, pick]
            rad[rows] = cand_r[sub, pick]
            sup_x[rows, 0] = qx[sub, _COMBO_I[pick]]
            sup_x[rows, 1] = qx[sub, _COMBO_J[pick]]
            sup_x[rows, 2] = qx[sub, _COMBO_K[pick]]
            sup_y[rows, 0] = qy[sub, _COMBO_I[pick]]
            sup_y[rows, 1] = qy[sub, _COMBO_J[pick]]
            sup_y[rows, 2] = qy[sub, _COMBO_K[pick]]
        leftovers = np.nonzero(active)[0]
        if leftovers.size:
            fallback.extend(work[leftovers].tolist())
            settled_mask = np.ones(nrows, dtype=bool)
            settled_mask[leftovers] = False
        else:
            settled_mask = np.ones(nrows, dtype=bool)
        out_cx[work[settled_mask]] = cx[settled_mask]
        out_cy[work[settled_mask]] = cy[settled_mask]
        out_r[work[settled_mask]] = rad[settled_mask]
    for row in fallback:
        start, stop = int(indptr[row]), int(indptr[row + 1])
        circle = welzl_disk(list(zip(xs[start:stop].tolist(), ys[start:stop].tolist())))
        out_cx[row] = circle.center[0]
        out_cy[row] = circle.center[1]
        out_r[row] = circle.radius
    return out_cx, out_cy, out_r
