"""Cross-node geometry kernels for the sparse engine tier.

The batched tier (PR 1 / PR 4) vectorises *within* one node — all of a
node's competitors are folded through :class:`~repro.engine.kernels
.ClippingSweep` in array operations — but still visits nodes one at a
time, so a round costs hundreds of microseconds of Python per node no
matter how local the protocol is.  The kernels here vectorise *across*
nodes:

* :func:`clip_cells_batch` runs the budgeted clipping sweep of **every**
  site simultaneously, level by level: at level ``L`` each site's
  ``L``-th nearest competitor clips that site's live pieces, and one
  pass of flat array operations (signed values, per-piece reductions,
  the fused two-sided Sutherland–Hodgman assembly) advances all sites
  at once.  The per-site far-competitor cutoff of ``ClippingSweep`` is
  applied progressively, so a site stops participating as soon as its
  remaining competitors provably cannot clip anything.
* :func:`mec_batch` computes smallest enclosing circles (Chebyshev
  centers) for many ragged vertex sets at once with a farthest-point
  support iteration, falling back to the scalar Welzl routine for the
  rare rows the iteration does not settle.

Both kernels follow the sparse tier's *tolerance* contract (see
DESIGN.md): results agree with the scalar/batched path to well within
1e-9, but are not bitwise identical — the ring dedupe is applied in
whole-array passes rather than the scalar running form, and the MEC
support search may pick a different (equally minimal) support among
near-degenerate candidates.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.primitives import EPS, Point
from repro.geometry.welzl import welzl_disk
from repro.voronoi.dominating import _MIN_PIECE_AREA

Polygon = List[Point]

#: Mirror of ``ClippingSweep._CUTOFF_MARGIN``: the slack added to the
#: current site radius before a competitor is declared a provable no-op.
_CUTOFF_MARGIN = 1e-7


# ----------------------------------------------------------------------
# Ragged-array helpers
# ----------------------------------------------------------------------
def _ragged_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat gather indices for ragged runs ``[starts[i], starts[i]+counts[i])``."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    cum = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(cum, counts)
    return np.repeat(starts, counts) + within


def _compress_rings(
    ex: np.ndarray,
    ey: np.ndarray,
    ring_of_slot: np.ndarray,
    emit: np.ndarray,
    nrings: int,
    eps: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compact emitted clip vertices into deduped rings.

    Consecutive vertices within ``eps`` (per axis) are collapsed, then
    trailing vertices cyclically equal to the ring head are dropped —
    array-pass analogues of the scalar running dedupe in
    ``split_ring_halfplane`` (identical except on chains of 3+ vertices
    that are pairwise but not transitively within ``eps``, which the
    sparse tier's tolerance contract covers).
    """
    x = ex[emit]
    y = ey[emit]
    ring = ring_of_slot[emit]
    counts = np.bincount(ring, minlength=nrings)
    while x.size:
        starts = np.cumsum(counts) - counts
        first = np.zeros(x.size, dtype=bool)
        first[starts[counts > 0]] = True
        prev = np.arange(x.size, dtype=np.int64) - 1
        dup = ~first & (np.abs(x - x[prev]) <= eps) & (np.abs(y - y[prev]) <= eps)
        if not dup.any():
            break
        keep = ~dup
        x = x[keep]
        y = y[keep]
        ring = ring[keep]
        counts = np.bincount(ring, minlength=nrings)
    while x.size:
        starts = np.cumsum(counts) - counts
        rows = np.nonzero(counts >= 2)[0]
        if rows.size == 0:
            break
        lasts = starts[rows] + counts[rows] - 1
        close = (np.abs(x[lasts] - x[starts[rows]]) <= eps) & (
            np.abs(y[lasts] - y[starts[rows]]) <= eps
        )
        if not close.any():
            break
        drop = np.zeros(x.size, dtype=bool)
        drop[lasts[close]] = True
        keep = ~drop
        x = x[keep]
        y = y[keep]
        ring = ring[keep]
        counts = np.bincount(ring, minlength=nrings)
    return x, y, counts


def _ring_areas(x: np.ndarray, y: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Absolute shoelace area per ragged ring."""
    nrings = counts.shape[0]
    areas = np.zeros(nrings)
    if x.size == 0 or nrings == 0:
        return areas
    starts = np.cumsum(counts) - counts
    nxt = np.arange(x.size, dtype=np.int64) + 1
    nz = counts > 0
    nxt[starts[nz] + counts[nz] - 1] = starts[nz]
    cross = x * y[nxt] - x[nxt] * y
    areas[np.nonzero(nz)[0]] = np.abs(np.add.reduceat(cross, starts[nz])) / 2.0
    return areas


# ----------------------------------------------------------------------
# Cross-node budgeted clipping sweep
# ----------------------------------------------------------------------
def clip_cells_batch(
    sites: np.ndarray,
    comp_x: np.ndarray,
    comp_y: np.ndarray,
    comp_indptr: np.ndarray,
    area_pieces: Sequence[Polygon],
    k: int,
    eps: float = EPS,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Budgeted clipping sweep of many sites in lock-stepped levels.

    Args:
        sites: ``(M, 2)`` site positions.
        comp_x, comp_y, comp_indptr: CSR competitor lists per site,
            **sorted nearest-first** within each site (ties in any
            stable order; the sweep is order-sensitive only on exact
            distance ties, which the tolerance contract covers).
        area_pieces: convex decomposition of the target area.
        k: coverage order (>= 1).
        eps: geometric tolerance.

    Returns:
        ``(vert_x, vert_y, piece_indptr, piece_owner)`` — ragged convex
        pieces grouped by ascending site row; the pieces of site ``i``
        are those with ``piece_owner == i`` (possibly none, when the
        site dominates no area).  Piece vertex ``j`` of piece ``p``
        lives at ``vert_x[piece_indptr[p] + j]``.
    """
    if k < 1:
        raise ValueError("coverage order k must be >= 1")
    budget = k - 1
    sites = np.asarray(sites, dtype=float).reshape(-1, 2)
    m = sites.shape[0]
    rings = [list(piece) for piece in area_pieces if len(piece) >= 3]
    if m == 0 or not rings:
        return (
            np.zeros(0),
            np.zeros(0),
            np.zeros(1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
    area_vx = np.asarray([v[0] for ring in rings for v in ring], dtype=float)
    area_vy = np.asarray([v[1] for ring in rings for v in ring], dtype=float)
    area_counts = np.asarray([len(ring) for ring in rings], dtype=np.int64)
    pieces_per_site = len(rings)

    # Live state: flat vertex arrays, per-piece counts / owner /
    # violation budget, pieces always grouped by ascending owner.
    vx = np.tile(area_vx, m)
    vy = np.tile(area_vy, m)
    pc = np.tile(area_counts, m)
    po = np.repeat(np.arange(m, dtype=np.int64), pieces_per_site)
    pv = np.zeros(m * pieces_per_site, dtype=np.int64)

    sx = np.ascontiguousarray(sites[:, 0])
    sy = np.ascontiguousarray(sites[:, 1])
    ncomp = np.diff(comp_indptr)
    comp_owner = np.repeat(np.arange(m, dtype=np.int64), ncomp)
    cdx = comp_x - sx[comp_owner]
    cdy = comp_y - sy[comp_owner]
    comp_dist_sq = cdx * cdx + cdy * cdy
    # Co-located competitors are never strictly closer: no constraint.
    comp_separated = np.hypot(cdx, cdy) > eps
    # Perpendicular-bisector half-plane coefficients, the exact
    # ``halfplane_coefficient_arrays`` grouping.
    coeff_a = cdx
    coeff_b = cdy
    coeff_c = (
        comp_x * comp_x + comp_y * comp_y - sx[comp_owner] * sx[comp_owner]
        - sy[comp_owner] * sy[comp_owner]
    ) / 2.0

    done = ncomp == 0
    max_levels = int(ncomp.max()) if ncomp.size else 0
    # Owners retire (cutoff hit, competitors exhausted, or no pieces
    # left) exactly once; their pieces move to the stash so the
    # per-level array passes only cover the shrinking working set.
    working = np.ones(m, dtype=bool)
    fin_x_parts: List[np.ndarray] = []
    fin_y_parts: List[np.ndarray] = []
    fin_pc_parts: List[np.ndarray] = []
    fin_po_parts: List[np.ndarray] = []
    for level in range(max_levels):
        finished_now = working & (done | (ncomp <= level))
        if finished_now.any():
            working &= ~finished_now
            fin_piece = finished_now[po]
            if fin_piece.any():
                pstarts = np.cumsum(pc) - pc
                fin_sel = np.nonzero(fin_piece)[0]
                gidx = _ragged_indices(pstarts[fin_sel], pc[fin_sel])
                fin_x_parts.append(vx[gidx])
                fin_y_parts.append(vy[gidx])
                fin_pc_parts.append(pc[fin_sel])
                fin_po_parts.append(po[fin_sel])
                live_sel = np.nonzero(~fin_piece)[0]
                gidx = _ragged_indices(pstarts[live_sel], pc[live_sel])
                vx = vx[gidx]
                vy = vy[gidx]
                pc = pc[live_sel]
                po = po[live_sel]
                pv = pv[live_sel]
        if not working.any():
            break
        pstarts = np.cumsum(pc) - pc

        # Per-piece freezing: competitors are sorted nearest-first, so a
        # piece whose circumradius (about its own site) stays below half
        # the *next* competitor's distance can never be reached by any
        # remaining bisector — every later half-plane evaluates strictly
        # negative on all its vertices.  Such pieces are final; moving
        # them to the stash immediately keeps the per-level passes on
        # the (much smaller) still-contested working set and lets the
        # owner-level cutoff below fire earlier, all without changing a
        # single emitted vertex.
        piece_rad = np.zeros(0)
        if po.size:
            owner_of_vert = np.repeat(po, pc)
            dist_v = np.hypot(vx - sx[owner_of_vert], vy - sy[owner_of_vert])
            piece_rad = np.maximum.reduceat(dist_v, pstarts)
            next_d_sq = comp_dist_sq[comp_indptr[po] + level]
            piece_reach = 2.0 * (piece_rad + _CUTOFF_MARGIN)
            frozen = next_d_sq > piece_reach * piece_reach
            if frozen.any():
                fr_sel = np.nonzero(frozen)[0]
                gidx = _ragged_indices(pstarts[fr_sel], pc[fr_sel])
                fin_x_parts.append(vx[gidx])
                fin_y_parts.append(vy[gidx])
                fin_pc_parts.append(pc[fr_sel])
                fin_po_parts.append(po[fr_sel])
                live_sel = np.nonzero(~frozen)[0]
                gidx = _ragged_indices(pstarts[live_sel], pc[live_sel])
                vx = vx[gidx]
                vy = vy[gidx]
                pc = pc[live_sel]
                po = po[live_sel]
                pv = pv[live_sel]
                piece_rad = piece_rad[live_sel]
                pstarts = np.cumsum(pc) - pc

        # Current site radius of the candidate owners (max radius over
        # their live pieces) for the progressive cutoff.  Every piece in
        # the working arrays belongs to a candidate.  Frozen pieces are
        # excluded on purpose: the remaining competitors are already
        # proven no-ops for them, so they cannot justify more clipping.
        site_rad = np.zeros(m)
        if po.size:
            group_start = np.nonzero(
                np.concatenate(([True], po[1:] != po[:-1]))
            )[0]
            site_rad[po[group_start]] = np.maximum.reduceat(
                piece_rad, group_start
            )

        rows = np.nonzero(working)[0]
        cidx = comp_indptr[rows] + level
        # Far-competitor cutoff (progressive form of the sweep's): the
        # bisector of a competitor beyond 2*(radius + margin) lies
        # strictly outside every live vertex, and competitors only get
        # farther, so the owner is finished for good.
        cutoff = 2.0 * (site_rad[rows] + _CUTOFF_MARGIN)
        beyond = comp_dist_sq[cidx] > cutoff * cutoff
        done[rows[beyond]] = True
        keep = ~beyond & comp_separated[cidx]
        rows = rows[keep]
        cidx = cidx[keep]
        # Owners with no pieces left cannot be clipped further.
        live_counts = np.bincount(po, minlength=m)
        has_pieces = live_counts[rows] > 0
        done[rows[~has_pieces]] = True
        rows = rows[has_pieces]
        cidx = cidx[has_pieces]
        if rows.size == 0:
            continue

        active_owner = np.zeros(m, dtype=bool)
        active_owner[rows] = True
        coeff_a_m = np.zeros(m)
        coeff_b_m = np.zeros(m)
        coeff_c_m = np.zeros(m)
        coeff_a_m[rows] = coeff_a[cidx]
        coeff_b_m[rows] = coeff_b[cidx]
        coeff_c_m[rows] = coeff_c[cidx]

        act_piece_rows = np.nonzero(active_owner[po])[0]
        acounts = pc[act_piece_rows]
        gidx = _ragged_indices(pstarts[act_piece_rows], acounts)
        avx = vx[gidx]
        avy = vy[gidx]
        avo = np.repeat(po[act_piece_rows], acounts)
        # Signed half-plane values, the scalar sweep's a*x + b*y - c.
        val = coeff_a_m[avo] * avx + coeff_b_m[avo] * avy - coeff_c_m[avo]
        substarts = np.cumsum(acounts) - acounts
        pmax = np.maximum.reduceat(val, substarts)
        pmin = np.minimum.reduceat(val, substarts)
        untouched_sub = pmax <= eps
        allout_sub = ~untouched_sub & (pmin >= -eps)
        crossing_sub = ~(untouched_sub | allout_sub)
        allout_keep_sub = allout_sub & (pv[act_piece_rows] + 1 <= budget)
        allout_drop_sub = allout_sub & ~allout_keep_sub
        if not crossing_sub.any() and not allout_drop_sub.any():
            pv[act_piece_rows[allout_keep_sub]] += 1
            continue

        # ---- fused two-sided Sutherland–Hodgman over crossing pieces
        cross_sub = np.nonzero(crossing_sub)[0]
        ccounts = acounts[cross_sub]
        ctotal = int(ccounts.sum())
        cgather = _ragged_indices(substarts[cross_sub], ccounts)
        cvx = avx[cgather]
        cvy = avy[cgather]
        cval = val[cgather]
        cstarts = np.cumsum(ccounts) - ccounts
        prev = np.arange(ctotal, dtype=np.int64) - 1
        prev[cstarts] = cstarts + ccounts - 1
        pvx = cvx[prev]
        pvy = cvy[prev]
        pval = cval[prev]
        inside_c = cval <= eps
        prev_in_c = pval <= eps
        cross_c = inside_c != prev_in_c
        cross_pieces_global = act_piece_rows[cross_sub]
        want_farther = pv[cross_pieces_global] + 1 <= budget
        wf_vert = np.repeat(want_farther, ccounts)
        inside_f = cval >= -eps
        prev_in_f = pval >= -eps
        cross_f = (inside_f != prev_in_f) & wf_vert
        # Edge/bisector intersections: one evaluation shared by both
        # sides, in the exact scalar grouping (midpoint fallback for
        # degenerate edges, clamped interpolation parameter).
        denom = pval - cval
        degen = np.abs(denom) <= EPS * EPS
        t = np.clip(pval / np.where(degen, 1.0, denom), 0.0, 1.0)
        ipx = np.where(degen, (pvx + cvx) / 2.0, pvx + t * (cvx - pvx))
        ipy = np.where(degen, (pvy + cvy) / 2.0, pvy + t * (cvy - pvy))
        # Emission slots per vertex: [intersection, current vertex] —
        # the scalar append order.
        vert_piece = np.repeat(np.arange(cross_sub.size, dtype=np.int64), ccounts)
        n2 = 2 * ctotal
        ex = np.empty(n2)
        ey = np.empty(n2)
        ex[0::2] = ipx
        ex[1::2] = cvx
        ey[0::2] = ipy
        ey[1::2] = cvy
        slot_piece = np.repeat(vert_piece, 2)
        emit_c = np.empty(n2, dtype=bool)
        emit_c[0::2] = cross_c
        emit_c[1::2] = inside_c
        emit_f = np.empty(n2, dtype=bool)
        emit_f[0::2] = cross_f
        emit_f[1::2] = inside_f & wf_vert
        clo_x, clo_y, clo_counts = _compress_rings(
            ex, ey, slot_piece, emit_c, cross_sub.size, eps
        )
        far_x, far_y, far_counts = _compress_rings(
            ex, ey, slot_piece, emit_f, cross_sub.size, eps
        )
        keep_closer = (clo_counts >= 3) & (
            _ring_areas(clo_x, clo_y, clo_counts) > _MIN_PIECE_AREA
        )
        keep_farther = (far_counts >= 3) & (
            _ring_areas(far_x, far_y, far_counts) > _MIN_PIECE_AREA
        )

        # ---- assemble the new state in scalar order: per original
        # piece, the kept original, else its closer then farther child.
        n_pieces = pc.shape[0]
        keep_orig = np.ones(n_pieces, dtype=bool)
        viol_bump = np.zeros(n_pieces, dtype=np.int64)
        keep_orig[cross_pieces_global] = False
        keep_orig[act_piece_rows[allout_drop_sub]] = False
        viol_bump[act_piece_rows[allout_keep_sub]] = 1

        orig_rows = np.nonzero(keep_orig)[0]
        clo_rows = cross_pieces_global[keep_closer]
        far_rows = cross_pieces_global[keep_farther]
        rec_piece = np.concatenate((orig_rows, clo_rows, far_rows))
        rec_side = np.concatenate(
            (
                np.zeros(orig_rows.size, dtype=np.int64),
                np.zeros(clo_rows.size, dtype=np.int64),
                np.ones(far_rows.size, dtype=np.int64),
            )
        )
        rec_src = np.concatenate(
            (
                np.zeros(orig_rows.size, dtype=np.int64),
                np.ones(clo_rows.size, dtype=np.int64),
                np.full(far_rows.size, 2, dtype=np.int64),
            )
        )
        clo_starts = np.cumsum(clo_counts) - clo_counts
        far_starts = np.cumsum(far_counts) - far_counts
        rec_counts = np.concatenate(
            (pc[orig_rows], clo_counts[keep_closer], far_counts[keep_farther])
        )
        rec_srcstart = np.concatenate(
            (pstarts[orig_rows], clo_starts[keep_closer], far_starts[keep_farther])
        )
        rec_viol = np.concatenate(
            (
                pv[orig_rows] + viol_bump[orig_rows],
                pv[clo_rows],
                pv[far_rows] + 1,
            )
        )
        order = np.lexsort((rec_side, rec_piece))
        rec_piece = rec_piece[order]
        rec_src = rec_src[order]
        rec_counts = rec_counts[order]
        rec_srcstart = rec_srcstart[order]
        new_pv = rec_viol[order]
        new_po = po[rec_piece]
        new_pc = rec_counts
        total = int(new_pc.sum())
        new_vx = np.empty(total)
        new_vy = np.empty(total)
        dst_starts = np.cumsum(new_pc) - new_pc
        for src_id, (src_arr_x, src_arr_y) in enumerate(
            ((vx, vy), (clo_x, clo_y), (far_x, far_y))
        ):
            mask = rec_src == src_id
            if not mask.any():
                continue
            si = _ragged_indices(rec_srcstart[mask], new_pc[mask])
            di = _ragged_indices(dst_starts[mask], new_pc[mask])
            new_vx[di] = src_arr_x[si]
            new_vy[di] = src_arr_y[si]
        vx, vy, pc, po, pv = new_vx, new_vy, new_pc, new_po, new_pv
        emptied = working.copy()
        emptied[po] = False
        done[emptied] = True

    # Merge the stash with whatever is still in the working arrays and
    # regroup the pieces by ascending owner (the stable sort keeps each
    # owner's scalar piece order, since an owner retires exactly once).
    fin_x_parts.append(vx)
    fin_y_parts.append(vy)
    fin_pc_parts.append(pc)
    fin_po_parts.append(po)
    all_pc = np.concatenate(fin_pc_parts)
    all_po = np.concatenate(fin_po_parts)
    all_x = np.concatenate(fin_x_parts)
    all_y = np.concatenate(fin_y_parts)
    order = np.argsort(all_po, kind="stable")
    all_starts = np.cumsum(all_pc) - all_pc
    gidx = _ragged_indices(all_starts[order], all_pc[order])
    piece_indptr = np.concatenate(([0], np.cumsum(all_pc[order])))
    return (
        all_x[gidx],
        all_y[gidx],
        piece_indptr.astype(np.int64),
        all_po[order],
    )


# ----------------------------------------------------------------------
# Batched smallest enclosing circles
# ----------------------------------------------------------------------
#: Index tables of the candidate supports over the 4-point working set
#: ``[s0, s1, s2, f]`` — 6 diameter pairs (third index duplicates the
#: first: duplicates never change an enclosing circle) and 4 triples.
_COMBO_I = np.asarray([0, 1, 2, 0, 0, 1, 0, 0, 1, 0], dtype=np.int64)
_COMBO_J = np.asarray([3, 3, 3, 1, 2, 2, 1, 2, 2, 1], dtype=np.int64)
_COMBO_K = np.asarray([0, 1, 2, 0, 0, 1, 3, 3, 3, 2], dtype=np.int64)
_N_PAIRS = 6  # candidates [0:6] are pairs, [6:10] are triples


def mec_batch(
    xs: np.ndarray,
    ys: np.ndarray,
    indptr: np.ndarray,
    max_padded_width: int = 64,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Smallest enclosing circle of many ragged point sets at once.

    A vectorised farthest-point support iteration: start from the
    diameter circle of an approximate farthest pair, then repeatedly
    pull the farthest outside point into a <=4-point support set and
    take the smallest of the 10 pair/triple circles that encloses it.
    The radius grows strictly each step, so the loop settles in a few
    iterations; rows that do not (or whose point count exceeds
    ``max_padded_width``) fall back to the scalar Welzl routine.

    Returns ``(center_x, center_y, radius)`` arrays; empty rows get a
    zero circle at the origin (the Welzl empty-input convention).

    Accuracy: the returned circle encloses every point to within
    ``1e-11 * max(radius, 1)`` and is minimal for its support, which
    agrees with the scalar Welzl result to ~1e-11 on generic inputs —
    inside the sparse tier's 1e-9 tolerance contract.
    """
    counts = np.diff(indptr)
    m = counts.shape[0]
    out_cx = np.zeros(m)
    out_cy = np.zeros(m)
    out_r = np.zeros(m)
    fallback: List[int] = np.nonzero(counts > max_padded_width)[0].tolist()
    work = np.nonzero((counts >= 1) & (counts <= max_padded_width))[0]
    if work.size:
        wcounts = counts[work]
        width = int(wcounts.max())
        # Pad each row with its own first point: duplicates are inert
        # for enclosing circles, so no masking is needed anywhere.
        pad = indptr[:-1][work, None] + np.minimum(
            np.arange(width, dtype=np.int64)[None, :], (wcounts - 1)[:, None]
        )
        px = xs[pad]
        py = ys[pad]
        nrows = work.shape[0]
        rows_idx = np.arange(nrows)
        d0 = (px - px[:, :1]) ** 2 + (py - py[:, :1]) ** 2
        far0 = np.argmax(d0, axis=1)
        ax = px[rows_idx, far0]
        ay = py[rows_idx, far0]
        d1 = (px - ax[:, None]) ** 2 + (py - ay[:, None]) ** 2
        far1 = np.argmax(d1, axis=1)
        bx = px[rows_idx, far1]
        by = py[rows_idx, far1]
        cx = (ax + bx) / 2.0
        cy = (ay + by) / 2.0
        rad = np.hypot(ax - bx, ay - by) / 2.0
        sup_x = np.stack((ax, bx, ax), axis=1)
        sup_y = np.stack((ay, by, ay), axis=1)
        active = np.ones(nrows, dtype=bool)
        for _ in range(64):
            rows = np.nonzero(active)[0]
            if rows.size == 0:
                break
            dx = px[rows] - cx[rows, None]
            dy = py[rows] - cy[rows, None]
            dist = np.sqrt(dx * dx + dy * dy)
            far = np.argmax(dist, axis=1)
            sub = np.arange(rows.size)
            fmax = dist[sub, far]
            settled = fmax <= rad[rows] + 1e-11 * np.maximum(rad[rows], 1.0)
            active[rows[settled]] = False
            rows = rows[~settled]
            if rows.size == 0:
                break
            far = far[~settled]
            sub = np.arange(rows.size)
            qx = np.stack(
                (sup_x[rows, 0], sup_x[rows, 1], sup_x[rows, 2], px[rows, far]),
                axis=1,
            )
            qy = np.stack(
                (sup_y[rows, 0], sup_y[rows, 1], sup_y[rows, 2], py[rows, far]),
                axis=1,
            )
            qi = qx[:, _COMBO_I]
            qj = qx[:, _COMBO_J]
            qk = qx[:, _COMBO_K]
            ri = qy[:, _COMBO_I]
            rj = qy[:, _COMBO_J]
            rk = qy[:, _COMBO_K]
            # Pair candidates: diameter circles.
            cand_cx = (qi + qj) / 2.0
            cand_cy = (ri + rj) / 2.0
            cand_r = np.hypot(qi - qj, ri - rj) / 2.0
            # Triple candidates: circumcircles (circle_from_3 grouping).
            det = 2.0 * (qi * (rj - rk) + qj * (rk - ri) + qk * (ri - rj))
            degen = np.abs(det) <= EPS * EPS
            det_safe = np.where(degen, 1.0, det)
            a2 = qi * qi + ri * ri
            b2 = qj * qj + rj * rj
            c2 = qk * qk + rk * rk
            ux = (a2 * (rj - rk) + b2 * (rk - ri) + c2 * (ri - rj)) / det_safe
            uy = (a2 * (qk - qj) + b2 * (qi - qk) + c2 * (qj - qi)) / det_safe
            tri = np.arange(_COMBO_I.shape[0]) >= _N_PAIRS
            cand_cx = np.where(tri, ux, cand_cx)
            cand_cy = np.where(tri, uy, cand_cy)
            cand_r = np.where(tri, np.hypot(ux - qi, uy - ri), cand_r)
            invalid = tri & degen
            # Containment of all 4 working points, small slack.
            slack = 1e-12 * np.maximum(cand_r, 1.0)
            ok = np.ones_like(cand_r, dtype=bool)
            for point in range(4):
                ok &= (
                    np.hypot(qx[:, point, None] - cand_cx, qy[:, point, None] - cand_cy)
                    <= cand_r + slack
                )
            ok &= ~invalid
            cand_masked = np.where(ok, cand_r, np.inf)
            pick = np.argmin(cand_masked, axis=1)
            valid_pick = ok[sub, pick]
            if not valid_pick.all():
                bad = rows[~valid_pick]
                fallback.extend(work[bad].tolist())
                active[bad] = False
                rows = rows[valid_pick]
                sub = np.arange(rows.size)
                pick = pick[valid_pick]
                qx = qx[valid_pick]
                qy = qy[valid_pick]
                cand_cx = cand_cx[valid_pick]
                cand_cy = cand_cy[valid_pick]
                cand_r = cand_r[valid_pick]
                if rows.size == 0:
                    continue
            cx[rows] = cand_cx[sub, pick]
            cy[rows] = cand_cy[sub, pick]
            rad[rows] = cand_r[sub, pick]
            sup_x[rows, 0] = qx[sub, _COMBO_I[pick]]
            sup_x[rows, 1] = qx[sub, _COMBO_J[pick]]
            sup_x[rows, 2] = qx[sub, _COMBO_K[pick]]
            sup_y[rows, 0] = qy[sub, _COMBO_I[pick]]
            sup_y[rows, 1] = qy[sub, _COMBO_J[pick]]
            sup_y[rows, 2] = qy[sub, _COMBO_K[pick]]
        leftovers = np.nonzero(active)[0]
        if leftovers.size:
            fallback.extend(work[leftovers].tolist())
            settled_mask = np.ones(nrows, dtype=bool)
            settled_mask[leftovers] = False
        else:
            settled_mask = np.ones(nrows, dtype=bool)
        out_cx[work[settled_mask]] = cx[settled_mask]
        out_cy[work[settled_mask]] = cy[settled_mask]
        out_r[work[settled_mask]] = rad[settled_mask]
    for row in fallback:
        start, stop = int(indptr[row]), int(indptr[row + 1])
        circle = welzl_disk(list(zip(xs[start:stop].tolist(), ys[start:stop].tolist())))
        out_cx[row] = circle.center[0]
        out_cy[row] = circle.center[1]
        out_r[row] = circle.radius
    return out_cx, out_cy, out_r
