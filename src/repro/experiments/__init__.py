"""Experiment runners reproducing every figure and table of the paper.

Each module exposes a ``run_*`` function returning an
:class:`~repro.experiments.common.ExperimentResult` (rows of plain
dictionaries — the same series the paper plots or tabulates) and is
wired both to a benchmark (``benchmarks/``) and to the CLI
(``python -m repro.experiments.cli`` or the ``laacad-experiments``
console script).

| Paper artefact | Module |
| -------------- | ------ |
| Figure 1       | :mod:`repro.experiments.fig1_voronoi` |
| Figure 2       | :mod:`repro.experiments.fig2_rings` |
| Figure 5       | :mod:`repro.experiments.fig5_deployment` |
| Figure 6       | :mod:`repro.experiments.fig6_convergence` |
| Figure 7       | :mod:`repro.experiments.fig7_energy` |
| Table I        | :mod:`repro.experiments.table1_minnode` |
| Table II       | :mod:`repro.experiments.table2_ammari` |
| Figure 8       | :mod:`repro.experiments.fig8_obstacles` |
| Ablations      | :mod:`repro.experiments.ablations` |
"""

from repro.experiments.common import ExperimentResult, resolve_scale

__all__ = ["ExperimentResult", "resolve_scale"]
