"""Ablation studies not present in the paper but implied by its design choices.

* **Step size alpha** — the convergence proof covers any alpha in (0, 1];
  the paper notes smaller alpha converges more slowly but more smoothly.
  The ablation quantifies rounds-to-convergence and final quality across
  alpha values.
* **Localized vs. global region computation** — Lemma 1 argues the
  expanding-ring computation is exact; the ablation runs both back-ends
  on identical networks and reports the ring depth actually needed and
  the (expected zero) difference in resulting sensing ranges.
* **Distributed protocol overhead** — messages and bytes needed per round
  by the message-passing runtime, versus coverage achieved.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ExperimentResult, execute_scenarios, resolve_engine
from repro.scenarios import ScenarioSpec, expand_grid, make_scenario


def run_alpha_ablation(
    alphas: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    node_count: int = 40,
    k: int = 2,
    comm_range: float = 0.25,
    max_rounds: int = 150,
    epsilon: float = 1e-3,
    seed: int = 51,
) -> ExperimentResult:
    """Step-size ablation: convergence speed and final quality vs alpha."""
    base = make_scenario(
        "corner_cluster",
        node_count=node_count,
        k=k,
        comm_range=comm_range,
        epsilon=epsilon,
        max_rounds=max_rounds,
        seed=seed,
        engine=resolve_engine(),
    )
    specs = expand_grid(base, {"alpha": list(alphas)})
    results = execute_scenarios(specs)

    rows: List[Dict] = []
    for alpha, result in zip(alphas, results):
        rows.append(
            {
                "alpha": alpha,
                "rounds": result["rounds_executed"],
                "converged": result["converged"],
                "max_sensing_range": result["max_sensing_range"],
                "min_sensing_range": result["min_sensing_range"],
                "total_movement": result["total_movement"],
            }
        )
    return ExperimentResult(
        name="ablation_alpha",
        description="Rounds to convergence and final quality for different step sizes alpha",
        rows=rows,
        metadata={"node_count": node_count, "k": k, "alphas": list(alphas), "seed": seed},
    )


def run_localized_ablation(
    node_count: int = 40,
    k_values: Sequence[int] = (1, 2, 3),
    comm_range: float = 0.25,
    seed: int = 53,
) -> ExperimentResult:
    """Localized (Algorithm 2) vs global dominating-region computation.

    For a random static deployment, every node's region is computed with
    both back-ends; the rows report the largest discrepancy in the
    derived sensing range (expected ~0) and the ring statistics of the
    localized computation.
    """
    specs = [
        ScenarioSpec(
            name="ablation_localized",
            pipeline="localized_compare",
            node_count=node_count,
            k=k,
            comm_range=comm_range,
            seed=seed,
            placement_seed=seed + k,
        )
        for k in k_values
    ]
    results = execute_scenarios(specs)

    rows: List[Dict] = []
    for k, result in zip(k_values, results):
        rows.append(
            {
                "k": k,
                "max_range_difference": result["max_range_difference"],
                "max_hops": result["max_hops"],
                "mean_hops": result["mean_hops"],
                "mean_neighbors_used": result["mean_neighbors_used"],
                "node_count": node_count,
            }
        )
    return ExperimentResult(
        name="ablation_localized",
        description=(
            "Agreement between Algorithm 2 (expanding ring) and the global "
            "computation, with the locality (hops/neighbours) it needed"
        ),
        rows=rows,
        metadata={"node_count": node_count, "k_values": list(k_values), "seed": seed},
    )


def run_engine_ablation(
    node_count: int = 60,
    k: int = 2,
    comm_range: float = 0.25,
    max_rounds: int = 8,
    epsilon: float = 1e-3,
    seed: int = 57,
) -> ExperimentResult:
    """Batched vs. legacy round engine: wall time and result agreement.

    Runs the corner-cluster deployment once per backend on identical
    initial conditions and reports per-engine wall-clock time plus the
    largest discrepancy in final positions and sensing ranges (expected
    exactly zero — the engines are bitwise equivalent).
    """
    import time

    # Wall-clock rows cannot come from the cache, so the scenarios are
    # executed directly; the spec still provides the construction.
    base = make_scenario(
        "corner_cluster",
        node_count=node_count,
        k=k,
        comm_range=comm_range,
        epsilon=epsilon,
        max_rounds=max_rounds,
        seed=seed,
    )
    from repro.api.session import Simulation

    rows: List[Dict] = []
    results = {}
    for engine in ("legacy", "batched"):
        start = time.perf_counter()
        result = Simulation.from_spec(base.replace(engine=engine)).run()
        elapsed = time.perf_counter() - start
        results[engine] = result
        rows.append(
            {
                "engine": engine,
                "wall_seconds": elapsed,
                "rounds": result.rounds_executed,
                "converged": result.converged,
                "max_sensing_range": result.max_sensing_range,
                "min_sensing_range": result.min_sensing_range,
            }
        )
    legacy, batched = results["legacy"], results["batched"]
    max_position_diff = max(
        (
            max(abs(a[0] - b[0]), abs(a[1] - b[1]))
            for a, b in zip(legacy.final_positions, batched.final_positions)
        ),
        default=0.0,
    )
    max_range_diff = max(
        (abs(a - b) for a, b in zip(legacy.sensing_ranges, batched.sensing_ranges)),
        default=0.0,
    )
    speedup = (
        rows[0]["wall_seconds"] / rows[1]["wall_seconds"]
        if rows[1]["wall_seconds"] > 0
        else 0.0
    )
    return ExperimentResult(
        name="ablation_engine",
        description=(
            "Wall-clock comparison of the batched array-native round engine "
            "against the legacy per-node path on identical deployments"
        ),
        rows=rows,
        metadata={
            "node_count": node_count,
            "k": k,
            "max_rounds": max_rounds,
            "seed": seed,
            "speedup_batched_over_legacy": speedup,
            "max_position_difference": max_position_diff,
            "max_range_difference": max_range_diff,
            "identical": max_position_diff == 0.0 and max_range_diff == 0.0,
        },
    )


def run_protocol_overhead(
    node_count: int = 30,
    k: int = 2,
    comm_range: float = 0.3,
    max_rounds: int = 60,
    epsilon: float = 1e-3,
    seed: int = 59,
    drop_probability: float = 0.0,
    engine: Optional[str] = None,
) -> ExperimentResult:
    """Communication cost of the distributed protocol per round.

    ``engine`` selects the distributed round backend (default:
    REPRO_ENGINE / batched); both backends produce identical counters,
    so this only affects wall-clock time.
    """
    if engine is None:
        engine = resolve_engine()
    spec = ScenarioSpec(
        name="ablation_protocol_overhead",
        pipeline="distributed",
        node_count=node_count,
        k=k,
        comm_range=comm_range,
        epsilon=epsilon,
        max_rounds=max_rounds,
        seed=seed,
        drop_probability=drop_probability,
        engine=engine,
    )
    result = execute_scenarios([spec])[0]
    rows: List[Dict] = []
    for round_stats in result["history"]:
        rows.append(
            {
                "round": round_stats["round_index"],
                "messages": round_stats.get("messages", 0),
                "transmissions": round_stats.get("transmissions", 0),
                "bytes": round_stats.get("bytes_sent", 0),
                "max_circumradius": round_stats["max_circumradius"],
            }
        )
    comm = result["communication"]
    return ExperimentResult(
        name="ablation_protocol_overhead",
        description="Per-round communication cost of the message-passing LAACAD protocol",
        rows=rows,
        metadata={
            "node_count": node_count,
            "k": k,
            "total_messages": comm["messages"],
            "total_bytes": comm["bytes_sent"],
            "dropped": comm["dropped"],
            "converged": result["converged"],
            "rounds": result["rounds_executed"],
            "drop_probability": drop_probability,
            "seed": seed,
        },
    )
