"""Ablation studies not present in the paper but implied by its design choices.

* **Step size alpha** — the convergence proof covers any alpha in (0, 1];
  the paper notes smaller alpha converges more slowly but more smoothly.
  The ablation quantifies rounds-to-convergence and final quality across
  alpha values.
* **Localized vs. global region computation** — Lemma 1 argues the
  expanding-ring computation is exact; the ablation runs both back-ends
  on identical networks and reports the ring depth actually needed and
  the (expected zero) difference in resulting sensing ranges.
* **Distributed protocol overhead** — messages and bytes needed per round
  by the message-passing runtime, versus coverage achieved.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import LaacadConfig
from repro.core.dominating import localized_dominating_region
from repro.core.laacad import LaacadRunner
from repro.experiments.common import ExperimentResult, resolve_engine
from repro.network.network import SensorNetwork
from repro.regions.shapes import unit_square
from repro.runtime.protocol import DistributedLaacadRunner
from repro.voronoi.dominating import compute_dominating_region


def run_alpha_ablation(
    alphas: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    node_count: int = 40,
    k: int = 2,
    comm_range: float = 0.25,
    max_rounds: int = 150,
    epsilon: float = 1e-3,
    seed: int = 51,
) -> ExperimentResult:
    """Step-size ablation: convergence speed and final quality vs alpha."""
    region = unit_square()
    rows: List[Dict] = []
    for alpha in alphas:
        network = SensorNetwork.from_corner_cluster(
            region, node_count, comm_range=comm_range, rng=np.random.default_rng(seed)
        )
        config = LaacadConfig(
            k=k, alpha=alpha, epsilon=epsilon, max_rounds=max_rounds, seed=seed,
            engine=resolve_engine(),
        )
        result = LaacadRunner(network, config).run()
        rows.append(
            {
                "alpha": alpha,
                "rounds": result.rounds_executed,
                "converged": result.converged,
                "max_sensing_range": result.max_sensing_range,
                "min_sensing_range": result.min_sensing_range,
                "total_movement": result.total_distance_traveled(),
            }
        )
    return ExperimentResult(
        name="ablation_alpha",
        description="Rounds to convergence and final quality for different step sizes alpha",
        rows=rows,
        metadata={"node_count": node_count, "k": k, "alphas": list(alphas), "seed": seed},
    )


def run_localized_ablation(
    node_count: int = 40,
    k_values: Sequence[int] = (1, 2, 3),
    comm_range: float = 0.25,
    seed: int = 53,
) -> ExperimentResult:
    """Localized (Algorithm 2) vs global dominating-region computation.

    For a random static deployment, every node's region is computed with
    both back-ends; the rows report the largest discrepancy in the
    derived sensing range (expected ~0) and the ring statistics of the
    localized computation.
    """
    region = unit_square()
    rows: List[Dict] = []
    for k in k_values:
        network = SensorNetwork.from_random(
            region, node_count, comm_range=comm_range, rng=np.random.default_rng(seed + k)
        )
        positions = network.positions()
        max_diff = 0.0
        hops: List[int] = []
        neighbors_used: List[int] = []
        for node in network.nodes:
            others = [p for j, p in enumerate(positions) if j != node.node_id]
            global_region = compute_dominating_region(
                node.position, others, region, k
            )
            local = localized_dominating_region(network, node.node_id, k)
            diff = abs(
                global_region.circumradius(node.position)
                - local.region.circumradius(node.position)
            )
            max_diff = max(max_diff, diff)
            hops.append(local.hops)
            neighbors_used.append(local.neighbors_used)
        rows.append(
            {
                "k": k,
                "max_range_difference": max_diff,
                "max_hops": max(hops),
                "mean_hops": float(np.mean(hops)),
                "mean_neighbors_used": float(np.mean(neighbors_used)),
                "node_count": node_count,
            }
        )
    return ExperimentResult(
        name="ablation_localized",
        description=(
            "Agreement between Algorithm 2 (expanding ring) and the global "
            "computation, with the locality (hops/neighbours) it needed"
        ),
        rows=rows,
        metadata={"node_count": node_count, "k_values": list(k_values), "seed": seed},
    )


def run_engine_ablation(
    node_count: int = 60,
    k: int = 2,
    comm_range: float = 0.25,
    max_rounds: int = 8,
    epsilon: float = 1e-3,
    seed: int = 57,
) -> ExperimentResult:
    """Batched vs. legacy round engine: wall time and result agreement.

    Runs the corner-cluster deployment once per backend on identical
    initial conditions and reports per-engine wall-clock time plus the
    largest discrepancy in final positions and sensing ranges (expected
    exactly zero — the engines are bitwise equivalent).
    """
    import time

    region = unit_square()
    rows: List[Dict] = []
    results = {}
    for engine in ("legacy", "batched"):
        network = SensorNetwork.from_corner_cluster(
            region, node_count, comm_range=comm_range, rng=np.random.default_rng(seed)
        )
        config = LaacadConfig(
            k=k, alpha=1.0, epsilon=epsilon, max_rounds=max_rounds, seed=seed, engine=engine
        )
        start = time.perf_counter()
        result = LaacadRunner(network, config).run()
        elapsed = time.perf_counter() - start
        results[engine] = result
        rows.append(
            {
                "engine": engine,
                "wall_seconds": elapsed,
                "rounds": result.rounds_executed,
                "converged": result.converged,
                "max_sensing_range": result.max_sensing_range,
                "min_sensing_range": result.min_sensing_range,
            }
        )
    legacy, batched = results["legacy"], results["batched"]
    max_position_diff = max(
        (
            max(abs(a[0] - b[0]), abs(a[1] - b[1]))
            for a, b in zip(legacy.final_positions, batched.final_positions)
        ),
        default=0.0,
    )
    max_range_diff = max(
        (abs(a - b) for a, b in zip(legacy.sensing_ranges, batched.sensing_ranges)),
        default=0.0,
    )
    speedup = (
        rows[0]["wall_seconds"] / rows[1]["wall_seconds"]
        if rows[1]["wall_seconds"] > 0
        else 0.0
    )
    return ExperimentResult(
        name="ablation_engine",
        description=(
            "Wall-clock comparison of the batched array-native round engine "
            "against the legacy per-node path on identical deployments"
        ),
        rows=rows,
        metadata={
            "node_count": node_count,
            "k": k,
            "max_rounds": max_rounds,
            "seed": seed,
            "speedup_batched_over_legacy": speedup,
            "max_position_difference": max_position_diff,
            "max_range_difference": max_range_diff,
            "identical": max_position_diff == 0.0 and max_range_diff == 0.0,
        },
    )


def run_protocol_overhead(
    node_count: int = 30,
    k: int = 2,
    comm_range: float = 0.3,
    max_rounds: int = 60,
    epsilon: float = 1e-3,
    seed: int = 59,
    drop_probability: float = 0.0,
) -> ExperimentResult:
    """Communication cost of the distributed protocol per round."""
    region = unit_square()
    network = SensorNetwork.from_random(
        region, node_count, comm_range=comm_range, rng=np.random.default_rng(seed)
    )
    config = LaacadConfig(
        k=k, alpha=1.0, epsilon=epsilon, max_rounds=max_rounds, seed=seed
    )
    runner = DistributedLaacadRunner(
        network, config, drop_probability=drop_probability
    )
    result, stats = runner.run()
    rows: List[Dict] = []
    for round_stats in result.history:
        rows.append(
            {
                "round": round_stats.round_index,
                "messages": getattr(round_stats, "messages", 0),
                "transmissions": getattr(round_stats, "transmissions", 0),
                "bytes": getattr(round_stats, "bytes_sent", 0),
                "max_circumradius": round_stats.max_circumradius,
            }
        )
    return ExperimentResult(
        name="ablation_protocol_overhead",
        description="Per-round communication cost of the message-passing LAACAD protocol",
        rows=rows,
        metadata={
            "node_count": node_count,
            "k": k,
            "total_messages": stats.messages,
            "total_bytes": stats.bytes_sent,
            "dropped": stats.dropped,
            "converged": result.converged,
            "rounds": result.rounds_executed,
            "drop_probability": drop_probability,
            "seed": seed,
        },
    )
