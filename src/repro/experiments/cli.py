"""Command-line entry point for the experiment runners and scenario sweeps.

Examples::

    laacad-experiments list
    laacad-experiments run fig6_convergence
    laacad-experiments run all --output-dir results --cache-dir .cache --jobs 4
    laacad-experiments sweep corner_cluster --grid k=1,2,3 --jobs 2
    REPRO_FULL_SCALE=1 laacad-experiments run table1_minnode

Preemptible runs (full mid-run checkpoints, bitwise-identical resume)::

    laacad-experiments run fig5_deployment --checkpoint-every 10 \
        --checkpoint-dir .ckpt
    # after an interruption, either re-run with the same flags (cells
    # resume from .ckpt) or resume one simulation directly:
    laacad-experiments run --resume-from .ckpt/<digest>.ckpt.json
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import os

from repro.experiments.ablations import (
    run_alpha_ablation,
    run_engine_ablation,
    run_localized_ablation,
    run_protocol_overhead,
)
from repro.experiments.common import (
    CACHE_DIR_ENV,
    ENGINE_ENV,
    JOBS_ENV,
    ExperimentResult,
    default_output_dir,
)
from repro.experiments.fig1_voronoi import run_fig1_voronoi
from repro.obs import trace as _trace
from repro.experiments.fig2_rings import run_fig2_rings
from repro.experiments.fig5_deployment import run_fig5_deployment
from repro.experiments.fig6_convergence import run_fig6_convergence
from repro.experiments.fig7_energy import run_fig7_energy
from repro.experiments.fig8_obstacles import run_fig8_obstacles
from repro.experiments.lifetime_comparison import run_lifetime_comparison
from repro.experiments.table1_minnode import run_table1_minnode
from repro.experiments.table2_ammari import run_table2_ammari

#: Registry of every runnable experiment, keyed by its CLI name.
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "fig1_voronoi": run_fig1_voronoi,
    "fig2_rings": run_fig2_rings,
    "fig5_deployment": run_fig5_deployment,
    "fig6_convergence": run_fig6_convergence,
    "fig7_energy": run_fig7_energy,
    "table1_minnode": run_table1_minnode,
    "table2_ammari": run_table2_ammari,
    "fig8_obstacles": run_fig8_obstacles,
    "ablation_alpha": run_alpha_ablation,
    "ablation_engine": run_engine_ablation,
    "ablation_localized": run_localized_ablation,
    "ablation_protocol_overhead": run_protocol_overhead,
    "lifetime_comparison": run_lifetime_comparison,
}


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by every command that executes scenarios."""
    parser.add_argument(
        "--trace-out",
        default=os.environ.get(_trace.TRACE_ENV) or None,
        metavar="PATH",
        help=(
            "Record trace spans for the whole command and write them at "
            "the end: *.jsonl for span rows, anything else for Chrome "
            "trace-event JSON (open it at https://ui.perfetto.dev).  "
            f"Default: the {_trace.TRACE_ENV} environment variable."
        ),
    )
    parser.add_argument(
        "--engine",
        choices=["batched", "legacy", "sparse"],
        default=None,
        help=(
            "Round-engine backend for the LAACAD runs (default: batched). "
            "batched and legacy are bitwise identical; sparse matches "
            "them within 1e-9 and scales sub-quadratically to large N."
        ),
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="Worker processes for the scenario sweeps (default: 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help=(
            "Directory of the content-addressed scenario-result cache; "
            "re-runs only compute missing cells (default: no cache)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "Write a full mid-run checkpoint every N rounds for every "
            "deployment scenario; interrupted runs resume "
            "bitwise-identically on re-run (default: no checkpoints)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help=(
            "Directory for the per-scenario checkpoint files (default "
            "with --checkpoint-every: <output-dir>/checkpoints).  Given "
            "on its own it enables checkpointing every 25 rounds"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="laacad-experiments",
        description="Reproduce the figures and tables of the LAACAD paper (ICDCS 2012).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="List available experiments and scenario families")

    run_parser = sub.add_parser("run", help="Run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="Experiment name (see 'list') or 'all'; optional with --resume-from FILE",
    )
    run_parser.add_argument(
        "--resume-from",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "Resume from a checkpoint: a .ckpt.json FILE resumes that "
            "single simulation to completion; a DIRECTORY is used as the "
            "checkpoint dir, so the named experiment's interrupted "
            "scenarios resume instead of restarting"
        ),
    )
    run_parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="Directory for CSV/JSON output (default: ./results)",
    )
    run_parser.add_argument(
        "--no-files",
        action="store_true",
        help="Only print the table, do not write CSV/JSON files",
    )
    run_parser.add_argument(
        "--max-rows",
        type=int,
        default=40,
        help="Maximum number of rows to print (default: 40)",
    )
    _add_sweep_options(run_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="Sweep a scenario family over a parameter grid"
    )
    sweep_parser.add_argument(
        "family",
        help="Scenario family name (see 'list')",
    )
    sweep_parser.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="PARAM=V1,V2,...",
        help=(
            "Sweep axis, repeatable (e.g. --grid k=1,2,3 "
            "--grid node_count=20,40).  Dotted paths reach into dict "
            "fields (--grid placement.cluster_fraction=0.1,0.2).  "
            "Default: the family's built-in grid."
        ),
    )
    sweep_parser.add_argument(
        "--set",
        action="append",
        default=[],
        dest="overrides",
        metavar="PARAM=VALUE",
        help="Fixed override applied to every scenario, repeatable",
    )
    sweep_parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="Directory for CSV/JSON output (default: ./results)",
    )
    sweep_parser.add_argument(
        "--no-files",
        action="store_true",
        help="Only print the table, do not write CSV/JSON files",
    )
    sweep_parser.add_argument(
        "--max-rows",
        type=int,
        default=40,
        help="Maximum number of rows to print (default: 40)",
    )
    _add_sweep_options(sweep_parser)
    return parser


def _run_one(
    name: str, output_dir: Optional[Path], write_files: bool, max_rows: int
) -> ExperimentResult:
    runner = EXPERIMENTS[name]
    print(f"== running {name} ==")
    result = runner()
    print(result.format_table(max_rows=max_rows))
    if write_files:
        out = output_dir if output_dir is not None else default_output_dir()
        csv_path = result.to_csv(out / f"{name}.csv")
        json_path = result.to_json(out / f"{name}.json")
        print(f"wrote {csv_path} and {json_path}")
    print()
    return result


def _apply_sweep_options(args: argparse.Namespace) -> None:
    """Thread --engine/--jobs/--cache-dir/--checkpoint-* into the environment."""
    from repro.api.checkpoint import CHECKPOINT_DIR_ENV, CHECKPOINT_EVERY_ENV

    if getattr(args, "engine", None):
        os.environ[ENGINE_ENV] = args.engine
    if getattr(args, "jobs", None):
        os.environ[JOBS_ENV] = str(args.jobs)
    if getattr(args, "cache_dir", None) is not None:
        os.environ[CACHE_DIR_ENV] = str(args.cache_dir)
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    resume_from = getattr(args, "resume_from", None)
    if resume_from is not None and resume_from.is_dir():
        checkpoint_dir = resume_from
    if getattr(args, "checkpoint_every", None):
        os.environ[CHECKPOINT_EVERY_ENV] = str(args.checkpoint_every)
        if checkpoint_dir is None:
            out = args.output_dir if getattr(args, "output_dir", None) else default_output_dir()
            checkpoint_dir = out / "checkpoints"
    if checkpoint_dir is not None:
        os.environ[CHECKPOINT_DIR_ENV] = str(checkpoint_dir)
        # A checkpoint dir without an explicit frequency (e.g. bare
        # --resume-from DIR) still checkpoints, at a conservative cadence.
        os.environ.setdefault(CHECKPOINT_EVERY_ENV, "25")


@contextlib.contextmanager
def _maybe_tracing(args: argparse.Namespace):
    """Trace the whole command when ``--trace-out`` (or the env) asks.

    ``""``/``"0"`` mean off; ``"1"`` collects without writing (the env
    knob's collect-only form); anything else is the output path.
    """
    trace_out = getattr(args, "trace_out", None)
    if trace_out in (None, "", "0"):
        yield
        return
    with _trace.tracing() as collector:
        yield
    if trace_out != "1":
        collector.write(trace_out)
        print(f"trace written to {trace_out} ({len(collector)} spans)")


def _resume_single(args: argparse.Namespace) -> int:
    """Resume one checkpointed simulation to completion and report it."""
    import json as _json

    from repro.api.checkpoint import resolve_checkpoint_every
    from repro.api.session import Simulation

    path: Path = args.resume_from
    try:
        session = Simulation.restore(path)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot restore checkpoint {path}: {exc}", file=sys.stderr)
        return 2
    state = session.state
    print(
        f"== resuming {state.kind} session from {path} "
        f"(round {state.rounds_executed}, {state.alive_count} alive nodes) =="
    )
    every = resolve_checkpoint_every()
    if every:
        result = session.run(checkpoint_every=every, checkpoint_path=path)
    else:
        result = session.run()
    print(
        f"converged: {result.converged} after {result.rounds_executed} rounds; "
        f"R* = {result.max_sensing_range:.6f}, "
        f"min range = {result.min_sensing_range:.6f}"
    )
    if not args.no_files:
        out = args.output_dir if args.output_dir is not None else default_output_dir()
        out.mkdir(parents=True, exist_ok=True)
        stem = path.name
        for suffix in (".ckpt.json", ".json", ".ckpt"):
            if stem.endswith(suffix):
                stem = stem[: -len(suffix)]
                break
        result_path = out / f"{stem}.result.json"
        result_path.write_text(_json.dumps(result.to_dict(), indent=2))
        print(f"wrote {result_path}")
    return 0


def _parse_grid_value(text: str) -> Any:
    """One grid value: JSON when it parses, bare string otherwise."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_grid_args(items: List[str]) -> Dict[str, List[Any]]:
    """``["k=1,2", "placement.kind=random"]`` -> ``{"k": [1, 2], ...}``."""
    grid: Dict[str, List[Any]] = {}
    for item in items:
        if "=" not in item:
            raise ValueError(f"grid axis {item!r} is not of the form PARAM=V1,V2,...")
        param, _, values = item.partition("=")
        grid[param.strip()] = [_parse_grid_value(v) for v in values.split(",")]
    return grid


def _sweep_rows(report) -> List[Dict[str, Any]]:
    """Flatten sweep outcomes into printable/CSV-able rows.

    Each row carries the scenario's varying knobs plus every scalar the
    pipeline reported (lists/dicts such as positions and histories stay
    in the cache files, addressed by the digest column).
    """
    rows: List[Dict[str, Any]] = []
    for outcome in report.outcomes:
        row: Dict[str, Any] = {
            "scenario": outcome.spec.name,
            "pipeline": outcome.spec.pipeline,
            "k": outcome.spec.k,
            "node_count": outcome.spec.node_count,
            "seed": outcome.spec.seed,
            "digest": outcome.spec.digest()[:12],
            "cached": outcome.cached,
        }
        for key, value in outcome.result.items():
            if isinstance(value, (int, float, bool, str)):
                row[key] = value
        rows.append(row)
    return rows


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.common import resolve_cache_dir, resolve_jobs
    from repro.scenarios import SweepRunner, get_family

    try:
        family = get_family(args.family)
    except KeyError:
        print(
            f"unknown scenario family {args.family!r}; use 'list' to see choices",
            file=sys.stderr,
        )
        return 2
    try:
        grid = _parse_grid_args(args.grid)
        overrides = {
            param.strip(): _parse_grid_value(value)
            for param, _, value in (item.partition("=") for item in args.overrides)
        }
        # Overridden parameters are pinned: they drop out of the default
        # grid instead of being swept away (see ScenarioFamily.grid).
        effective_grid = grid or {
            key: values
            for key, values in family.default_grid.items()
            if key not in overrides
        }
        specs = family.grid(effective_grid, **overrides)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    runner = SweepRunner(cache_dir=resolve_cache_dir(), jobs=resolve_jobs())
    print(f"== sweeping {family.name}: {len(specs)} scenarios ==")
    report = runner.run(specs)
    result = ExperimentResult(
        name=f"sweep_{family.name}",
        description=family.description,
        rows=_sweep_rows(report),
        metadata={
            "family": family.name,
            "grid": {k: list(v) for k, v in effective_grid.items()},
            "jobs": report.jobs,
            "cache_hits": report.hits,
            "cache_misses": report.misses,
            "elapsed_seconds": report.elapsed_seconds,
        },
    )
    print(result.format_table(max_rows=args.max_rows))
    print(report.summary())
    if not args.no_files:
        out = args.output_dir if args.output_dir is not None else default_output_dir()
        csv_path = result.to_csv(out / f"{result.name}.csv")
        json_path = result.to_json(out / f"{result.name}.json")
        print(f"wrote {csv_path} and {json_path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        from repro.scenarios import available_families, get_family

        print("experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print()
        print("scenario families (for 'sweep'):")
        for name in available_families():
            print(f"  {name}: {get_family(name).description}")
        return 0

    if args.command == "run":
        _apply_sweep_options(args)
        if args.resume_from is not None and args.resume_from.is_file():
            with _maybe_tracing(args):
                return _resume_single(args)
        if args.experiment is None:
            print(
                "an experiment name is required unless --resume-from points "
                "at a checkpoint file; use 'list' to see choices",
                file=sys.stderr,
            )
            return 2
        if args.resume_from is not None and not args.resume_from.exists():
            print(f"--resume-from path {args.resume_from} does not exist", file=sys.stderr)
            return 2
        if args.experiment != "all" and args.experiment not in EXPERIMENTS:
            print(
                f"unknown experiment {args.experiment!r}; use 'list' to see choices",
                file=sys.stderr,
            )
            return 2
        names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        with _maybe_tracing(args):
            for name in names:
                _run_one(name, args.output_dir, not args.no_files, args.max_rows)
        return 0

    if args.command == "sweep":
        _apply_sweep_options(args)
        with _maybe_tracing(args):
            return _run_sweep(args)

    return 2  # pragma: no cover - argparse enforces valid commands


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
