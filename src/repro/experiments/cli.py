"""Command-line entry point for the experiment runners.

Examples::

    laacad-experiments list
    laacad-experiments run fig6_convergence
    laacad-experiments run all --output-dir results
    REPRO_FULL_SCALE=1 laacad-experiments run table1_minnode
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

import os

from repro.experiments.ablations import (
    run_alpha_ablation,
    run_engine_ablation,
    run_localized_ablation,
    run_protocol_overhead,
)
from repro.experiments.common import ENGINE_ENV, ExperimentResult, default_output_dir
from repro.experiments.fig1_voronoi import run_fig1_voronoi
from repro.experiments.fig2_rings import run_fig2_rings
from repro.experiments.fig5_deployment import run_fig5_deployment
from repro.experiments.fig6_convergence import run_fig6_convergence
from repro.experiments.fig7_energy import run_fig7_energy
from repro.experiments.fig8_obstacles import run_fig8_obstacles
from repro.experiments.lifetime_comparison import run_lifetime_comparison
from repro.experiments.table1_minnode import run_table1_minnode
from repro.experiments.table2_ammari import run_table2_ammari

#: Registry of every runnable experiment, keyed by its CLI name.
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "fig1_voronoi": run_fig1_voronoi,
    "fig2_rings": run_fig2_rings,
    "fig5_deployment": run_fig5_deployment,
    "fig6_convergence": run_fig6_convergence,
    "fig7_energy": run_fig7_energy,
    "table1_minnode": run_table1_minnode,
    "table2_ammari": run_table2_ammari,
    "fig8_obstacles": run_fig8_obstacles,
    "ablation_alpha": run_alpha_ablation,
    "ablation_engine": run_engine_ablation,
    "ablation_localized": run_localized_ablation,
    "ablation_protocol_overhead": run_protocol_overhead,
    "lifetime_comparison": run_lifetime_comparison,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="laacad-experiments",
        description="Reproduce the figures and tables of the LAACAD paper (ICDCS 2012).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="List available experiments")

    run_parser = sub.add_parser("run", help="Run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help="Experiment name (see 'list') or 'all'",
    )
    run_parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="Directory for CSV/JSON output (default: ./results)",
    )
    run_parser.add_argument(
        "--no-files",
        action="store_true",
        help="Only print the table, do not write CSV/JSON files",
    )
    run_parser.add_argument(
        "--max-rows",
        type=int,
        default=40,
        help="Maximum number of rows to print (default: 40)",
    )
    run_parser.add_argument(
        "--engine",
        choices=["batched", "legacy"],
        default=None,
        help=(
            "Round-engine backend for the LAACAD runs (default: batched). "
            "Both produce identical results; this only changes speed."
        ),
    )
    return parser


def _run_one(
    name: str, output_dir: Optional[Path], write_files: bool, max_rows: int
) -> ExperimentResult:
    runner = EXPERIMENTS[name]
    print(f"== running {name} ==")
    result = runner()
    print(result.format_table(max_rows=max_rows))
    if write_files:
        out = output_dir if output_dir is not None else default_output_dir()
        csv_path = result.to_csv(out / f"{name}.csv")
        json_path = result.to_json(out / f"{name}.json")
        print(f"wrote {csv_path} and {json_path}")
    print()
    return result


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    if args.command == "run":
        if getattr(args, "engine", None):
            os.environ[ENGINE_ENV] = args.engine
        if args.experiment != "all" and args.experiment not in EXPERIMENTS:
            print(
                f"unknown experiment {args.experiment!r}; use 'list' to see choices",
                file=sys.stderr,
            )
            return 2
        names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        for name in names:
            _run_one(name, args.output_dir, not args.no_files, args.max_rows)
        return 0

    return 2  # pragma: no cover - argparse enforces valid commands


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
