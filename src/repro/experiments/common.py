"""Shared infrastructure for the experiment runners."""

from __future__ import annotations

import csv
import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

#: Environment variable that switches the runners to the paper's full
#: problem sizes (large node counts, long round budgets).  The default
#: "reduced" scale preserves the qualitative shapes while completing in
#: CI-friendly time; see DESIGN.md.
FULL_SCALE_ENV = "REPRO_FULL_SCALE"

#: Environment variable selecting the round-engine backend every
#: experiment runner uses ("batched", "legacy" or "sparse"); the CLI's
#: ``--engine`` flag sets it.  "batched" and "legacy" produce bitwise
#: identical results; "sparse" trades that for a 1e-9 tolerance
#: contract and sub-quadratic memory/time, unlocking node counts the
#: dense tiers cannot allocate (see DESIGN.md, "The sparse engine
#: tier").
ENGINE_ENV = "REPRO_ENGINE"

#: Worker processes every runner's scenario sweep uses; the CLI's
#: ``--jobs`` flag sets it.  The default (1) runs serially in-process.
JOBS_ENV = "REPRO_JOBS"

#: Directory of the content-addressed scenario-result cache; the CLI's
#: ``--cache-dir`` flag sets it.  Unset disables caching.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def resolve_scale() -> str:
    """Return ``"full"`` when REPRO_FULL_SCALE is set to a truthy value, else ``"reduced"``."""
    value = os.environ.get(FULL_SCALE_ENV, "").strip().lower()
    if value in {"1", "true", "yes", "full"}:
        return "full"
    return "reduced"


def resolve_engine() -> str:
    """Round-engine backend from REPRO_ENGINE (default ``"batched"``).

    Raises:
        ValueError: if REPRO_ENGINE is set to an unknown backend name —
            failing fast mirrors the engine registry, so a typo cannot
            silently benchmark the wrong backend.
    """
    value = os.environ.get(ENGINE_ENV, "").strip().lower()
    if not value:
        return "batched"
    from repro.engine import available_engines

    if value not in available_engines():
        raise ValueError(
            f"{ENGINE_ENV}={value!r} is not a known round engine; "
            f"available: {', '.join(available_engines())}"
        )
    return value


def resolve_jobs() -> int:
    """Sweep worker count from REPRO_JOBS (default 1 = serial).

    Raises:
        ValueError: for non-integer or non-positive settings.
    """
    value = os.environ.get(JOBS_ENV, "").strip()
    if not value:
        return 1
    jobs = int(value)
    if jobs < 1:
        raise ValueError(f"{JOBS_ENV} must be >= 1, got {jobs}")
    return jobs


def resolve_cache_dir() -> Optional[Path]:
    """Scenario cache directory from REPRO_CACHE_DIR (unset = no cache)."""
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(value) if value else None


def execute_scenarios(
    specs: Sequence["ScenarioSpec"],
    jobs: Optional[int] = None,
    cache_dir: Optional[Path] = None,
) -> List[Dict[str, Any]]:
    """Run a scenario list through the sweep orchestrator.

    Every experiment runner funnels its grid through here, so the CLI's
    ``--jobs`` / ``--cache-dir`` flags (via the environment) apply to all
    of them uniformly.  Results come back in input order.
    """
    from repro.scenarios.sweep import run_scenarios

    return run_scenarios(
        specs,
        cache_dir=resolve_cache_dir() if cache_dir is None else cache_dir,
        jobs=resolve_jobs() if jobs is None else jobs,
    )


@dataclasses.dataclass
class ExperimentResult:
    """Rows + metadata produced by one experiment runner.

    Attributes:
        name: experiment identifier (e.g. ``"fig6_convergence"``).
        description: one-line description of what the rows contain.
        rows: list of flat dictionaries — one per output series point.
        metadata: run parameters (node counts, k values, seeds, scale).
    """

    name: str
    description: str
    rows: List[Dict[str, Any]]
    metadata: Dict[str, Any] = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    def columns(self) -> List[str]:
        """Union of row keys, in first-appearance order."""
        cols: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def to_csv(self, path: Path | str) -> Path:
        """Write the rows to a CSV file; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.columns())
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)
        return path

    def to_json(self, path: Path | str) -> Path:
        """Write rows + metadata to a JSON file; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "name": self.name,
            "description": self.description,
            "metadata": self.metadata,
            "rows": self.rows,
        }
        path.write_text(json.dumps(payload, indent=2, default=float))
        return path

    def format_table(self, max_rows: Optional[int] = None) -> str:
        """Render the rows as a fixed-width ASCII table (for the CLI)."""
        columns = self.columns()
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        rendered: List[List[str]] = [columns]
        for row in rows:
            rendered.append([_format_value(row.get(col, "")) for col in columns])
        widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
        lines = []
        for idx, row in enumerate(rendered):
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
            if idx == 0:
                lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def filter_rows(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows whose values match every keyword criterion."""
        selected = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                selected.append(row)
        return selected


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def default_output_dir() -> Path:
    """Directory where the CLI writes result files (``./results``)."""
    return Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
