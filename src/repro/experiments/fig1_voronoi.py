"""Figure 1: k-order Voronoi partitions of 30 random nodes (k = 1..4).

The paper's Figure 1 is an illustration; the reproducible quantities are
the structural properties of the partition: the number of non-empty
cells, that the cells tile the whole area, the O(k(N-k)) bound on the
cell count, and — per node — the size of its dominating region.  The
runner emits one row per (k, summary) and, optionally, the raw cell
polygons for plotting by external tools.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.experiments.common import ExperimentResult, resolve_scale
from repro.regions.shapes import unit_square
from repro.voronoi.korder import KOrderVoronoiDiagram


def run_fig1_voronoi(
    node_count: int = 30,
    k_values: Sequence[int] = (1, 2, 3, 4),
    seed: int = 7,
    seed_resolution: Optional[int] = None,
) -> ExperimentResult:
    """Build the k-order Voronoi diagrams of Figure 1 and summarise them.

    Args:
        node_count: number of generator nodes (30 in the paper).
        k_values: orders to build.
        seed: RNG seed for the node placement.
        seed_resolution: grid resolution used to seed candidate generator
            sets (defaults to 60, or 90 at full scale).
    """
    scale = resolve_scale()
    if seed_resolution is None:
        seed_resolution = 90 if scale == "full" else 60
    region = unit_square()
    rng = np.random.default_rng(seed)
    sites = region.random_points(node_count, rng=rng)

    rows: List[dict] = []
    for k in k_values:
        diagram = KOrderVoronoiDiagram(sites, region, k, seed_resolution=seed_resolution)
        cells = diagram.cells()
        areas = [
            sum(
                _polygon_area(piece)
                for piece in pieces
            )
            for pieces in cells.values()
        ]
        dominating_areas = [
            diagram.dominating_region(i).area for i in range(node_count)
        ]
        rows.append(
            {
                "k": k,
                "num_cells": diagram.num_cells(),
                "cell_count_bound": diagram.cell_count_bound(),
                "total_cell_area": diagram.total_cell_area(),
                "region_area": region.area,
                "mean_cell_area": float(np.mean(areas)) if areas else 0.0,
                "mean_dominating_area": float(np.mean(dominating_areas)),
                "max_dominating_area": float(np.max(dominating_areas)),
            }
        )
    return ExperimentResult(
        name="fig1_voronoi",
        description=(
            "Structural summary of the k-order Voronoi partitions of Figure 1: "
            "cell counts, tiling area and dominating-region sizes"
        ),
        rows=rows,
        metadata={
            "node_count": node_count,
            "k_values": list(k_values),
            "seed": seed,
            "seed_resolution": seed_resolution,
            "scale": scale,
        },
    )


def _polygon_area(polygon: Iterable) -> float:
    from repro.geometry.polygon import polygon_area

    return polygon_area(list(polygon))
