"""Figure 1: k-order Voronoi partitions of 30 random nodes (k = 1..4).

The paper's Figure 1 is an illustration; the reproducible quantities are
the structural properties of the partition: the number of non-empty
cells, that the cells tile the whole area, the O(k(N-k)) bound on the
cell count, and — per node — the size of its dominating region.  The
runner emits one row per (k, summary) and, optionally, the raw cell
polygons for plotting by external tools.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.common import ExperimentResult, execute_scenarios, resolve_scale
from repro.scenarios import expand_grid, make_scenario


def run_fig1_voronoi(
    node_count: int = 30,
    k_values: Sequence[int] = (1, 2, 3, 4),
    seed: int = 7,
    seed_resolution: Optional[int] = None,
) -> ExperimentResult:
    """Build the k-order Voronoi diagrams of Figure 1 and summarise them.

    Args:
        node_count: number of generator nodes (30 in the paper).
        k_values: orders to build.
        seed: RNG seed for the node placement.
        seed_resolution: grid resolution used to seed candidate generator
            sets (defaults to 60, or 90 at full scale).
    """
    scale = resolve_scale()
    if seed_resolution is None:
        seed_resolution = 90 if scale == "full" else 60

    base = make_scenario(
        "voronoi_partition", node_count=node_count, seed=seed
    ).override("extra.seed_resolution", seed_resolution)
    specs = expand_grid(base, {"k": list(k_values)})
    results = execute_scenarios(specs)

    rows: List[dict] = []
    for k, result in zip(k_values, results):
        rows.append(
            {
                "k": k,
                "num_cells": result["num_cells"],
                "cell_count_bound": result["cell_count_bound"],
                "total_cell_area": result["total_cell_area"],
                "region_area": result["region_area"],
                "mean_cell_area": result["mean_cell_area"],
                "mean_dominating_area": result["mean_dominating_area"],
                "max_dominating_area": result["max_dominating_area"],
            }
        )
    return ExperimentResult(
        name="fig1_voronoi",
        description=(
            "Structural summary of the k-order Voronoi partitions of Figure 1: "
            "cell counts, tiling area and dominating-region sizes"
        ),
        rows=rows,
        metadata={
            "node_count": node_count,
            "k_values": list(k_values),
            "seed": seed,
            "seed_resolution": seed_resolution,
            "scale": scale,
        },
    )
