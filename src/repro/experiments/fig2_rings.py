"""Figure 2: locality of the dominating-region computation.

The paper places a node at the center of a regular (triangular) lattice
and reports, for k = 1..12, how far the expanding ring of Algorithm 2
must reach: 1 hop suffices for k = 1, 2 hops for k = 2..4, and 3 hops for
k = 5..12.  The runner reproduces the same sweep: it builds a triangular
lattice whose spacing equals the transmission range, runs Algorithm 2 at
the central node for each k, and reports the ring radius, hop count and
number of neighbours involved.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines.lattice import triangular_lattice
from repro.experiments.common import ExperimentResult, execute_scenarios
from repro.regions.shapes import square_region
from repro.scenarios import expand_grid, make_scenario


def run_fig2_rings(
    k_values: Sequence[int] = tuple(range(1, 13)),
    lattice_spacing: float = 0.1,
    region_side: float = 1.0,
    comm_factor: float = 1.2,
    seed: int = 13,
) -> ExperimentResult:
    """Reproduce the Figure 2 hop-requirement sweep on a triangular lattice.

    Args:
        k_values: coverage orders to probe (1..12 in the paper).
        lattice_spacing: distance between lattice neighbours.
        region_side: side of the square area holding the lattice.
        comm_factor: transmission range as a multiple of the lattice
            spacing.  The paper's figure assumes the transmission range
            slightly exceeds the nearest-neighbour distance (so the six
            closest nodes are one-hop neighbours and suffice for k = 1);
            1.2 reproduces that regime.
        seed: scenario seed.  The lattice probe itself is deterministic;
            the explicit seed keeps the scenario hash self-describing
            like every other runner's.
    """
    if comm_factor <= 0:
        raise ValueError("comm_factor must be positive")
    region = square_region(region_side)
    positions = triangular_lattice(region, lattice_spacing)
    if len(positions) <= max(k_values):
        raise ValueError("the lattice is too sparse for the requested k values")

    base = make_scenario(
        "ring_probe",
        region={"kind": "square", "side": region_side},
        comm_range=lattice_spacing * comm_factor,
        seed=seed,
    ).override("placement.spacing", lattice_spacing)
    base = base.override("extra.comm_factor", comm_factor)
    specs = expand_grid(base, {"k": list(k_values)})
    results = execute_scenarios(specs)
    central = results[0]["central_node"] if results else 0

    rows: List[dict] = []
    for k, result in zip(k_values, results):
        rows.append(
            {
                "k": k,
                "ring_radius": result["ring_radius"],
                "hops": result["hops"],
                "neighbors_used": result["neighbors_used"],
                "competitors_in_region": result["competitors_in_region"],
                "dominating_area": result["dominating_area"],
                "circumradius": result["circumradius"],
            }
        )
    return ExperimentResult(
        name="fig2_rings",
        description=(
            "Ring radius / hop depth required by Algorithm 2 at the central node "
            "of a triangular lattice, for k = 1..12 (Figure 2)"
        ),
        rows=rows,
        metadata={
            "k_values": list(k_values),
            "lattice_spacing": lattice_spacing,
            "region_side": region_side,
            "comm_factor": comm_factor,
            "lattice_size": len(positions),
            "central_node": central,
            "seed": seed,
        },
    )
