"""Figure 5: k-coverage deployments produced from a corner cluster.

The paper deploys 100 nodes at the bottom-left corner of a 1 km^2 square
and shows the converged deployments for k = 1..4, observing (i) full
k-coverage, (ii) an "even" distribution for k = 1, and (iii) an "even
clustering" distribution for k >= 2 where nodes gather in groups of
roughly k.  The runner reproduces the run and reports quantitative
versions of those observations: coverage fractions, the final sensing
ranges, and a clustering statistic (the ratio between each node's
nearest-neighbour distance and the lattice spacing a perfectly even
1-coverage deployment would have — small values for k >= 2 indicate the
paper's co-location clusters).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.coverage import evaluate_coverage
from repro.experiments.common import (
    ExperimentResult,
    execute_scenarios,
    resolve_engine,
    resolve_scale,
)
from repro.geometry.primitives import distance
from repro.regions.shapes import unit_square
from repro.scenarios import expand_grid, make_scenario


def nearest_neighbor_distances(positions: Sequence) -> List[float]:
    """Distance from every node to its nearest other node."""
    dists: List[float] = []
    for i, p in enumerate(positions):
        best = math.inf
        for j, q in enumerate(positions):
            if i == j:
                continue
            d = distance(p, q)
            if d < best:
                best = d
        dists.append(best)
    return dists


def clustering_statistic(positions: Sequence, k: int, region_area: float) -> float:
    """Mean nearest-neighbour distance normalised by the even-deployment spacing.

    A value near 1 means nodes are spread out individually ("even"
    distribution, expected for k = 1); values well below ``1/k`` indicate
    that nodes sit in tight groups (the paper's "even clustering" for
    k >= 2).
    """
    n = len(positions)
    if n < 2:
        return 0.0
    even_spacing = math.sqrt(region_area / n)
    nn = nearest_neighbor_distances(positions)
    return float(np.mean(nn)) / even_spacing


def run_fig5_deployment(
    node_count: Optional[int] = None,
    k_values: Sequence[int] = (1, 2, 3, 4),
    cluster_fraction: float = 0.15,
    comm_range: float = 0.25,
    max_rounds: Optional[int] = None,
    epsilon: float = 1e-3,
    seed: int = 11,
    coverage_resolution: int = 60,
    include_positions: bool = False,
    engine: Optional[str] = None,
) -> ExperimentResult:
    """Run the Figure 5 corner-cluster deployment for each k.

    Args:
        node_count: nodes to deploy (paper: 100; reduced scale: 60).
        k_values: coverage orders to run.
        cluster_fraction: size of the initial corner cluster.
        comm_range: transmission range ``gamma``.
        max_rounds: round cap (defaults by scale).
        epsilon: stopping tolerance.
        seed: RNG seed for the initial cluster.
        coverage_resolution: grid resolution of the coverage check.
        include_positions: embed the final node positions in the rows
            (one row per node per k) in addition to the summary rows.
        engine: round-engine backend ("batched" or "legacy"; defaults
            to the REPRO_ENGINE environment selection).
    """
    scale = resolve_scale()
    if engine is None:
        engine = resolve_engine()
    if node_count is None:
        node_count = 100 if scale == "full" else 60
    if max_rounds is None:
        max_rounds = 250 if scale == "full" else 120
    region = unit_square()

    base = make_scenario(
        "corner_cluster",
        node_count=node_count,
        comm_range=comm_range,
        alpha=1.0,
        epsilon=epsilon,
        max_rounds=max_rounds,
        seed=seed,
        engine=engine,
    ).override("placement.cluster_fraction", cluster_fraction)
    specs = expand_grid(base, {"k": list(k_values)})
    results = execute_scenarios(specs)

    rows: List[Dict] = []
    position_rows: List[Dict] = []
    for k, result in zip(k_values, results):
        final_positions = [tuple(p) for p in result["final_positions"]]
        coverage = evaluate_coverage(
            final_positions, result["sensing_ranges"], region, k,
            resolution=coverage_resolution,
        )
        rows.append(
            {
                "k": k,
                "node_count": node_count,
                "rounds": result["rounds_executed"],
                "converged": result["converged"],
                "max_sensing_range": result["max_sensing_range"],
                "min_sensing_range": result["min_sensing_range"],
                "coverage_fraction": coverage.fraction_k_covered,
                "min_coverage": coverage.min_coverage,
                "clustering_statistic": clustering_statistic(
                    final_positions, k, region.area
                ),
            }
        )
        if include_positions:
            for node_id, pos in enumerate(final_positions):
                position_rows.append(
                    {"k": k, "node_id": node_id, "x": pos[0], "y": pos[1]}
                )

    return ExperimentResult(
        name="fig5_deployment",
        description=(
            "Converged corner-cluster deployments for k = 1..4 (Figure 5): "
            "coverage, sensing ranges and clustering statistics"
        ),
        rows=rows + position_rows,
        metadata={
            "node_count": node_count,
            "k_values": list(k_values),
            "cluster_fraction": cluster_fraction,
            "comm_range": comm_range,
            "max_rounds": max_rounds,
            "seed": seed,
            "scale": scale,
            "engine": engine,
        },
    )
