"""Figure 6: convergence of LAACAD (max/min circumradius vs rounds).

Same setup as Figure 5 (corner cluster); the output series are, per
coverage order k and per round, the maximum and minimum circumradii over
all dominating regions.  The paper's observations to check: the maximum
trace is monotonically non-increasing, the minimum trace generally grows,
and the two nearly coincide at convergence (especially for larger k).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.traces import is_monotone_nonincreasing, relative_gap
from repro.experiments.common import (
    ExperimentResult,
    execute_scenarios,
    resolve_engine,
    resolve_scale,
)
from repro.scenarios import expand_grid, make_scenario


def run_fig6_convergence(
    node_count: Optional[int] = None,
    k_values: Sequence[int] = (1, 2, 3, 4),
    cluster_fraction: float = 0.15,
    comm_range: float = 0.25,
    max_rounds: Optional[int] = None,
    epsilon: float = 1e-3,
    alpha: float = 1.0,
    seed: int = 11,
    engine: Optional[str] = None,
) -> ExperimentResult:
    """Produce the Figure 6 convergence traces.

    Rows contain one entry per (k, round) with the max/min circumradius;
    the metadata carries the per-k summary (monotonicity of the max
    trace, final max/min gap, rounds to convergence).  ``engine``
    selects the round backend (default: REPRO_ENGINE / batched).
    """
    scale = resolve_scale()
    if engine is None:
        engine = resolve_engine()
    if node_count is None:
        node_count = 100 if scale == "full" else 60
    if max_rounds is None:
        max_rounds = 250 if scale == "full" else 120
    base = make_scenario(
        "corner_cluster",
        node_count=node_count,
        comm_range=comm_range,
        alpha=alpha,
        epsilon=epsilon,
        max_rounds=max_rounds,
        seed=seed,
        engine=engine,
    ).override("placement.cluster_fraction", cluster_fraction)
    specs = expand_grid(base, {"k": list(k_values)})
    results = execute_scenarios(specs)

    rows: List[Dict] = []
    summaries: Dict[str, Dict] = {}
    for k, result in zip(k_values, results):
        history = result["history"]
        max_trace = [stats["max_circumradius"] for stats in history]
        min_trace = [stats["min_circumradius"] for stats in history]
        for stats in history:
            rows.append(
                {
                    "k": k,
                    "round": stats["round_index"],
                    "max_circumradius": stats["max_circumradius"],
                    "min_circumradius": stats["min_circumradius"],
                    "max_displacement": stats["max_displacement"],
                }
            )
        summaries[str(k)] = {
            "rounds": result["rounds_executed"],
            "converged": result["converged"],
            # Proposition 4 guarantees monotonicity in exact arithmetic; the
            # tolerance absorbs the ~1e-4 wobble the clipping cascades and
            # Welzl restarts introduce for large k.
            "max_trace_monotone": is_monotone_nonincreasing(max_trace, tolerance=1e-4),
            "final_gap_relative": relative_gap(max_trace, min_trace),
            "final_max_circumradius": max_trace[-1] if max_trace else 0.0,
            "final_min_circumradius": min_trace[-1] if min_trace else 0.0,
        }

    return ExperimentResult(
        name="fig6_convergence",
        description=(
            "Per-round maximum and minimum circumradii for k = 1..4 from the "
            "corner-cluster start (Figure 6)"
        ),
        rows=rows,
        metadata={
            "node_count": node_count,
            "k_values": list(k_values),
            "alpha": alpha,
            "max_rounds": max_rounds,
            "seed": seed,
            "scale": scale,
            "engine": engine,
            "summaries": summaries,
        },
    )
