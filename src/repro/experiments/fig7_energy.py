"""Figure 7: sensing energy consumption vs network size.

The paper scales the network from 20 to 180 nodes on the 1 km^2 square
and reports, for k = 1..4, the maximum per-node sensing load
``max_i E(r_i)`` and the total load ``sum_i E(r_i)`` with
``E(r) = pi r^2``.  Expected shapes: both decrease with the node count,
larger k costs more, and the ratio of maximum loads between two coverage
orders is roughly the ratio of the orders (because LAACAD balances the
load, each node covers about ``k |A| / N``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.coverage import evaluate_coverage
from repro.analysis.energy import energy_report
from repro.experiments.common import (
    ExperimentResult,
    execute_scenarios,
    resolve_engine,
    resolve_scale,
)
from repro.regions.shapes import unit_square
from repro.scenarios import make_scenario


def run_fig7_energy(
    node_counts: Optional[Sequence[int]] = None,
    k_values: Optional[Sequence[int]] = None,
    comm_range: float = 0.25,
    max_rounds: Optional[int] = None,
    epsilon: float = 1e-3,
    seed: int = 23,
    verify_coverage: bool = True,
    coverage_resolution: int = 50,
) -> ExperimentResult:
    """Sweep the network size and coverage order, reporting sensing loads.

    Args:
        node_counts: network sizes (paper: 20..180 in steps of 40).
        k_values: coverage orders (paper: 1..4).
        comm_range: transmission range.
        max_rounds: per-run round cap (defaults by scale).
        epsilon: stopping tolerance.
        seed: base RNG seed (each configuration derives its own).
        verify_coverage: also run the grid coverage check per run.
        coverage_resolution: grid resolution of that check.
    """
    scale = resolve_scale()
    if node_counts is None:
        node_counts = (20, 60, 100, 140, 180) if scale == "full" else (20, 60, 100)
    if k_values is None:
        k_values = (1, 2, 3, 4) if scale == "full" else (1, 2, 3)
    if max_rounds is None:
        max_rounds = 150 if scale == "full" else 60
    region = unit_square()

    # The paper derives one deployment per (N, k) cell; the placement seed
    # is an explicit function of the cell so every run is reproducible in
    # isolation.
    cells = [(n, k) for n in node_counts for k in k_values if n >= k]
    specs = [
        make_scenario(
            "open_field",
            node_count=n,
            k=k,
            comm_range=comm_range,
            alpha=1.0,
            epsilon=epsilon,
            max_rounds=max_rounds,
            seed=seed,
            placement_seed=seed + 1000 * n + k,
            engine=resolve_engine(),
        )
        for n, k in cells
    ]
    results = execute_scenarios(specs)

    rows: List[Dict] = []
    for (n, k), result in zip(cells, results):
        report = energy_report(result["sensing_ranges"])
        row = {
            "node_count": n,
            "k": k,
            "rounds": result["rounds_executed"],
            "converged": result["converged"],
            "max_sensing_range": result["max_sensing_range"],
            "max_load": report.max_load,
            "total_load": report.total_load,
            "mean_load": report.mean_load,
            "load_imbalance": report.imbalance,
        }
        if verify_coverage:
            coverage = evaluate_coverage(
                [tuple(p) for p in result["final_positions"]],
                result["sensing_ranges"],
                region,
                k,
                resolution=coverage_resolution,
            )
            row["coverage_fraction"] = coverage.fraction_k_covered
        rows.append(row)

    return ExperimentResult(
        name="fig7_energy",
        description=(
            "Maximum and total sensing load vs network size for k-coverage "
            "(Figure 7a/7b), with E(r) = pi r^2"
        ),
        rows=rows,
        metadata={
            "node_counts": list(node_counts),
            "k_values": list(k_values),
            "comm_range": comm_range,
            "max_rounds": max_rounds,
            "seed": seed,
            "scale": scale,
        },
    )
