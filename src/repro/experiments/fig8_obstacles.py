"""Figure 8: adaptability to irregular areas and obstacles.

Two irregular target areas (non-convex boundary, interior obstacles) are
k-covered for several coverage orders; the reproducible quantities are
full k-coverage of the free area, the achieved sensing ranges and the
clustering statistic (the "even clustering" behaviour should re-appear
despite the irregular geometry, as the paper observes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.coverage import evaluate_coverage
from repro.experiments.common import (
    ExperimentResult,
    execute_scenarios,
    resolve_engine,
    resolve_scale,
)
from repro.experiments.fig5_deployment import clustering_statistic
from repro.regions.shapes import figure8_region_one, figure8_region_two
from repro.scenarios import make_scenario


def run_fig8_obstacles(
    node_count: Optional[int] = None,
    k_values: Optional[Sequence[int]] = None,
    comm_range: float = 0.25,
    max_rounds: Optional[int] = None,
    epsilon: float = 1e-3,
    seed: int = 41,
    coverage_resolution: int = 60,
) -> ExperimentResult:
    """Run LAACAD on the two Figure 8 irregular areas.

    Args:
        node_count: nodes per run (reduced scale uses fewer).
        k_values: coverage orders (paper: 2, 4, 6, 8).
        comm_range: transmission range.
        max_rounds: per-run round cap.
        epsilon: stopping tolerance.
        seed: base RNG seed.
        coverage_resolution: grid resolution of the coverage check.
    """
    scale = resolve_scale()
    if node_count is None:
        node_count = 120 if scale == "full" else 50
    if k_values is None:
        k_values = (2, 4, 6, 8) if scale == "full" else (2, 4)
    if max_rounds is None:
        max_rounds = 200 if scale == "full" else 80

    regions = {
        "region-I": ("obstacle_field", figure8_region_one()),
        "region-II": ("l_hall_obstacles", figure8_region_two()),
    }
    cells = [
        (region_name, family, region, k)
        for region_name, (family, region) in regions.items()
        for k in k_values
    ]
    specs = [
        make_scenario(
            family,
            node_count=node_count,
            k=k,
            comm_range=comm_range,
            alpha=1.0,
            epsilon=epsilon,
            max_rounds=max_rounds,
            seed=seed,
            placement_seed=seed + k,
            engine=resolve_engine(),
        )
        for _, family, _, k in cells
    ]
    results = execute_scenarios(specs)

    rows: List[Dict] = []
    for (region_name, _, region, k), result in zip(cells, results):
        final_positions = [tuple(p) for p in result["final_positions"]]
        coverage = evaluate_coverage(
            final_positions,
            result["sensing_ranges"],
            region,
            k,
            resolution=coverage_resolution,
        )
        all_free = all(region.contains(p) for p in final_positions)
        rows.append(
            {
                "region": region_name,
                "k": k,
                "node_count": node_count,
                "rounds": result["rounds_executed"],
                "converged": result["converged"],
                "max_sensing_range": result["max_sensing_range"],
                "min_sensing_range": result["min_sensing_range"],
                "coverage_fraction": coverage.fraction_k_covered,
                "min_coverage": coverage.min_coverage,
                "all_nodes_in_free_area": all_free,
                "clustering_statistic": clustering_statistic(
                    final_positions, k, region.area
                ),
            }
        )

    return ExperimentResult(
        name="fig8_obstacles",
        description=(
            "k-coverage of irregular areas with obstacles (Figure 8): coverage "
            "fractions, ranges and clustering on two non-convex regions"
        ),
        rows=rows,
        metadata={
            "node_count": node_count,
            "k_values": list(k_values),
            "comm_range": comm_range,
            "max_rounds": max_rounds,
            "seed": seed,
            "scale": scale,
            "regions": list(regions.keys()),
        },
    )
