"""Lifetime comparison: LAACAD vs static deployments (extension experiment).

The paper's motivation for minimising the *maximum* sensing range is
network lifetime: the most-loaded node dies first.  This extension
experiment quantifies that argument.  For the same node count and
coverage order it compares three deployments:

* **LAACAD** — nodes moved by Algorithm 1, each using the sensing range
  its dominating region requires;
* **static random** — nodes stay where they landed; each node's sensing
  range is again the circumradius of its dominating region (the minimum
  that preserves k-coverage without moving);
* **lattice** — a triangular lattice of the same node count with the
  per-node ranges its dominating regions require (the centralized
  "blueprint" alternative).

For each deployment it reports the maximum load and the time until the
first node exhausts a unit battery (``repro.analysis.lifetime``).  The
expected shape: LAACAD's first-death time is far better than the static
random deployment's and close to the (centrally planned) lattice's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.coverage import coverage_fraction
from repro.analysis.energy import energy_report
from repro.analysis.lifetime import lifetime_report
from repro.baselines.lattice import lattice_for_count
from repro.core.config import LaacadConfig
from repro.core.laacad import run_laacad
from repro.experiments.common import ExperimentResult, resolve_engine
from repro.geometry.primitives import Point
from repro.regions.region import Region
from repro.regions.shapes import unit_square
from repro.voronoi.dominating import compute_dominating_region


def _static_ranges(positions: Sequence[Point], region: Region, k: int) -> List[float]:
    """Minimum per-node sensing ranges that k-cover the area without moving."""
    ranges: List[float] = []
    for i, pos in enumerate(positions):
        others = [p for j, p in enumerate(positions) if j != i]
        dom = compute_dominating_region(pos, others, region, k)
        ranges.append(dom.circumradius(pos))
    return ranges


def run_lifetime_comparison(
    node_count: int = 40,
    k: int = 2,
    comm_range: float = 0.3,
    max_rounds: int = 80,
    epsilon: float = 2e-3,
    seed: int = 61,
    battery_capacity: float = 1.0,
    coverage_resolution: int = 45,
) -> ExperimentResult:
    """Compare LAACAD against static random and lattice deployments in lifetime terms.

    Args:
        node_count: nodes in every deployment.
        k: coverage order.
        comm_range: transmission range used by the LAACAD run.
        max_rounds: LAACAD round cap.
        epsilon: LAACAD stopping tolerance.
        seed: RNG seed for the shared random initial positions.
        battery_capacity: per-node energy budget for the lifetime model.
        coverage_resolution: grid resolution of the coverage check.
    """
    region = unit_square()
    rng = np.random.default_rng(seed)
    initial_positions = region.random_points(node_count, rng=rng)

    deployments: Dict[str, Dict[str, object]] = {}

    # LAACAD (mobile nodes).
    config = LaacadConfig(
        k=k, alpha=1.0, epsilon=epsilon, max_rounds=max_rounds, seed=seed,
        engine=resolve_engine(),
    )
    laacad = run_laacad(region, initial_positions, config, comm_range=comm_range)
    deployments["laacad"] = {
        "positions": laacad.final_positions,
        "ranges": laacad.sensing_ranges,
    }

    # Static random (no movement, ranges sized to keep k-coverage).
    deployments["static-random"] = {
        "positions": list(initial_positions),
        "ranges": _static_ranges(initial_positions, region, k),
    }

    # Triangular lattice of the same size (centralized blueprint).
    lattice_positions = lattice_for_count(region, node_count, kind="triangular")
    deployments["lattice"] = {
        "positions": lattice_positions,
        "ranges": _static_ranges(lattice_positions, region, k),
    }

    rows: List[Dict] = []
    for name, deployment in deployments.items():
        positions = deployment["positions"]
        ranges = deployment["ranges"]
        energy = energy_report(ranges)
        lifetime = lifetime_report(ranges, battery_capacity=battery_capacity)
        rows.append(
            {
                "deployment": name,
                "node_count": len(positions),
                "k": k,
                "coverage_fraction": coverage_fraction(
                    positions, ranges, region, k, resolution=coverage_resolution
                ),
                "max_sensing_range": max(ranges) if ranges else 0.0,
                "max_load": energy.max_load,
                "total_load": energy.total_load,
                "first_death_time": lifetime.first_death,
                "lifetime_ratio_to_balanced": lifetime.lifetime_ratio_to_balanced,
            }
        )

    return ExperimentResult(
        name="lifetime_comparison",
        description=(
            "Network lifetime (time to first battery death) of LAACAD vs a "
            "static random deployment and a centrally planned lattice"
        ),
        rows=rows,
        metadata={
            "node_count": node_count,
            "k": k,
            "comm_range": comm_range,
            "max_rounds": max_rounds,
            "seed": seed,
            "battery_capacity": battery_capacity,
        },
    )
