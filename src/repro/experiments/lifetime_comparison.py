"""Lifetime comparison: LAACAD vs static deployments (extension experiment).

The paper's motivation for minimising the *maximum* sensing range is
network lifetime: the most-loaded node dies first.  This extension
experiment quantifies that argument.  For the same node count and
coverage order it compares three deployments:

* **LAACAD** — nodes moved by Algorithm 1, each using the sensing range
  its dominating region requires;
* **static random** — nodes stay where they landed; each node's sensing
  range is again the circumradius of its dominating region (the minimum
  that preserves k-coverage without moving);
* **lattice** — a triangular lattice of the same node count with the
  per-node ranges its dominating regions require (the centralized
  "blueprint" alternative).

For each deployment it reports the maximum load and the time until the
first node exhausts a unit battery (``repro.analysis.lifetime``).  The
expected shape: LAACAD's first-death time is far better than the static
random deployment's and close to the (centrally planned) lattice's.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.coverage import coverage_fraction
from repro.analysis.energy import energy_report
from repro.analysis.lifetime import lifetime_report
from repro.experiments.common import ExperimentResult, execute_scenarios, resolve_engine
from repro.regions.shapes import unit_square
from repro.scenarios import make_scenario


def run_lifetime_comparison(
    node_count: int = 40,
    k: int = 2,
    comm_range: float = 0.3,
    max_rounds: int = 80,
    epsilon: float = 2e-3,
    seed: int = 61,
    battery_capacity: float = 1.0,
    coverage_resolution: int = 45,
) -> ExperimentResult:
    """Compare LAACAD against static random and lattice deployments in lifetime terms.

    Args:
        node_count: nodes in every deployment.
        k: coverage order.
        comm_range: transmission range used by the LAACAD run.
        max_rounds: LAACAD round cap.
        epsilon: LAACAD stopping tolerance.
        seed: RNG seed for the shared random initial positions.
        battery_capacity: per-node energy budget for the lifetime model.
        coverage_resolution: grid resolution of the coverage check.
    """
    region = unit_square()

    # Three deployments over the same target area: the LAACAD run (mobile
    # nodes), a static random deployment with ranges sized to keep
    # k-coverage, and a triangular-lattice "blueprint" of the same size.
    shared = dict(
        node_count=node_count,
        k=k,
        comm_range=comm_range,
        seed=seed,
    )
    deployments = [
        (
            "laacad",
            make_scenario(
                "open_field",
                alpha=1.0,
                epsilon=epsilon,
                max_rounds=max_rounds,
                engine=resolve_engine(),
                **shared,
            ),
        ),
        ("static-random", make_scenario("static_blueprint", **shared)),
        (
            "lattice",
            make_scenario("static_blueprint", **shared).override(
                "placement", {"kind": "lattice", "lattice": "triangular"}
            ),
        ),
    ]
    results = execute_scenarios([spec for _, spec in deployments])

    rows: List[Dict] = []
    for (name, _), result in zip(deployments, results):
        positions = [tuple(p) for p in result["final_positions"]]
        ranges = result["sensing_ranges"]
        energy = energy_report(ranges)
        lifetime = lifetime_report(ranges, battery_capacity=battery_capacity)
        rows.append(
            {
                "deployment": name,
                "node_count": len(positions),
                "k": k,
                "coverage_fraction": coverage_fraction(
                    positions, ranges, region, k, resolution=coverage_resolution
                ),
                "max_sensing_range": max(ranges) if ranges else 0.0,
                "max_load": energy.max_load,
                "total_load": energy.total_load,
                "first_death_time": lifetime.first_death,
                "lifetime_ratio_to_balanced": lifetime.lifetime_ratio_to_balanced,
            }
        )

    return ExperimentResult(
        name="lifetime_comparison",
        description=(
            "Network lifetime (time to first battery death) of LAACAD vs a "
            "static random deployment and a centrally planned lattice"
        ),
        rows=rows,
        metadata={
            "node_count": node_count,
            "k": k,
            "comm_range": comm_range,
            "max_rounds": max_rounds,
            "seed": seed,
            "battery_capacity": battery_capacity,
        },
    )
