"""Table I: LAACAD vs the optimal 2-coverage density of Bai et al. [3].

The paper runs LAACAD with N = 1000..1600 nodes on the 1 km^2 square,
reads off the achieved maximum sensing range ``R*``, and computes the
minimum node count the Bai et al. density would need at that range::

    N*_{k=2} = 4 |A| / (3 sqrt(3) R*^2)

The observation to reproduce: LAACAD uses roughly 15 % more nodes than
the (boundary-effect-free) lower bound.

The full-scale node counts are expensive in a pure-Python geometry
engine, so the default (reduced) sweep uses smaller networks; the
LAACAD-to-bound ratio is scale-free, so the ~1.1-1.2x shape survives the
reduction.  Set ``REPRO_FULL_SCALE=1`` to run the paper's exact sizes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.bai import bai_minimum_nodes
from repro.experiments.common import (
    ExperimentResult,
    execute_scenarios,
    resolve_engine,
    resolve_scale,
)
from repro.regions.shapes import unit_square
from repro.scenarios import make_scenario


def run_table1_minnode(
    node_counts: Optional[Sequence[int]] = None,
    comm_range: float = 0.1,
    max_rounds: Optional[int] = None,
    epsilon: float = 1e-3,
    seed: int = 31,
) -> ExperimentResult:
    """Reproduce Table I (min-node 2-coverage comparison).

    Args:
        node_counts: LAACAD network sizes (paper: 1000, 1200, 1400, 1600).
        comm_range: transmission range (smaller than the default because
            the Table I networks are much denser).
        max_rounds: per-run round cap.
        epsilon: stopping tolerance.
        seed: base RNG seed.
    """
    scale = resolve_scale()
    if node_counts is None:
        node_counts = (1000, 1200, 1400, 1600) if scale == "full" else (150, 200, 250)
    if max_rounds is None:
        max_rounds = 120 if scale == "full" else 60
    region = unit_square()

    specs = [
        make_scenario(
            "dense_uniform",
            node_count=n,
            k=2,
            comm_range=comm_range,
            alpha=1.0,
            epsilon=epsilon,
            max_rounds=max_rounds,
            seed=seed,
            placement_seed=seed + n,
            engine=resolve_engine(),
        )
        for n in node_counts
    ]
    results = execute_scenarios(specs)

    rows: List[Dict] = []
    for n, result in zip(node_counts, results):
        r_star = result["max_sensing_range"]
        bound = bai_minimum_nodes(region.area, r_star)
        rows.append(
            {
                "node_count": n,
                "max_sensing_range": r_star,
                "bai_minimum_nodes": bound,
                "laacad_over_bound": n / bound if bound else float("inf"),
                "rounds": result["rounds_executed"],
                "converged": result["converged"],
            }
        )

    return ExperimentResult(
        name="table1_minnode",
        description=(
            "LAACAD node count vs the Bai et al. 2-coverage minimum at the "
            "achieved sensing range (Table I)"
        ),
        rows=rows,
        metadata={
            "node_counts": list(node_counts),
            "comm_range": comm_range,
            "max_rounds": max_rounds,
            "seed": seed,
            "scale": scale,
        },
    )
