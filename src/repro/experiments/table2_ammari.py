"""Table II: LAACAD vs the Reuleaux-lens deployment of Ammari & Das [15].

The paper deploys 180 nodes, runs LAACAD for k = 3..8, reads the achieved
maximum sensing range ``R*_k``, and computes how many nodes the lens
deployment would need at that range::

    N*_k = 6 k |A| / ((4 pi - 3 sqrt 3) R*_k^2)

The observation to reproduce: the lens strategy needs substantially more
nodes than the 180 LAACAD uses, for every k.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.ammari import ammari_node_count
from repro.experiments.common import (
    ExperimentResult,
    execute_scenarios,
    resolve_engine,
    resolve_scale,
)
from repro.regions.shapes import unit_square
from repro.scenarios import make_scenario


def run_table2_ammari(
    node_count: Optional[int] = None,
    k_values: Optional[Sequence[int]] = None,
    comm_range: float = 0.25,
    max_rounds: Optional[int] = None,
    epsilon: float = 1e-3,
    seed: int = 37,
) -> ExperimentResult:
    """Reproduce Table II (k-coverage node requirement comparison).

    Args:
        node_count: LAACAD network size (paper: 180).
        k_values: coverage orders (paper: 3..8).
        comm_range: transmission range.
        max_rounds: per-run round cap.
        epsilon: stopping tolerance.
        seed: RNG seed.
    """
    scale = resolve_scale()
    if node_count is None:
        node_count = 180 if scale == "full" else 80
    if k_values is None:
        k_values = (3, 4, 5, 6, 7, 8) if scale == "full" else (3, 4, 5)
    if max_rounds is None:
        max_rounds = 150 if scale == "full" else 60
    region = unit_square()

    specs = [
        make_scenario(
            "open_field",
            node_count=node_count,
            k=k,
            comm_range=comm_range,
            alpha=1.0,
            epsilon=epsilon,
            max_rounds=max_rounds,
            seed=seed,
            placement_seed=seed + k,
            engine=resolve_engine(),
        )
        for k in k_values
    ]
    results = execute_scenarios(specs)

    rows: List[Dict] = []
    for k, result in zip(k_values, results):
        r_star = result["max_sensing_range"]
        ammari_nodes = ammari_node_count(region.area, r_star, k)
        rows.append(
            {
                "k": k,
                "laacad_nodes": node_count,
                "max_sensing_range": r_star,
                "ammari_nodes": ammari_nodes,
                "ammari_over_laacad": ammari_nodes / node_count,
                "rounds": result["rounds_executed"],
                "converged": result["converged"],
            }
        )

    return ExperimentResult(
        name="table2_ammari",
        description=(
            "Nodes required by the Ammari-Das lens deployment at LAACAD's "
            "achieved sensing range, for k >= 3 (Table II)"
        ),
        rows=rows,
        metadata={
            "node_count": node_count,
            "k_values": list(k_values),
            "comm_range": comm_range,
            "max_rounds": max_rounds,
            "seed": seed,
            "scale": scale,
        },
    )
