"""Computational-geometry substrate for the LAACAD reproduction.

Everything LAACAD needs geometrically is implemented here from scratch
(no shapely / CGAL): robust-enough 2-D predicates, convex hulls, convex
polygon clipping, general polygon utilities, polygon triangulation (with
holes), circles, smallest enclosing circles (Welzl), Chebyshev centers
and perpendicular bisectors.

The public surface is re-exported below so that callers can simply write
``from repro.geometry import convex_hull, welzl_disk, HalfPlane``.
"""

from repro.geometry.primitives import (
    EPS,
    Point,
    almost_equal,
    centroid_of_points,
    cross,
    distance,
    distance_sq,
    dot,
    lerp,
    midpoint,
    norm,
    normalize,
    perpendicular,
    points_close,
    sub,
    add,
    scale,
)
from repro.geometry.predicates import (
    Orientation,
    collinear,
    in_circle,
    orientation,
    point_segment_distance,
    segments_intersect,
)
from repro.geometry.convex import convex_hull, is_convex_polygon
from repro.geometry.polygon import (
    bounding_box,
    ensure_ccw,
    point_in_polygon,
    point_on_polygon_boundary,
    polygon_area,
    polygon_centroid,
    polygon_diameter,
    polygon_edges,
    polygon_perimeter,
    signed_area,
)
from repro.geometry.clipping import (
    HalfPlane,
    clip_polygon_halfplane,
    clip_polygon_polygon,
    halfplane_from_bisector,
    polygon_intersection_convex,
)
from repro.geometry.circle import Circle, circle_from_2, circle_from_3
from repro.geometry.welzl import welzl_disk
from repro.geometry.chebyshev import (
    chebyshev_center_of_points,
    chebyshev_center_of_polygon,
    circumradius_from,
    farthest_point_distance,
)
from repro.geometry.bisector import perpendicular_bisector_halfplane
from repro.geometry.triangulate import triangulate_polygon, triangulate_with_holes

__all__ = [
    "EPS",
    "Point",
    "almost_equal",
    "centroid_of_points",
    "cross",
    "distance",
    "distance_sq",
    "dot",
    "lerp",
    "midpoint",
    "norm",
    "normalize",
    "perpendicular",
    "points_close",
    "sub",
    "add",
    "scale",
    "Orientation",
    "collinear",
    "in_circle",
    "orientation",
    "point_segment_distance",
    "segments_intersect",
    "convex_hull",
    "is_convex_polygon",
    "bounding_box",
    "ensure_ccw",
    "point_in_polygon",
    "point_on_polygon_boundary",
    "polygon_area",
    "polygon_centroid",
    "polygon_diameter",
    "polygon_edges",
    "polygon_perimeter",
    "signed_area",
    "HalfPlane",
    "clip_polygon_halfplane",
    "clip_polygon_polygon",
    "halfplane_from_bisector",
    "polygon_intersection_convex",
    "Circle",
    "circle_from_2",
    "circle_from_3",
    "welzl_disk",
    "chebyshev_center_of_points",
    "chebyshev_center_of_polygon",
    "circumradius_from",
    "farthest_point_distance",
    "perpendicular_bisector_halfplane",
    "triangulate_polygon",
    "triangulate_with_holes",
]
