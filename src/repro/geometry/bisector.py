"""Perpendicular bisectors between sensor-node sites.

A thin wrapper around :func:`repro.geometry.clipping.halfplane_from_bisector`
providing the site-pair helpers the Voronoi engine uses, plus handling of
coincident sites, which genuinely occur in LAACAD: for small node counts
and large ``k`` the converged deployment co-locates nodes (Sec. IV-C's
three-node 3-coverage example).
"""

from __future__ import annotations

from typing import Optional

from repro.geometry.clipping import HalfPlane, halfplane_from_bisector
from repro.geometry.primitives import EPS, Point, distance


def perpendicular_bisector_halfplane(
    site: Point, other: Point, eps: float = EPS
) -> Optional[HalfPlane]:
    """Half-plane of points at least as close to ``site`` as to ``other``.

    Returns ``None`` when the two sites coincide (within ``eps``): in
    that case neither site is ever strictly closer than the other, so in
    the dominating-region computation the "other" site never *excludes*
    any point from ``site``'s region — callers treat ``None`` as
    "no constraint from this competitor" on the closer side, and must
    separately count the co-located competitor when tallying how many
    nodes are strictly closer (it never is).
    """
    if distance(site, other) <= eps:
        return None
    return halfplane_from_bisector(site, other)
