"""Chebyshev centers (Definition 2 of the paper).

The Chebyshev center of a set ``S`` is the point minimizing the maximum
distance to any point of ``S`` — i.e. the center of the smallest circle
enclosing ``S``.  For a (union of) polygon(s) the maximum distance from
any candidate center is attained at a vertex of the convex hull, so the
smallest enclosing circle of the *vertices* gives the exact Chebyshev
center; this is exactly how the paper applies Welzl's algorithm.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.geometry.circle import Circle
from repro.geometry.primitives import Point, distance
from repro.geometry.welzl import welzl_disk


def chebyshev_center_of_points(
    points: Sequence[Point], seed: Optional[int] = 0
) -> Tuple[Point, float]:
    """Chebyshev center and radius of a finite point set.

    Returns the pair ``(center, circumradius)``.

    Raises:
        ValueError: if the point set is empty.
    """
    pts = list(points)
    if not pts:
        raise ValueError("Chebyshev center of an empty point set is undefined")
    circle = welzl_disk(pts, seed=seed)
    return circle.center, circle.radius


def chebyshev_center_of_polygon(
    polygon: Sequence[Point], seed: Optional[int] = 0
) -> Tuple[Point, float]:
    """Chebyshev center of a single polygon (min–max over its vertices)."""
    if len(polygon) < 1:
        raise ValueError("Chebyshev center of an empty polygon is undefined")
    return chebyshev_center_of_points(list(polygon), seed=seed)


def chebyshev_center_of_pieces(
    pieces: Iterable[Sequence[Point]], seed: Optional[int] = 0
) -> Tuple[Point, float]:
    """Chebyshev center of a union of polygons (e.g. a dominating region).

    The union's farthest point from any center is still a vertex of the
    union's convex hull, so pooling the vertices of all pieces is exact.
    Adjacent pieces of a clipped region share boundary vertices exactly,
    so the pool is deduplicated (insertion-ordered, hence deterministic)
    before running Welzl — duplicates cannot change the smallest
    enclosing circle but would inflate its input.
    """
    vertices: List[Point] = []
    for piece in pieces:
        vertices.extend(piece)
    if not vertices:
        raise ValueError("Chebyshev center of an empty region is undefined")
    unique = list(dict.fromkeys(vertices))
    return chebyshev_center_of_points(unique, seed=seed)


def farthest_point_distance(origin: Point, points: Sequence[Point]) -> float:
    """Maximum distance from ``origin`` to any point of the collection."""
    pts = list(points)
    if not pts:
        raise ValueError("farthest point of an empty set is undefined")
    return max(distance(origin, p) for p in pts)


def circumradius_from(origin: Point, pieces: Iterable[Sequence[Point]]) -> float:
    """Sensing range needed at ``origin`` to cover a union of polygons.

    This is the paper's ``r_i = max_{v in A^k_{n_i}} ||v - u_i||`` — for
    polygonal regions the maximum is attained at a vertex.
    """
    vertices: List[Point] = []
    for piece in pieces:
        vertices.extend(piece)
    if not vertices:
        return 0.0
    return farthest_point_distance(origin, vertices)
