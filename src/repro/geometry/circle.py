"""Circles and minimal circumscribed circles of 2 or 3 points."""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

from repro.geometry.primitives import EPS, Point, distance, midpoint


@dataclasses.dataclass(frozen=True)
class Circle:
    """A circle given by center and radius."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError("circle radius must be non-negative")

    def contains(self, point: Point, eps: float = 1e-9) -> bool:
        """Closed containment test with a *relative* slack.

        Welzl's algorithm repeatedly asks "is this point inside the
        current candidate circle"; a purely absolute epsilon misbehaves
        for very large or very small circles, so the slack scales with
        the radius.
        """
        slack = eps * max(1.0, self.radius)
        return distance(self.center, point) <= self.radius + slack

    def area(self) -> float:
        """Disk area."""
        return math.pi * self.radius * self.radius

    def intersects_circle(self, other: "Circle") -> bool:
        """True when the two closed disks share at least one point."""
        return distance(self.center, other.center) <= self.radius + other.radius + EPS


def circle_from_2(a: Point, b: Point) -> Circle:
    """Smallest circle through two points (diameter circle)."""
    center = midpoint(a, b)
    return Circle(center, distance(a, b) / 2.0)


def circle_from_3(a: Point, b: Point, c: Point) -> Optional[Circle]:
    """Circumscribed circle of three points.

    Returns ``None`` when the points are (numerically) collinear, in
    which case no finite circumcircle exists.
    """
    ax, ay = a
    bx, by = b
    cx, cy = c
    d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
    if abs(d) <= EPS * EPS:
        return None
    a2 = ax * ax + ay * ay
    b2 = bx * bx + by * by
    c2 = cx * cx + cy * cy
    ux = (a2 * (by - cy) + b2 * (cy - ay) + c2 * (ay - by)) / d
    uy = (a2 * (cx - bx) + b2 * (ax - cx) + c2 * (bx - ax)) / d
    center = (ux, uy)
    return Circle(center, distance(center, a))


def bounding_circle_of_box(xmin: float, ymin: float, xmax: float, ymax: float) -> Circle:
    """Circle through the corners of an axis-aligned box."""
    if xmax < xmin or ymax < ymin:
        raise ValueError("degenerate bounding box")
    center = ((xmin + xmax) / 2.0, (ymin + ymax) / 2.0)
    return Circle(center, distance(center, (xmin, ymin)))
