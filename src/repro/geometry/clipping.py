"""Half-plane and polygon clipping.

The k-order Voronoi engine represents every dominating region as a
union of convex polygons.  The only clipping primitive it needs is
"clip a convex polygon by a half-plane", implemented here, plus the
Sutherland–Hodgman clip of an arbitrary simple polygon against a convex
clip window (used when intersecting target areas with convex pieces).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

from repro.geometry.primitives import EPS, Point, midpoint


@dataclasses.dataclass(frozen=True)
class HalfPlane:
    """The closed half-plane ``a*x + b*y <= c``.

    The coefficient vector ``(a, b)`` is the outward normal of the
    boundary line: points with ``a*x + b*y`` *smaller* than ``c`` are
    inside.
    """

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if abs(self.a) <= EPS and abs(self.b) <= EPS:
            raise ValueError("half-plane normal must be non-zero")

    def value(self, point: Point) -> float:
        """Signed evaluation ``a*x + b*y - c`` (negative means inside)."""
        return self.a * point[0] + self.b * point[1] - self.c

    def contains(self, point: Point, eps: float = EPS) -> bool:
        """Closed containment test with tolerance ``eps``."""
        return self.value(point) <= eps

    def flipped(self) -> "HalfPlane":
        """The complementary (closed) half-plane ``a*x + b*y >= c``."""
        return HalfPlane(-self.a, -self.b, -self.c)

    def boundary_intersection(self, p: Point, q: Point) -> Point:
        """Intersection of the boundary line with the segment ``pq``.

        The caller must ensure that ``p`` and ``q`` lie on opposite
        sides of the boundary (or at least one is on it); otherwise the
        interpolation parameter is clamped to the segment.
        """
        vp = self.value(p)
        vq = self.value(q)
        denom = vp - vq
        if abs(denom) <= EPS * EPS:
            return midpoint(p, q)
        t = vp / denom
        t = max(0.0, min(1.0, t))
        return (p[0] + t * (q[0] - p[0]), p[1] + t * (q[1] - p[1]))


def halfplane_from_bisector(closer_to: Point, farther_from: Point) -> HalfPlane:
    """Half-plane of points at least as close to ``closer_to`` as to ``farther_from``.

    This is the fundamental Voronoi building block: the perpendicular
    bisector of the two sites, keeping the side of ``closer_to``.

    Raises:
        ValueError: if the two sites coincide (the bisector is undefined).
    """
    ax, ay = closer_to
    bx, by = farther_from
    dx, dy = bx - ax, by - ay
    if abs(dx) <= EPS and abs(dy) <= EPS:
        raise ValueError("bisector of two coincident points is undefined")
    # ||v - a||^2 <= ||v - b||^2  <=>  2(b-a).v <= |b|^2 - |a|^2
    c = (bx * bx + by * by - ax * ax - ay * ay) / 2.0
    return HalfPlane(dx, dy, c)


def clip_polygon_halfplane(
    polygon: Sequence[Point], halfplane: HalfPlane, eps: float = EPS
) -> List[Point]:
    """Clip a convex polygon with a closed half-plane.

    Returns the clipped polygon (possibly empty).  The input is assumed
    convex and in consistent (either) winding order; the output keeps
    the input winding.  Vertices that are within ``eps`` of the boundary
    are treated as inside, which keeps adjacent pieces from developing
    hairline gaps after long clipping cascades.
    """
    n = len(polygon)
    if n == 0:
        return []
    output: List[Point] = []
    prev = polygon[-1]
    prev_val = halfplane.value(prev)
    for current in polygon:
        cur_val = halfplane.value(current)
        cur_inside = cur_val <= eps
        prev_inside = prev_val <= eps
        if cur_inside:
            if not prev_inside:
                output.append(halfplane.boundary_intersection(prev, current))
            output.append(current)
        elif prev_inside:
            output.append(halfplane.boundary_intersection(prev, current))
        prev, prev_val = current, cur_val

    return dedupe_ring(output, eps)


def dedupe_ring(points: List[Point], eps: float = EPS) -> List[Point]:
    """Remove consecutive (cyclically) duplicated vertices.

    Shared by the scalar clip above and the array-native clipping kernel
    in :mod:`repro.engine.kernels`; both paths must run the exact same
    dedupe so that clipped polygons stay bitwise identical across
    backends.  Returns ``[]`` when fewer than 3 distinct vertices remain.
    """
    if not points:
        return []
    cleaned: List[Point] = []
    append = cleaned.append
    last_x = last_y = None
    for p in points:
        if last_x is None or abs(p[0] - last_x) > eps or abs(p[1] - last_y) > eps:
            append(p)
            last_x, last_y = p[0], p[1]
    while len(cleaned) >= 2 and (
        abs(cleaned[0][0] - cleaned[-1][0]) <= eps and abs(cleaned[0][1] - cleaned[-1][1]) <= eps
    ):
        cleaned.pop()
    if len(cleaned) < 3:
        return []
    return cleaned


def clip_polygon_polygon(
    subject: Sequence[Point], convex_clip: Sequence[Point], eps: float = EPS
) -> List[Point]:
    """Sutherland–Hodgman clip of ``subject`` against a convex window.

    ``subject`` may be non-convex; ``convex_clip`` must be convex.  The
    result is a single polygon (Sutherland–Hodgman can produce degenerate
    bridges when a non-convex subject leaves and re-enters the window;
    for LAACAD's region shapes this does not occur because non-convex
    target areas are triangulated before any clipping).
    """
    from repro.geometry.polygon import ensure_ccw, polygon_edges

    clip = ensure_ccw(convex_clip)
    result = list(subject)
    for a, b in polygon_edges(clip):
        if not result:
            return []
        # inside = left of directed edge a->b
        hp = HalfPlane(b[1] - a[1], a[0] - b[0], (b[1] - a[1]) * a[0] + (a[0] - b[0]) * a[1])
        result = _clip_general_halfplane(result, hp, eps)
    return dedupe_ring(result, eps)


def _clip_general_halfplane(
    polygon: Sequence[Point], halfplane: HalfPlane, eps: float
) -> List[Point]:
    """Sutherland–Hodgman step: clip an arbitrary polygon by a half-plane."""
    output: List[Point] = []
    n = len(polygon)
    if n == 0:
        return output
    prev = polygon[-1]
    for current in polygon:
        cur_inside = halfplane.value(current) <= eps
        prev_inside = halfplane.value(prev) <= eps
        if cur_inside:
            if not prev_inside:
                output.append(halfplane.boundary_intersection(prev, current))
            output.append(current)
        elif prev_inside:
            output.append(halfplane.boundary_intersection(prev, current))
        prev = current
    return output


def polygon_intersection_convex(
    poly_a: Sequence[Point], poly_b: Sequence[Point], eps: float = EPS
) -> List[Point]:
    """Intersection of two convex polygons (possibly empty)."""
    from repro.geometry.convex import is_convex_polygon

    if len(poly_a) < 3 or len(poly_b) < 3:
        return []
    if not is_convex_polygon(poly_b):
        raise ValueError("polygon_intersection_convex requires a convex second operand")
    return clip_polygon_polygon(poly_a, poly_b, eps)
