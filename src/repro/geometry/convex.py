"""Convex hulls and convexity tests."""

from __future__ import annotations

from typing import List, Sequence

from repro.geometry.predicates import Orientation, orientation
from repro.geometry.primitives import EPS, Point, cross, sub


def convex_hull(points: Sequence[Point], eps: float = EPS) -> List[Point]:
    """Convex hull of a point set (Andrew's monotone chain).

    Returns the hull vertices in counter-clockwise order with collinear
    interior points removed.  Degenerate inputs are handled gracefully:
    zero points yield ``[]``, one point yields that point, and a fully
    collinear set yields its two extreme points.
    """
    unique = sorted(set((float(p[0]), float(p[1])) for p in points))
    if len(unique) <= 2:
        return list(unique)

    def half_hull(pts: Sequence[Point]) -> List[Point]:
        hull: List[Point] = []
        for p in pts:
            while len(hull) >= 2:
                anchor, middle = hull[-2], hull[-1]
                turn = cross(sub(middle, anchor), sub(p, anchor))
                if turn < 0.0:
                    hull.pop()
                    continue
                if turn <= eps:
                    # Near-collinear: drop the middle vertex only when
                    # it lies between its neighbours.  A tiny cross
                    # product can also come from a genuine left turn at
                    # degenerate coordinate scales (e.g. a denormal x
                    # breaking the sort tie of a vertical triple), where
                    # the "middle" vertex is an extreme point that must
                    # stay on the hull.
                    span = sub(p, anchor)
                    span_sq = span[0] * span[0] + span[1] * span[1]
                    offset = sub(middle, anchor)
                    projection = offset[0] * span[0] + offset[1] * span[1]
                    if 0.0 <= projection <= span_sq:
                        hull.pop()
                        continue
                break
            hull.append(p)
        return hull

    lower = half_hull(unique)
    upper = half_hull(list(reversed(unique)))
    return lower[:-1] + upper[:-1]


def is_convex_polygon(polygon: Sequence[Point], eps: float = EPS) -> bool:
    """True when the polygon (any vertex order) is convex.

    Collinear consecutive edges are allowed.  Polygons with fewer than
    three vertices are not considered convex polygons.
    """
    n = len(polygon)
    if n < 3:
        return False
    sign = 0
    for i in range(n):
        a, b, c = polygon[i], polygon[(i + 1) % n], polygon[(i + 2) % n]
        o = orientation(a, b, c, eps)
        if o is Orientation.COLLINEAR:
            continue
        if sign == 0:
            sign = int(o)
        elif int(o) != sign:
            return False
    return True
