"""Simple-polygon utilities.

A polygon is a sequence of ``(x, y)`` vertices without an explicit
closing vertex (the edge from the last vertex back to the first is
implied).  Most routines accept either orientation; :func:`ensure_ccw`
canonicalises to counter-clockwise where orientation matters.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

from repro.geometry.predicates import point_segment_distance
from repro.geometry.primitives import EPS, Point


def signed_area(polygon: Sequence[Point]) -> float:
    """Signed area via the shoelace formula (positive for CCW).

    The cross terms are accumulated in vertex order (edge 0-1 first,
    closing edge last) so the floating-point sum is reproducible.
    """
    n = len(polygon)
    if n < 3:
        return 0.0
    total = 0.0
    prev_x, prev_y = polygon[0]
    for vertex in polygon[1:]:
        x2, y2 = vertex
        total += prev_x * y2 - x2 * prev_y
        prev_x, prev_y = x2, y2
    first = polygon[0]
    total += prev_x * first[1] - first[0] * prev_y
    return total / 2.0


def polygon_area(polygon: Sequence[Point]) -> float:
    """Absolute area of a simple polygon."""
    return abs(signed_area(polygon))


def ensure_ccw(polygon: Sequence[Point]) -> List[Point]:
    """Return the polygon with counter-clockwise vertex order."""
    pts = list(polygon)
    if signed_area(pts) < 0:
        pts.reverse()
    return pts


def polygon_centroid(polygon: Sequence[Point]) -> Point:
    """Area centroid of a simple polygon.

    Falls back to the vertex mean for (numerically) degenerate polygons
    whose area is ~0, which avoids division blow-ups when clipping
    produces sliver polygons.
    """
    pts = list(polygon)
    if not pts:
        raise ValueError("centroid of an empty polygon is undefined")
    area = signed_area(pts)
    if abs(area) <= EPS * EPS:
        sx = sum(p[0] for p in pts) / len(pts)
        sy = sum(p[1] for p in pts) / len(pts)
        return (sx, sy)
    cx = 0.0
    cy = 0.0
    n = len(pts)
    for i in range(n):
        x1, y1 = pts[i]
        x2, y2 = pts[(i + 1) % n]
        w = x1 * y2 - x2 * y1
        cx += (x1 + x2) * w
        cy += (y1 + y2) * w
    factor = 1.0 / (6.0 * area)
    return (cx * factor, cy * factor)


def polygon_perimeter(polygon: Sequence[Point]) -> float:
    """Total edge length of a polygon."""
    n = len(polygon)
    if n < 2:
        return 0.0
    total = 0.0
    for i in range(n):
        x1, y1 = polygon[i]
        x2, y2 = polygon[(i + 1) % n]
        total += math.hypot(x2 - x1, y2 - y1)
    return total


def polygon_edges(polygon: Sequence[Point]) -> Iterator[Tuple[Point, Point]]:
    """Iterate over the (closed) edge list of a polygon."""
    n = len(polygon)
    for i in range(n):
        yield polygon[i], polygon[(i + 1) % n]


def bounding_box(polygon: Sequence[Point]) -> Tuple[float, float, float, float]:
    """Axis-aligned bounding box ``(xmin, ymin, xmax, ymax)``."""
    if not polygon:
        raise ValueError("bounding box of an empty polygon is undefined")
    xs = [p[0] for p in polygon]
    ys = [p[1] for p in polygon]
    return (min(xs), min(ys), max(xs), max(ys))


def polygon_diameter(polygon: Sequence[Point]) -> float:
    """Largest pairwise vertex distance (O(n^2), fine for small polygons)."""
    pts = list(polygon)
    best = 0.0
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            d = math.hypot(pts[i][0] - pts[j][0], pts[i][1] - pts[j][1])
            if d > best:
                best = d
    return best


def point_on_polygon_boundary(
    point: Point, polygon: Sequence[Point], eps: float = 1e-9
) -> bool:
    """True when ``point`` lies on (within ``eps`` of) any polygon edge."""
    for a, b in polygon_edges(polygon):
        if point_segment_distance(point, a, b) <= eps:
            return True
    return False


def point_in_polygon(
    point: Point, polygon: Sequence[Point], include_boundary: bool = True, eps: float = 1e-9
) -> bool:
    """Point-in-polygon test (ray casting), works for non-convex polygons.

    Args:
        point: query point.
        polygon: simple polygon, either orientation.
        include_boundary: whether boundary points count as inside.
        eps: tolerance for the boundary test.
    """
    if len(polygon) < 3:
        return False
    if point_on_polygon_boundary(point, polygon, eps):
        return include_boundary

    x, y = point
    inside = False
    n = len(polygon)
    j = n - 1
    for i in range(n):
        xi, yi = polygon[i]
        xj, yj = polygon[j]
        intersects = (yi > y) != (yj > y)
        if intersects:
            x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
            if x < x_cross:
                inside = not inside
        j = i
    return inside
