"""Orientation and incidence predicates.

These are the usual determinant-based predicates.  They are not exact
(no adaptive arithmetic), but every consumer in this package treats the
``EPS`` band around zero as "degenerate" and handles it explicitly, which
is sufficient for the simulation scales used by the LAACAD experiments.
"""

from __future__ import annotations

import enum
import math

from repro.geometry.primitives import EPS, Point, cross, sub


class Orientation(enum.IntEnum):
    """Sign of the signed area of an ordered point triple."""

    CLOCKWISE = -1
    COLLINEAR = 0
    COUNTERCLOCKWISE = 1


def orientation(a: Point, b: Point, c: Point, eps: float = EPS) -> Orientation:
    """Orientation of the triple ``(a, b, c)``.

    Returns :class:`Orientation.COUNTERCLOCKWISE` when ``c`` lies to the
    left of the directed line ``a -> b``.
    """
    value = cross(sub(b, a), sub(c, a))
    if value > eps:
        return Orientation.COUNTERCLOCKWISE
    if value < -eps:
        return Orientation.CLOCKWISE
    return Orientation.COLLINEAR


def collinear(a: Point, b: Point, c: Point, eps: float = EPS) -> bool:
    """True when the three points lie (numerically) on one line."""
    return orientation(a, b, c, eps) is Orientation.COLLINEAR


def in_circle(a: Point, b: Point, c: Point, d: Point) -> float:
    """In-circle determinant for the circle through ``a``, ``b``, ``c``.

    Positive when ``d`` lies strictly inside the circle oriented
    counter-clockwise by ``(a, b, c)``.  Only the *sign* is meaningful.
    """
    adx, ady = a[0] - d[0], a[1] - d[1]
    bdx, bdy = b[0] - d[0], b[1] - d[1]
    cdx, cdy = c[0] - d[0], c[1] - d[1]
    ad = adx * adx + ady * ady
    bd = bdx * bdx + bdy * bdy
    cd = cdx * cdx + cdy * cdy
    return (
        adx * (bdy * cd - bd * cdy)
        - ady * (bdx * cd - bd * cdx)
        + ad * (bdx * cdy - bdy * cdx)
    )


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from point ``p`` to the closed segment ``ab``."""
    ax, ay = a
    bx, by = b
    px, py = p
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq <= EPS * EPS:
        return math.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / seg_len_sq
    t = max(0.0, min(1.0, t))
    cx, cy = ax + t * dx, ay + t * dy
    return math.hypot(px - cx, py - cy)


def _on_segment(p: Point, q: Point, r: Point, eps: float = EPS) -> bool:
    """True when ``q`` lies on the closed axis-aligned box of segment ``pr``.

    Only meaningful when ``p``, ``q``, ``r`` are already known collinear.
    """
    return (
        min(p[0], r[0]) - eps <= q[0] <= max(p[0], r[0]) + eps
        and min(p[1], r[1]) - eps <= q[1] <= max(p[1], r[1]) + eps
    )


def segments_intersect(
    a1: Point, a2: Point, b1: Point, b2: Point, eps: float = EPS
) -> bool:
    """True when closed segments ``a1a2`` and ``b1b2`` share a point."""
    o1 = orientation(a1, a2, b1, eps)
    o2 = orientation(a1, a2, b2, eps)
    o3 = orientation(b1, b2, a1, eps)
    o4 = orientation(b1, b2, a2, eps)

    if o1 is not o2 and o3 is not o4:
        return True
    if o1 is Orientation.COLLINEAR and _on_segment(a1, b1, a2, eps):
        return True
    if o2 is Orientation.COLLINEAR and _on_segment(a1, b2, a2, eps):
        return True
    if o3 is Orientation.COLLINEAR and _on_segment(b1, a1, b2, eps):
        return True
    if o4 is Orientation.COLLINEAR and _on_segment(b1, a2, b2, eps):
        return True
    return False
