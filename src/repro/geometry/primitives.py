"""Low-level 2-D vector primitives.

Points are plain ``(x, y)`` tuples of floats throughout the geometry
package.  Keeping them as tuples (rather than wrapping every coordinate
pair in a class) keeps the inner loops of the Voronoi engine cheap and
makes it trivial to interoperate with numpy arrays: ``tuple(arr)`` and
``np.asarray(point)`` are both free of surprises.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

#: Canonical point type used across the geometry package.
Point = Tuple[float, float]

#: Default absolute tolerance for geometric comparisons.  The LAACAD
#: experiments work on areas of roughly unit scale (1 km^2 expressed in
#: km), so an absolute epsilon of 1e-9 is far below any meaningful
#: feature size while staying well above double-precision noise that
#: accumulates in the clipping cascades.
EPS = 1e-9


def almost_equal(a: float, b: float, eps: float = EPS) -> bool:
    """Return ``True`` when two scalars differ by less than ``eps``."""
    return abs(a - b) <= eps


def points_close(p: Point, q: Point, eps: float = EPS) -> bool:
    """Return ``True`` when two points coincide up to ``eps`` per axis."""
    return abs(p[0] - q[0]) <= eps and abs(p[1] - q[1]) <= eps


def add(p: Point, q: Point) -> Point:
    """Component-wise sum of two points/vectors."""
    return (p[0] + q[0], p[1] + q[1])


def sub(p: Point, q: Point) -> Point:
    """Vector from ``q`` to ``p`` (i.e. ``p - q``)."""
    return (p[0] - q[0], p[1] - q[1])


def scale(p: Point, factor: float) -> Point:
    """Scale a vector by ``factor``."""
    return (p[0] * factor, p[1] * factor)


def dot(p: Point, q: Point) -> float:
    """Dot product of two vectors."""
    return p[0] * q[0] + p[1] * q[1]


def cross(p: Point, q: Point) -> float:
    """2-D cross product (z component of the 3-D cross product)."""
    return p[0] * q[1] - p[1] * q[0]


def norm(p: Point) -> float:
    """Euclidean length of a vector."""
    return math.hypot(p[0], p[1])


def distance(p: Point, q: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(p[0] - q[0], p[1] - q[1])


def distance_sq(p: Point, q: Point) -> float:
    """Squared Euclidean distance (avoids the sqrt in hot loops)."""
    dx = p[0] - q[0]
    dy = p[1] - q[1]
    return dx * dx + dy * dy


def normalize(p: Point) -> Point:
    """Return the unit vector in the direction of ``p``.

    Raises:
        ValueError: if ``p`` is (numerically) the zero vector.
    """
    length = norm(p)
    if length <= EPS:
        raise ValueError("cannot normalize a zero-length vector")
    return (p[0] / length, p[1] / length)


def perpendicular(p: Point) -> Point:
    """Return ``p`` rotated by +90 degrees (counter-clockwise)."""
    return (-p[1], p[0])


def midpoint(p: Point, q: Point) -> Point:
    """Midpoint of the segment ``pq``."""
    return ((p[0] + q[0]) / 2.0, (p[1] + q[1]) / 2.0)


def lerp(p: Point, q: Point, t: float) -> Point:
    """Linear interpolation ``p + t * (q - p)``.

    ``t = 0`` yields ``p``; ``t = 1`` yields ``q``.  Values outside
    ``[0, 1]`` extrapolate along the same line, which is occasionally
    useful for constructing far points on bisectors.
    """
    return (p[0] + t * (q[0] - p[0]), p[1] + t * (q[1] - p[1]))


def centroid_of_points(points: Sequence[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points."""
    pts = list(points)
    if not pts:
        raise ValueError("centroid of an empty point set is undefined")
    sx = sum(p[0] for p in pts)
    sy = sum(p[1] for p in pts)
    n = float(len(pts))
    return (sx / n, sy / n)


def as_point(value: Iterable[float]) -> Point:
    """Coerce any two-element iterable (list, numpy row, ...) to a Point."""
    it = iter(value)
    try:
        x = float(next(it))
        y = float(next(it))
    except StopIteration as exc:  # pragma: no cover - defensive
        raise ValueError("a point requires exactly two coordinates") from exc
    return (x, y)
