"""Polygon triangulation and convex decomposition.

The k-order Voronoi engine operates on *convex* area pieces.  Target
areas in LAACAD can be non-convex and can contain obstacles (Figure 8 of
the paper), so this module provides:

* :func:`triangulate_polygon` — ear-clipping triangulation of a simple
  polygon (no holes),
* :func:`convex_difference` — subtract one convex polygon from another,
  returning a list of convex pieces,
* :func:`decompose_with_holes` — convex decomposition of a polygon with
  arbitrary simple-polygon holes (triangulate the outer boundary, then
  subtract each hole triangle-by-triangle),
* :func:`triangulate_with_holes` — same, but with every convex piece
  fan-split so the result consists purely of triangles.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.geometry.clipping import HalfPlane, clip_polygon_halfplane
from repro.geometry.polygon import ensure_ccw, polygon_area, signed_area
from repro.geometry.predicates import Orientation, orientation
from repro.geometry.primitives import EPS, Point

#: Pieces with area below this are dropped during decomposition: they are
#: numerical slivers produced by clipping and would otherwise pollute the
#: vertex pools used by the Chebyshev-center computation.
_MIN_PIECE_AREA = 1e-12


def _is_convex(polygon: Sequence[Point]) -> bool:
    """True when the simple polygon has no reflex vertex.

    Collinear vertices are tolerated (they are not reflex); winding
    order is normalised before the check.
    """
    pts = ensure_ccw(list(polygon))
    n = len(pts)
    if n < 3:
        return False
    for i in range(n):
        if (
            orientation(pts[i - 1], pts[i], pts[(i + 1) % n])
            is Orientation.CLOCKWISE
        ):
            return False
    return True


def _point_in_triangle_inclusive(p: Point, a: Point, b: Point, c: Point) -> bool:
    """True when ``p`` lies inside or on the boundary of CCW triangle ``abc``.

    The inclusive test matters for ear clipping: a reflex vertex lying
    exactly on a candidate ear's diagonal (which happens for the L-shaped
    and cross-shaped target areas whose reflex corners are collinear with
    other corners) must invalidate the ear, otherwise the emitted triangle
    pokes into the notch.
    """
    d1 = orientation(a, b, p)
    d2 = orientation(b, c, p)
    d3 = orientation(c, a, p)
    return (
        d1 is not Orientation.CLOCKWISE
        and d2 is not Orientation.CLOCKWISE
        and d3 is not Orientation.CLOCKWISE
    )


def triangulate_polygon(polygon: Sequence[Point]) -> List[List[Point]]:
    """Ear-clipping triangulation of a simple polygon without holes.

    Args:
        polygon: simple polygon in either winding order; collinear
            vertices are tolerated.

    Returns:
        A list of CCW triangles whose union is the input polygon.

    Raises:
        ValueError: if the polygon has fewer than 3 vertices or the
            ear-clipping loop cannot make progress (self-intersecting
            input).
    """
    pts = ensure_ccw(list(polygon))
    if len(pts) < 3:
        raise ValueError("cannot triangulate a polygon with fewer than 3 vertices")
    if len(pts) == 3:
        return [list(pts)]

    indices = list(range(len(pts)))
    triangles: List[List[Point]] = []

    guard = 0
    max_iterations = 4 * len(pts) * len(pts) + 16
    while len(indices) > 3:
        guard += 1
        if guard > max_iterations:
            raise ValueError(
                "ear clipping failed to make progress; the polygon is likely "
                "self-intersecting or numerically degenerate"
            )
        ear_found = False
        n = len(indices)
        # Reflex vertices of the *current* polygon: only these can block
        # an ear, and a reflex vertex on the candidate diagonal must block
        # it (hence the inclusive containment test below).
        reflex: set = set()
        for pos in range(n):
            a = pts[indices[(pos - 1) % n]]
            b = pts[indices[pos]]
            c = pts[indices[(pos + 1) % n]]
            if orientation(a, b, c) is Orientation.CLOCKWISE:
                reflex.add(indices[pos])
        for pos in range(n):
            i_prev = indices[(pos - 1) % n]
            i_curr = indices[pos]
            i_next = indices[(pos + 1) % n]
            a, b, c = pts[i_prev], pts[i_curr], pts[i_next]
            turn = orientation(a, b, c)
            if turn is Orientation.CLOCKWISE:
                continue  # reflex vertex, not an ear
            if turn is Orientation.COLLINEAR:
                # Degenerate ear: drop the middle vertex without emitting
                # a zero-area triangle.
                del indices[pos]
                ear_found = True
                break
            contains_other = False
            for other in reflex:
                if other in (i_prev, i_curr, i_next):
                    continue
                if _point_in_triangle_inclusive(pts[other], a, b, c):
                    contains_other = True
                    break
            if contains_other:
                continue
            triangles.append([a, b, c])
            del indices[pos]
            ear_found = True
            break
        if not ear_found:
            raise ValueError(
                "no ear found; the polygon is likely self-intersecting"
            )

    a, b, c = (pts[indices[0]], pts[indices[1]], pts[indices[2]])
    if orientation(a, b, c) is not Orientation.COLLINEAR:
        triangles.append([a, b, c])
    return [t for t in triangles if polygon_area(t) > _MIN_PIECE_AREA]


def _edge_halfplane_inward(a: Point, b: Point) -> HalfPlane:
    """Half-plane to the left of the directed edge ``a -> b`` (inside of a CCW polygon)."""
    nx = b[1] - a[1]
    ny = a[0] - b[0]
    return HalfPlane(nx, ny, nx * a[0] + ny * a[1])


def convex_difference(
    convex_a: Sequence[Point], convex_b: Sequence[Point]
) -> List[List[Point]]:
    """Set difference ``A \\ B`` of two convex polygons as convex pieces.

    The classical edge-sweep construction: walk the edges of ``B`` (CCW);
    at each edge, the part of the remaining region that lies *outside*
    that edge's half-plane is peeled off as one convex piece, and the
    sweep continues with the part inside.  What remains after all edges
    is ``A ∩ B`` and is discarded.
    """
    if len(convex_a) < 3:
        return []
    if len(convex_b) < 3:
        return [list(convex_a)]

    pieces: List[List[Point]] = []
    remaining = ensure_ccw(list(convex_a))
    for a, b in zip(ensure_ccw(list(convex_b)), ensure_ccw(list(convex_b))[1:] + ensure_ccw(list(convex_b))[:1]):
        if len(remaining) < 3:
            break
        inside_hp = _edge_halfplane_inward(a, b)
        outside_piece = clip_polygon_halfplane(remaining, inside_hp.flipped())
        if len(outside_piece) >= 3 and polygon_area(outside_piece) > _MIN_PIECE_AREA:
            pieces.append(outside_piece)
        remaining = clip_polygon_halfplane(remaining, inside_hp)
    return pieces


def decompose_with_holes(
    outer: Sequence[Point], holes: Sequence[Sequence[Point]] = ()
) -> List[List[Point]]:
    """Convex decomposition of ``outer`` minus the union of ``holes``.

    ``outer`` may be non-convex; each hole may be an arbitrary simple
    polygon (holes are triangulated and subtracted triangle by triangle).
    Holes are assumed to lie inside ``outer``; overlapping holes are
    handled correctly because subtraction is applied sequentially.

    An already-convex ``outer`` without holes decomposes into itself:
    triangulating it would only multiply the piece count every
    downstream clipping sweep pays for (the engines clip every site's
    region against every piece), for no representational gain.
    """
    if not holes and _is_convex(outer):
        piece = ensure_ccw(list(outer))
        return [piece] if polygon_area(piece) > _MIN_PIECE_AREA else []
    pieces = triangulate_polygon(outer)
    for hole in holes:
        hole_triangles = triangulate_polygon(hole)
        for hole_tri in hole_triangles:
            next_pieces: List[List[Point]] = []
            for piece in pieces:
                next_pieces.extend(convex_difference(piece, hole_tri))
            pieces = next_pieces
    return [p for p in pieces if polygon_area(p) > _MIN_PIECE_AREA]


def _fan_triangulate_convex(piece: Sequence[Point]) -> List[List[Point]]:
    """Fan triangulation of a convex polygon."""
    pts = ensure_ccw(list(piece))
    return [
        [pts[0], pts[i], pts[i + 1]]
        for i in range(1, len(pts) - 1)
        if polygon_area([pts[0], pts[i], pts[i + 1]]) > _MIN_PIECE_AREA
    ]


def triangulate_with_holes(
    outer: Sequence[Point], holes: Sequence[Sequence[Point]] = ()
) -> List[List[Point]]:
    """Triangulation of a polygon with holes (every output piece is a triangle)."""
    triangles: List[List[Point]] = []
    for piece in decompose_with_holes(outer, holes):
        triangles.extend(_fan_triangulate_convex(piece))
    return triangles
