"""Smallest enclosing circle (Welzl's algorithm).

The paper computes the Chebyshev center of a dominating region by
running Welzl's algorithm on the region's vertices (Sec. IV-B), so this
is the single most frequently executed geometric routine in LAACAD.

The implementation below is the iterative "move-to-front" variant of
Welzl's randomized algorithm, expected O(n), with deterministic behaviour
controlled by an optional random seed so that simulation runs remain
reproducible.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from repro.geometry.circle import Circle, circle_from_2, circle_from_3
from repro.geometry.primitives import Point


def _circle_from_boundary(boundary: Sequence[Point]) -> Circle:
    """Minimal circle determined by 0, 1, 2 or 3 boundary points."""
    if not boundary:
        return Circle((0.0, 0.0), 0.0)
    if len(boundary) == 1:
        return Circle(boundary[0], 0.0)
    if len(boundary) == 2:
        return circle_from_2(boundary[0], boundary[1])
    circle = circle_from_3(boundary[0], boundary[1], boundary[2])
    if circle is not None:
        return circle
    # Collinear triple: the smallest enclosing circle is the diameter
    # circle of the two extreme points.
    best: Optional[Circle] = None
    pts = list(boundary)
    for i in range(3):
        for j in range(i + 1, 3):
            cand = circle_from_2(pts[i], pts[j])
            if all(cand.contains(p) for p in pts):
                if best is None or cand.radius < best.radius:
                    best = cand
    assert best is not None
    return best


def welzl_disk(points: Sequence[Point], seed: Optional[int] = 0) -> Circle:
    """Smallest enclosing circle of a point set.

    Args:
        points: the points to enclose; duplicates are fine.
        seed: seed for the internal shuffle.  ``None`` uses system
            randomness; the default of ``0`` keeps runs reproducible.

    Returns:
        The minimal enclosing :class:`Circle`.  For an empty input a
        zero circle at the origin is returned, matching the convention
        used by the Voronoi engine for empty dominating regions.
    """
    pts: List[Point] = [(float(p[0]), float(p[1])) for p in points]
    if not pts:
        return Circle((0.0, 0.0), 0.0)
    if len(pts) == 1:
        return Circle(pts[0], 0.0)

    rng = random.Random(seed)
    rng.shuffle(pts)

    # The candidate circle is tracked as plain floats and the closed
    # containment test of Circle.contains (distance <= radius + slack
    # with slack = 1e-9 * max(1, radius)) is inlined: this loop runs
    # hundreds of thousands of times per LAACAD round and the arithmetic
    # below is operation-for-operation what the dataclass methods do.
    hypot = math.hypot
    cx, cy = pts[0]
    radius = 0.0
    limit = radius + 1e-9 * (radius if radius > 1.0 else 1.0)
    for i, (px, py) in enumerate(pts):
        if hypot(px - cx, py - cy) <= limit:
            continue
        # p must be on the boundary of the minimal circle of pts[:i+1].
        cx, cy, radius = px, py, 0.0
        limit = radius + 1e-9 * (radius if radius > 1.0 else 1.0)
        for j in range(i):
            qx, qy = pts[j]
            if hypot(qx - cx, qy - cy) <= limit:
                continue
            # p and q are both on the boundary (diameter circle).
            cx = (px + qx) / 2.0
            cy = (py + qy) / 2.0
            radius = hypot(px - qx, py - qy) / 2.0
            limit = radius + 1e-9 * (radius if radius > 1.0 else 1.0)
            for l in range(j):
                rx, ry = pts[l]
                if hypot(rx - cx, ry - cy) <= limit:
                    continue
                boundary_circle = _circle_from_boundary(
                    [(px, py), (qx, qy), (rx, ry)]
                )
                cx, cy = boundary_circle.center
                radius = boundary_circle.radius
                limit = radius + 1e-9 * (radius if radius > 1.0 else 1.0)
        # Guard against pathological floating point drift: grow the
        # radius minimally so that every processed point is enclosed.
        worst = 0.0
        for mx, my in pts[: i + 1]:
            d = hypot(mx - cx, my - cy)
            if d > worst:
                worst = d
        if worst > radius:
            radius = worst
            limit = radius + 1e-9 * (radius if radius > 1.0 else 1.0)
    return Circle((cx, cy), radius)
