"""Wireless-sensor-network substrate.

Models the physical network LAACAD runs on: nodes with positions,
tunable sensing ranges and a common transmission range, the unit-disk
connectivity graph, multi-hop neighbourhoods, the sensing-energy model
``E(r) = pi r^2``, range-based localization (classical MDS) and boundary
detection.
"""

from repro.network.node import Node
from repro.network.network import SensorNetwork
from repro.network.energy import EnergyModel
from repro.network.localization import classical_mds, build_local_coordinates
from repro.network.boundary import detect_boundary_nodes, angular_gap_boundary_nodes
from repro.network.mobility import MobilityModel

__all__ = [
    "Node",
    "SensorNetwork",
    "EnergyModel",
    "classical_mds",
    "build_local_coordinates",
    "detect_boundary_nodes",
    "angular_gap_boundary_nodes",
    "MobilityModel",
]
