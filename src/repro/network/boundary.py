"""Boundary-node detection.

The paper relies on a boundary-detection service (UNFOLD [29]) to tell a
node whether it sits on or near the network boundary, because boundary
nodes must restrict Algorithm 2's half-radius circle check to the part of
the circle that lies inside the covered area.

Two detectors are provided:

* :func:`detect_boundary_nodes` — a geometric oracle based on the node's
  distance to the target-area boundary (the substitution documented in
  DESIGN.md: LAACAD only consumes a boolean flag, so any correct oracle
  exercises the same code path), and
* :func:`angular_gap_boundary_nodes` — a purely local, communication-only
  heuristic in the spirit of deployed boundary-detection services: a node
  is a boundary node if the directions towards its one-hop neighbours
  leave an angular gap larger than a threshold.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.geometry.primitives import Point
from repro.network.network import SensorNetwork


def detect_boundary_nodes(
    network: SensorNetwork, threshold: float | None = None
) -> List[int]:
    """Nodes whose distance to the free-area boundary is below a threshold.

    Args:
        network: the sensor network.
        threshold: distance threshold; defaults to half the transmission
            range, i.e. a node is a boundary node when the area boundary
            lies within half a hop of it.
    """
    if threshold is None:
        threshold = network.comm_range / 2.0
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    boundary: List[int] = []
    for node in network.nodes:
        if not node.alive:
            continue
        if network.region.distance_to_boundary(node.position) <= threshold:
            boundary.append(node.node_id)
    return boundary


def angular_gap_boundary_nodes(
    network: SensorNetwork, gap_threshold_deg: float = 120.0
) -> List[int]:
    """Local boundary heuristic from one-hop neighbour directions.

    A node is flagged as a boundary node when the sorted bearings of its
    one-hop neighbours leave a gap of at least ``gap_threshold_deg``
    degrees, or when it has fewer than three neighbours (which makes a
    full angular surround impossible).
    """
    if not 0 < gap_threshold_deg <= 360.0:
        raise ValueError("gap threshold must be in (0, 360] degrees")
    threshold_rad = math.radians(gap_threshold_deg)
    boundary: List[int] = []
    for node in network.nodes:
        if not node.alive:
            continue
        neighbors = network.one_hop_neighbors(node.node_id)
        if len(neighbors) < 3:
            boundary.append(node.node_id)
            continue
        bearings = sorted(
            math.atan2(
                network.node(j).position[1] - node.position[1],
                network.node(j).position[0] - node.position[0],
            )
            for j in neighbors
        )
        max_gap = 0.0
        for i in range(len(bearings)):
            nxt = bearings[(i + 1) % len(bearings)]
            gap = nxt - bearings[i]
            if i == len(bearings) - 1:
                gap += 2.0 * math.pi
            max_gap = max(max_gap, gap)
        if max_gap >= threshold_rad:
            boundary.append(node.node_id)
    return boundary


def mark_boundary_nodes(network: SensorNetwork, node_ids: Sequence[int]) -> None:
    """Set the ``is_boundary`` flag on the given nodes (and clear it elsewhere)."""
    ids = set(node_ids)
    for node in network.nodes:
        node.is_boundary = node.node_id in ids
