"""Energy accounting.

The paper's evaluation only charges *sensing* energy, modelled as
``E(r) = pi r^2`` (the area of the sensing disk); movement is a one-time
investment and communication is sporadic after deployment.  We implement
all three so that ablation experiments can report them, but the default
experiment figures only use the sensing component, exactly as the paper
does.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, List, Sequence


@dataclasses.dataclass(frozen=True)
class EnergyModel:
    """Energy cost model for a sensor node.

    Attributes:
        sensing_exponent: exponent of the sensing-cost power law; the
            paper uses the disk area, i.e. exponent 2 with a ``pi``
            prefactor.
        sensing_prefactor: multiplicative constant of the sensing cost.
        movement_cost_per_unit: energy per unit distance moved.
        message_cost_per_hop: energy per message per hop transmitted.
    """

    sensing_exponent: float = 2.0
    sensing_prefactor: float = math.pi
    movement_cost_per_unit: float = 1.0
    message_cost_per_hop: float = 0.001

    def sensing_energy(self, sensing_range: float) -> float:
        """``E(r)``: the per-node sensing load."""
        if sensing_range < 0:
            raise ValueError("sensing range must be non-negative")
        return self.sensing_prefactor * sensing_range**self.sensing_exponent

    def movement_energy(self, distance_traveled: float) -> float:
        """One-time movement investment for a given travelled distance."""
        if distance_traveled < 0:
            raise ValueError("distance must be non-negative")
        return self.movement_cost_per_unit * distance_traveled

    def communication_energy(self, messages_hops: int) -> float:
        """Energy for a number of (message, hop) transmissions."""
        if messages_hops < 0:
            raise ValueError("message count must be non-negative")
        return self.message_cost_per_hop * messages_hops

    # ------------------------------------------------------------------
    # Aggregates over a deployment
    # ------------------------------------------------------------------
    def sensing_loads(self, ranges: Sequence[float]) -> List[float]:
        """Per-node sensing loads for a list of ranges."""
        return [self.sensing_energy(r) for r in ranges]

    def max_load(self, ranges: Sequence[float]) -> float:
        """The paper's ``max_i E(r_i)`` (Figure 7a)."""
        loads = self.sensing_loads(ranges)
        return max(loads) if loads else 0.0

    def total_load(self, ranges: Sequence[float]) -> float:
        """The paper's ``sum_i E(r_i)`` (Figure 7b)."""
        return sum(self.sensing_loads(ranges))

    def load_imbalance(self, ranges: Sequence[float]) -> float:
        """Max-to-min load ratio (1.0 means perfectly balanced).

        Returns ``inf`` when some node has zero load while another does
        not, and 1.0 for an empty deployment.
        """
        loads = [l for l in self.sensing_loads(ranges)]
        if not loads:
            return 1.0
        lo, hi = min(loads), max(loads)
        if lo <= 0.0:
            return math.inf if hi > 0.0 else 1.0
        return hi / lo
