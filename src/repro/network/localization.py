"""Range-based localization (the paper's local coordinate systems).

Algorithm 2 (line 4) constructs a *local coordinate system* for the
nodes inside the current search ring using the MDS-based embedding of
Shang & Ruml [28]; the absolute positions are never needed because the
dominating-region computation is invariant to rigid motions.

We implement classical (Torgerson) multidimensional scaling on the
pairwise range measurements plus an optional Procrustes alignment to a
reference frame, and a convenience wrapper that produces coordinates for
a node's ring neighbourhood from (optionally noisy) range measurements.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.primitives import Point
from repro.network.neighbors import pairwise_distances


def classical_mds(distance_matrix: np.ndarray, dimensions: int = 2) -> np.ndarray:
    """Classical MDS embedding of a symmetric distance matrix.

    Args:
        distance_matrix: symmetric ``(n, n)`` matrix of pairwise
            distances (may be noisy; small asymmetries are symmetrised).
        dimensions: target embedding dimension (2 for LAACAD).

    Returns:
        An ``(n, dimensions)`` coordinate array, centred at the origin,
        unique up to rotation/reflection.
    """
    d = np.asarray(distance_matrix, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError("distance matrix must be square")
    n = d.shape[0]
    if n == 0:
        return np.zeros((0, dimensions))
    d = (d + d.T) / 2.0
    d_sq = d * d
    centering = np.eye(n) - np.ones((n, n)) / n
    b = -0.5 * centering @ d_sq @ centering
    eigenvalues, eigenvectors = np.linalg.eigh(b)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = eigenvalues[order][:dimensions]
    eigenvectors = eigenvectors[:, order][:, :dimensions]
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    return eigenvectors * np.sqrt(eigenvalues)[None, :]


def procrustes_align(
    coords: np.ndarray, reference: np.ndarray
) -> np.ndarray:
    """Rigidly align ``coords`` to ``reference`` (rotation/reflection + translation).

    Both arrays must have the same shape.  Scaling is *not* applied —
    range measurements already carry metric information, so only the
    unknown rotation/reflection/translation of the MDS output is removed.
    """
    coords = np.asarray(coords, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if coords.shape != reference.shape:
        raise ValueError("coords and reference must have identical shapes")
    mu_c = coords.mean(axis=0)
    mu_r = reference.mean(axis=0)
    a = coords - mu_c
    b = reference - mu_r
    u, _, vt = np.linalg.svd(a.T @ b)
    rotation = u @ vt
    return a @ rotation + mu_r


def build_local_coordinates(
    center_index: int,
    positions: Sequence[Point],
    noise_std: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> List[Point]:
    """Local coordinate system for a ring neighbourhood.

    Simulates what a node does in Algorithm 2: measure pairwise ranges to
    and among the nodes in its search ring (optionally with Gaussian
    noise), embed them with classical MDS, and express the result in a
    frame centred at the querying node.

    Args:
        center_index: index (within ``positions``) of the querying node.
        positions: true positions of the querying node and its ring
            neighbours (used to synthesise range measurements).
        noise_std: standard deviation of additive Gaussian range noise.
        rng: random generator for the noise.

    Returns:
        Estimated coordinates (one per input position), translated so
        that the querying node sits at its true position — i.e. the
        output is directly comparable to the ground truth, which is what
        both the tests and the localized LAACAD driver need.
    """
    pts = np.asarray(positions, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError("positions must be an (N, 2) collection")
    if not 0 <= center_index < pts.shape[0]:
        raise IndexError("center_index out of range")
    distances = pairwise_distances([tuple(p) for p in pts])
    if noise_std > 0:
        if rng is None:
            rng = np.random.default_rng()
        noise = rng.normal(0.0, noise_std, size=distances.shape)
        noise = (noise + noise.T) / 2.0
        np.fill_diagonal(noise, 0.0)
        distances = np.clip(distances + noise, 0.0, None)
    embedded = classical_mds(distances)
    aligned = procrustes_align(embedded, pts)
    # Express in a frame where the querying node is exactly at its
    # (locally known) own position.
    offset = pts[center_index] - aligned[center_index]
    aligned = aligned + offset
    return [(float(x), float(y)) for x, y in aligned]
