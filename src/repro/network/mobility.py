"""Mobility constraints for autonomous deployment.

LAACAD moves nodes by a fraction ``alpha`` of the vector towards the
Chebyshev center of their dominating region.  The mobility model applies
the physical constraints around that intent: motion targets are projected
back into the free area (nodes cannot enter obstacles or leave ``A``) and
an optional per-round speed limit caps the displacement, which models
slow actuators and also gives an ablation knob independent of ``alpha``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Optional, Tuple

from repro.geometry.primitives import Point, distance
from repro.regions.region import Region


@dataclasses.dataclass(frozen=True)
class MobilityModel:
    """Movement constraints applied to every per-round relocation.

    Attributes:
        max_step: maximum displacement per round (``None`` = unlimited).
        keep_in_region: project motion targets back into the free area.
    """

    max_step: Optional[float] = None
    keep_in_region: bool = True

    def __post_init__(self) -> None:
        if self.max_step is not None and self.max_step <= 0:
            raise ValueError("max_step must be positive when given")

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "MobilityModel":
        """Scenario-driven constructor from a plain mobility dict.

        ``{}`` yields the default model; recognised keys are ``max_step``
        and ``keep_in_region``.
        """
        unknown = set(spec) - {"max_step", "keep_in_region"}
        if unknown:
            raise ValueError(f"unknown mobility options: {sorted(unknown)}")
        max_step = spec.get("max_step")
        return cls(
            max_step=float(max_step) if max_step is not None else None,
            keep_in_region=bool(spec.get("keep_in_region", True)),
        )

    def constrain(
        self, region: Region, current: Point, target: Point
    ) -> Point:
        """Apply the mobility constraints to a desired move.

        Args:
            region: the target area providing the free-space geometry.
            current: the node's current position.
            target: the unconstrained motion target.

        Returns:
            The admissible position for this round.
        """
        step = distance(current, target)
        constrained = target
        if self.max_step is not None and step > self.max_step:
            fraction = self.max_step / step
            constrained = (
                current[0] + fraction * (target[0] - current[0]),
                current[1] + fraction * (target[1] - current[1]),
            )
        if self.keep_in_region and not region.contains(constrained):
            constrained = region.nearest_free_point(constrained)
        return constrained
