"""Spatial indexing for neighbour queries.

A simple uniform-bucket grid: O(1) insertion and near-O(1) range queries
for the query radii used by LAACAD (transmission range and expanding-ring
radii).  Falls back gracefully to scanning all points for radii larger
than the indexed extent.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.geometry.primitives import Point


class SpatialGrid:
    """Uniform-grid spatial index over a set of indexed points."""

    def __init__(self, points: Sequence[Point], cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = cell_size
        self.points = [(float(p[0]), float(p[1])) for p in points]
        self._buckets: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for idx, (x, y) in enumerate(self.points):
            self._buckets[self._key(x, y)].append(idx)
        # Bounding box of the occupied buckets: query windows are clamped
        # to it, so oversized radii degrade to scanning the occupied
        # extent instead of huge swaths of empty cells.
        if self._buckets:
            keys = self._buckets.keys()
            self._kx_min = min(k[0] for k in keys)
            self._kx_max = max(k[0] for k in keys)
            self._ky_min = min(k[1] for k in keys)
            self._ky_max = max(k[1] for k in keys)
        else:
            self._kx_min = self._kx_max = self._ky_min = self._ky_max = 0

    def _key(self, x: float, y: float) -> Tuple[int, int]:
        return (int(math.floor(x / self.cell_size)), int(math.floor(y / self.cell_size)))

    def query_radius(self, center: Point, radius: float) -> List[int]:
        """Indices of all points within ``radius`` of ``center`` (inclusive).

        The scanned cell window is the query disk's cell neighbourhood
        *clamped to the bounding box of occupied buckets*, so a radius
        far larger than the indexed extent costs no more than scanning
        every stored point.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if not self.points:
            return []
        cx, cy = float(center[0]), float(center[1])
        reach = int(math.ceil(radius / self.cell_size)) + 1
        kx, ky = self._key(cx, cy)
        ix_lo = max(kx - reach, self._kx_min)
        ix_hi = min(kx + reach, self._kx_max)
        iy_lo = max(ky - reach, self._ky_min)
        iy_hi = min(ky + reach, self._ky_max)
        result: List[int] = []
        r2 = radius * radius
        buckets = self._buckets
        points = self.points
        for ix in range(ix_lo, ix_hi + 1):
            for iy in range(iy_lo, iy_hi + 1):
                bucket = buckets.get((ix, iy))
                if not bucket:
                    continue
                for idx in bucket:
                    px, py = points[idx]
                    dx, dy = px - cx, py - cy
                    if dx * dx + dy * dy <= r2 + 1e-15:
                        result.append(idx)
        return result

    def k_nearest(self, center: Point, k: int) -> List[int]:
        """Indices of the ``k`` nearest points to ``center``.

        Uses an expanding-radius search over the grid; exact because the
        candidate radius is widened until at least ``k`` candidates are
        strictly inside it.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if k >= len(self.points):
            order = np.argsort(
                [
                    (p[0] - center[0]) ** 2 + (p[1] - center[1]) ** 2
                    for p in self.points
                ]
            )
            return [int(i) for i in order[:k]]
        radius = self.cell_size
        while True:
            candidates = self.query_radius(center, radius)
            if len(candidates) >= k:
                candidates.sort(
                    key=lambda i: (self.points[i][0] - center[0]) ** 2
                    + (self.points[i][1] - center[1]) ** 2
                )
                kth_dist = math.dist(self.points[candidates[k - 1]], center)
                if kth_dist <= radius:
                    return candidates[:k]
            radius *= 2.0


def pairwise_distances(points: Sequence[Point]) -> np.ndarray:
    """Dense pairwise Euclidean distance matrix of a point list."""
    arr = np.asarray(points, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("points must be an (N, 2) collection")
    diff = arr[:, None, :] - arr[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=2))
