"""Spatial indexing for neighbour queries.

A uniform-bucket grid backed by flat NumPy arrays: the points are
bucketed in one vectorized ``np.floor`` + stable-argsort pass, occupied
cells are stored as a sorted run-length index, and range queries reduce
to a ``searchsorted`` per window cell.  Besides the classic per-call
:meth:`SpatialGrid.query_radius`, the grid answers *batches* of range
queries through :meth:`SpatialGrid.query_radius_many`, which returns
CSR-style ``(indices, indptr)`` neighbour lists — the entry point the
sparse engine tier uses to generate candidate pairs without ever
materialising an N×N distance matrix.

Falls back gracefully to scanning the occupied extent for radii larger
than the indexed area.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.primitives import Point


def _ragged_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated runs ``[starts[i], starts[i] + counts[i])``.

    Single-cumsum construction: seed with ones, write each segment
    boundary's jump from the previous run's last value to the next
    run's start, and one cumulative sum materialises every run — no
    ``np.repeat``-sized intermediates.  (Local twin of the engine
    tier's ``ragged_indices``; the network layer cannot import the
    engine package without a cycle.)
    """
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    nz = counts > 0
    if not nz.all():
        starts = starts[nz]
        counts = counts[nz]
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if starts.shape[0] > 1:
        ends = np.cumsum(counts[:-1])
        out[ends] = starts[1:] - starts[:-1] - counts[:-1] + 1
    return np.cumsum(out)


def _segment_ids(counts: np.ndarray, total: int) -> np.ndarray:
    """Segment id per element of ragged runs (``np.repeat(arange, counts)``).

    Bincount of the inner run boundaries plus one cumulative sum;
    empty segments are skipped correctly (their ids never appear).
    """
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)[:-1]
    ends = ends[ends < total]
    if ends.size == 0:
        return np.zeros(total, dtype=np.int64)
    return np.cumsum(np.bincount(ends, minlength=total))


class SpatialGrid:
    """Uniform-grid spatial index over a set of indexed points.

    The query contract (shared by the scalar and batched entry points,
    and relied on by the distributed engines' RNG draw-order contract):
    results are ordered by ascending ``(cell_x, cell_y, index)`` with
    ``cell = floor(coordinate / cell_size)``, and a point is included
    when ``dx*dx + dy*dy <= radius**2 + 1e-15``.
    """

    def __init__(self, points: Sequence[Point], cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        pts = np.asarray(points, dtype=float).reshape(-1, 2)
        self._px = np.ascontiguousarray(pts[:, 0])
        self._py = np.ascontiguousarray(pts[:, 1])
        self._count = int(pts.shape[0])
        self._points_cache: List[Tuple[float, float]] | None = None
        if self._count == 0:
            self._kx_min = self._kx_max = self._ky_min = self._ky_max = 0
            self._ny = 1
            self._order = np.zeros(0, dtype=np.int64)
            self._cell_codes = np.zeros(0, dtype=np.int64)
            self._cell_starts = np.zeros(0, dtype=np.int64)
            self._cell_ends = np.zeros(0, dtype=np.int64)
            return
        cx = np.floor(self._px / self.cell_size).astype(np.int64)
        cy = np.floor(self._py / self.cell_size).astype(np.int64)
        self._kx_min = int(cx.min())
        self._kx_max = int(cx.max())
        self._ky_min = int(cy.min())
        self._ky_max = int(cy.max())
        # Collapse the 2-d cell key into one integer so that ascending
        # code order is exactly ascending (cell_x, cell_y) order; the
        # stable argsort then breaks ties by point index, which is the
        # in-bucket insertion order of the historic per-point loop.
        self._ny = self._ky_max - self._ky_min + 1
        code = (cx - self._kx_min) * self._ny + (cy - self._ky_min)
        order = np.argsort(code, kind="stable")
        self._order = order
        sorted_codes = code[order]
        run_starts = np.nonzero(
            np.concatenate(([True], sorted_codes[1:] != sorted_codes[:-1]))
        )[0]
        self._cell_codes = sorted_codes[run_starts]
        self._cell_starts = run_starts
        self._cell_ends = np.concatenate((run_starts[1:], [self._count]))

    # ------------------------------------------------------------------
    @property
    def points(self) -> List[Tuple[float, float]]:
        """The indexed points as ``(x, y)`` tuples (built lazily)."""
        if self._points_cache is None:
            self._points_cache = list(zip(self._px.tolist(), self._py.tolist()))
        return self._points_cache

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    def query_radius(self, center: Point, radius: float) -> List[int]:
        """Indices of all points within ``radius`` of ``center`` (inclusive).

        The scanned cell window is the query disk's cell neighbourhood
        *clamped to the bounding box of occupied buckets*, so a radius
        far larger than the indexed extent costs no more than scanning
        every stored point.
        """
        indices, _ = self.query_radius_many(
            np.asarray([[float(center[0]), float(center[1])]]), radius
        )
        return indices.tolist()

    def query_radius_many(
        self, centers: np.ndarray, radius
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched range query returning CSR-style neighbour lists.

        Args:
            centers: ``(M, 2)`` array of query centers.
            radius: scalar radius shared by every query, or an ``(M,)``
                array of per-center radii.

        Returns:
            ``(indices, indptr)`` with ``indptr`` of length ``M + 1``:
            the neighbours of center ``i`` are
            ``indices[indptr[i]:indptr[i + 1]]``, ordered exactly like
            the corresponding :meth:`query_radius` call would order
            them (ascending cell key, then ascending point index).
        """
        centers = np.asarray(centers, dtype=float).reshape(-1, 2)
        m = centers.shape[0]
        radii = np.broadcast_to(np.asarray(radius, dtype=float), (m,))
        if np.any(radii < 0):
            raise ValueError("radius must be non-negative")
        if self._count == 0 or m == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(m + 1, dtype=np.int64)

        cell = self.cell_size
        # Exact per-axis cell bounds of the query disk.  The absolute
        # slack covers the inclusive membership test: a point admitted
        # by ``d^2 <= r^2 + 1e-15`` overhangs the disk by at most
        # ``sqrt(r^2 + 1e-15) - r <= sqrt(1e-15) < 1e-7``, so widening
        # each side by 1e-7 keeps the window a superset of every
        # admissible bucket while staying ~2 cells per side tighter
        # than the conservative ``ceil(r / cell) + 1`` reach.
        slack = 1e-7
        ix_lo = np.maximum(
            np.floor((centers[:, 0] - radii - slack) / cell).astype(np.int64),
            self._kx_min,
        )
        ix_hi = np.minimum(
            np.floor((centers[:, 0] + radii + slack) / cell).astype(np.int64),
            self._kx_max,
        )
        iy_lo = np.maximum(
            np.floor((centers[:, 1] - radii - slack) / cell).astype(np.int64),
            self._ky_min,
        )
        iy_hi = np.minimum(
            np.floor((centers[:, 1] + radii + slack) / cell).astype(np.int64),
            self._ky_max,
        )
        spans_x = np.maximum(ix_hi - ix_lo + 1, 0)
        # A window whose y-range misses the occupied band contributes no
        # columns at all.
        spans_x = np.where(iy_hi >= iy_lo, spans_x, 0)

        # Enumerate every (center, window column) pair, center-major.
        # Within one column the occupied cells form a contiguous run of
        # the sorted cell codes — two searchsorted calls bound it — so
        # the whole window walk collapses to three ragged expansions
        # (columns -> occupied cells -> bucketed points) with no Python
        # loop.  The flattened result is already in the contract order:
        # ascending center, then ascending (cell_x, cell_y, index).
        total_cols = int(spans_x.sum())
        if total_cols == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(m + 1, dtype=np.int64)
        col_owner = _segment_ids(spans_x, total_cols)
        flat_cols = _ragged_arange(ix_lo, spans_x)
        col_base = (flat_cols - self._kx_min) * self._ny
        lo = np.searchsorted(
            self._cell_codes, col_base + (iy_lo[col_owner] - self._ky_min), side="left"
        )
        hi = np.searchsorted(
            self._cell_codes, col_base + (iy_hi[col_owner] - self._ky_min), side="right"
        )
        run_lengths = hi - lo
        total_cells = int(run_lengths.sum())
        if total_cells == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(m + 1, dtype=np.int64)
        cell_pos = _ragged_arange(lo, run_lengths)
        cell_owner = col_owner[_segment_ids(run_lengths, total_cells)]
        starts = self._cell_starts[cell_pos]
        bucket_counts = self._cell_ends[cell_pos] - starts
        total_points = int(bucket_counts.sum())
        slot = _ragged_arange(starts, bucket_counts)
        candidates = self._order[slot]
        owners = cell_owner[_segment_ids(bucket_counts, total_points)]
        dx = self._px[candidates] - centers[owners, 0]
        dy = self._py[candidates] - centers[owners, 1]
        r2 = radii * radii
        keep = dx * dx + dy * dy <= r2[owners] + 1e-15
        candidates = candidates[keep]
        counts_per_center = np.bincount(owners[keep], minlength=m)
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts_per_center, out=indptr[1:])
        return candidates, indptr

    def k_nearest(self, center: Point, k: int) -> List[int]:
        """Indices of the ``k`` nearest points to ``center``.

        Uses an expanding-radius search over the grid; exact because the
        candidate radius is widened until at least ``k`` candidates are
        strictly inside it.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        cx, cy = float(center[0]), float(center[1])
        if k >= self._count:
            dx = self._px - cx
            dy = self._py - cy
            order = np.argsort(dx * dx + dy * dy)
            return [int(i) for i in order[:k]]
        radius = self.cell_size
        px, py = self._px, self._py
        while True:
            candidates = self.query_radius(center, radius)
            if len(candidates) >= k:
                candidates.sort(
                    key=lambda i: (px[i] - cx) ** 2 + (py[i] - cy) ** 2
                )
                kth = candidates[k - 1]
                kth_dist = math.dist((px[kth], py[kth]), center)
                if kth_dist <= radius:
                    return candidates[:k]
            radius *= 2.0


def pairwise_distances(points: Sequence[Point]) -> np.ndarray:
    """Dense pairwise Euclidean distance matrix of a point list."""
    arr = np.asarray(points, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("points must be an (N, 2) collection")
    diff = arr[:, None, :] - arr[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=2))
