"""The sensor network: nodes + target area + connectivity structure."""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.geometry.primitives import Point, distance
from repro.network.neighbors import SpatialGrid, pairwise_distances
from repro.network.node import Node
from repro.regions.region import Region


class SensorNetwork:
    """A WSN deployed over a target area.

    The network owns the node set and answers the structural queries the
    LAACAD algorithm and its analysis need: one-hop neighbours, nodes
    within a Euclidean radius (the expanding ring), multi-hop
    neighbourhoods on the unit-disk communication graph, and coverage/
    connectivity summaries.

    Args:
        region: the monitored area ``A``.
        positions: initial node positions.
        comm_range: the common transmission range ``gamma``.
    """

    def __init__(
        self,
        region: Region,
        positions: Sequence[Point],
        comm_range: float = 0.25,
    ) -> None:
        if comm_range <= 0:
            raise ValueError("comm_range must be positive")
        if not positions:
            raise ValueError("a network needs at least one node")
        self.region = region
        self.comm_range = float(comm_range)
        self.nodes: List[Node] = [
            Node(node_id=i, position=(float(p[0]), float(p[1])), comm_range=comm_range)
            for i, p in enumerate(positions)
        ]
        self._graph_cache: Optional[nx.Graph] = None
        self._grid_cache: Optional[SpatialGrid] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def size(self) -> int:
        """Number of nodes (alive or not)."""
        return len(self.nodes)

    def alive_nodes(self) -> List[Node]:
        """Nodes that are currently operational."""
        return [n for n in self.nodes if n.alive]

    def positions(self, alive_only: bool = False) -> List[Point]:
        """Current node positions, index-aligned with ``self.nodes`` unless filtered."""
        if alive_only:
            return [n.position for n in self.nodes if n.alive]
        return [n.position for n in self.nodes]

    def positions_array(self, alive_only: bool = False) -> np.ndarray:
        """Positions as an ``(N, 2)`` numpy array."""
        return np.asarray(self.positions(alive_only=alive_only), dtype=float)

    def sensing_ranges(self, alive_only: bool = False) -> List[float]:
        """Current sensing ranges, index-aligned with :meth:`positions`."""
        if alive_only:
            return [n.sensing_range for n in self.nodes if n.alive]
        return [n.sensing_range for n in self.nodes]

    def alive_mask(self) -> np.ndarray:
        """Boolean liveness mask, index-aligned with ``self.nodes``."""
        return np.asarray([n.alive for n in self.nodes], dtype=bool)

    def array_state(self) -> "NodeArrayState":
        """Struct-of-arrays snapshot of the node set (see ``repro.engine.arrays``)."""
        from repro.engine.arrays import NodeArrayState

        return NodeArrayState.from_network(self)

    def node(self, node_id: int) -> Node:
        """Node lookup by identifier."""
        if not 0 <= node_id < len(self.nodes):
            raise IndexError(f"node id {node_id} out of range")
        return self.nodes[node_id]

    # ------------------------------------------------------------------
    # Cache invalidation
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._graph_cache = None
        self._grid_cache = None

    def move_node(self, node_id: int, new_position: Point, clamp_to_region: bool = True) -> float:
        """Move a node, optionally projecting the target into the free area.

        Returns the distance actually moved.
        """
        node = self.node(node_id)
        target = (float(new_position[0]), float(new_position[1]))
        if clamp_to_region and not self.region.contains(target):
            target = self.region.nearest_free_point(target)
        moved = node.move_to(target)
        self._invalidate()
        return moved

    def apply_moves(
        self, targets: Mapping[int, Point], clamp_to_region: bool = True
    ) -> Dict[int, float]:
        """Move many nodes at once, invalidating the spatial caches once.

        Equivalent to calling :meth:`move_node` for every entry — each
        target is clamped into the free area independently and applied
        through ``Node.move_to`` (so movement energy keeps accruing) —
        except that the cached spatial grid and connectivity graph are
        invalidated a single time at the end instead of once per node.
        The deployers' synchronous end-of-round move is the intended
        caller: no neighbourhood query happens mid-batch, so the
        observable state after the batch is identical while the next
        round rebuilds the grid once instead of N times.

        Returns the distance actually moved, keyed by node id.
        """
        moved: Dict[int, float] = {}
        for node_id, new_position in targets.items():
            node = self.node(node_id)
            target = (float(new_position[0]), float(new_position[1]))
            if clamp_to_region and not self.region.contains(target):
                target = self.region.nearest_free_point(target)
            moved[node_id] = node.move_to(target)
        if moved:
            self._invalidate()
        return moved

    def set_sensing_range(self, node_id: int, sensing_range: float) -> None:
        """Tune one node's sensing range."""
        if sensing_range < 0:
            raise ValueError("sensing range must be non-negative")
        self.node(node_id).sensing_range = float(sensing_range)

    def kill_node(self, node_id: int) -> None:
        """Mark a node as failed (used by the failure injector)."""
        self.node(node_id).alive = False
        self._invalidate()

    # ------------------------------------------------------------------
    # Neighbourhood queries
    # ------------------------------------------------------------------
    def _spatial_grid(self) -> SpatialGrid:
        if self._grid_cache is None:
            self._grid_cache = SpatialGrid(self.positions(), cell_size=max(self.comm_range, 1e-6))
        return self._grid_cache

    def one_hop_neighbors(self, node_id: int) -> List[int]:
        """The paper's ``N(n_i)``: alive nodes within the transmission range."""
        node = self.node(node_id)
        candidates = self._spatial_grid().query_radius(node.position, self.comm_range)
        return [
            j
            for j in candidates
            if j != node_id and self.nodes[j].alive
        ]

    def nodes_within(self, node_id: int, radius: float) -> List[int]:
        """Alive nodes within Euclidean ``radius`` of the node (the ring ``N(n_i, rho)``)."""
        node = self.node(node_id)
        candidates = self._spatial_grid().query_radius(node.position, radius)
        return [j for j in candidates if j != node_id and self.nodes[j].alive]

    def hop_neighbors(self, node_id: int, hops: int) -> List[int]:
        """Alive nodes reachable within ``hops`` hops on the communication graph."""
        if hops < 0:
            raise ValueError("hops must be non-negative")
        graph = self.connectivity_graph()
        if node_id not in graph:
            return []
        lengths = nx.single_source_shortest_path_length(graph, node_id, cutoff=hops)
        return [j for j in lengths if j != node_id]

    def k_nearest(self, point: Point, k: int, exclude: Optional[int] = None) -> List[int]:
        """Indices of the ``k`` alive nodes nearest to an arbitrary point."""
        if k <= 0:
            raise ValueError("k must be positive")
        ordered = sorted(
            (n for n in self.nodes if n.alive and n.node_id != exclude),
            key=lambda n: distance(n.position, point),
        )
        return [n.node_id for n in ordered[:k]]

    # ------------------------------------------------------------------
    # Graph-level structure
    # ------------------------------------------------------------------
    def connectivity_graph(self) -> nx.Graph:
        """Unit-disk communication graph over alive nodes (cached)."""
        if self._graph_cache is None:
            graph = nx.Graph()
            alive = [n for n in self.nodes if n.alive]
            graph.add_nodes_from(n.node_id for n in alive)
            grid = self._spatial_grid()
            for node in alive:
                for j in grid.query_radius(node.position, self.comm_range):
                    if j != node.node_id and self.nodes[j].alive:
                        graph.add_edge(node.node_id, j)
            self._graph_cache = graph
        return self._graph_cache

    def is_connected(self) -> bool:
        """True when the communication graph over alive nodes is connected."""
        graph = self.connectivity_graph()
        if graph.number_of_nodes() <= 1:
            return True
        return nx.is_connected(graph)

    def min_degree(self) -> int:
        """Minimum node degree of the communication graph."""
        graph = self.connectivity_graph()
        if graph.number_of_nodes() == 0:
            return 0
        return min(dict(graph.degree()).values())

    def distance_matrix(self) -> np.ndarray:
        """Dense pairwise distance matrix of all node positions."""
        return pairwise_distances(self.positions())

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_random(
        cls,
        region: Region,
        count: int,
        comm_range: float = 0.25,
        rng: Optional[np.random.Generator] = None,
    ) -> "SensorNetwork":
        """Uniform random deployment of ``count`` nodes over the free area."""
        return cls(region, region.random_points(count, rng=rng), comm_range=comm_range)

    @classmethod
    def from_placement(
        cls,
        region: Region,
        placement: Mapping[str, object],
        count: int,
        comm_range: float = 0.25,
        seed: Optional[int] = 0,
    ) -> "SensorNetwork":
        """Scenario-driven constructor: build a network from a placement dict.

        Supported kinds (the scenario layer serializes these as plain
        JSON, so every parameter is a number, string or list):

        * ``{"kind": "random"}`` — uniform over the free area;
        * ``{"kind": "corner_cluster", "cluster_fraction": f}`` — the
          paper's Figure 5(a) start;
        * ``{"kind": "lattice", "lattice": "triangular"|"square"|"hexagonal"}``
          — a lattice sized to ``count`` nodes;
        * ``{"kind": "triangular_spacing", "spacing": s}`` — a triangular
          lattice with explicit spacing (``count`` is ignored; the
          lattice fills the region);
        * ``{"kind": "explicit", "positions": [[x, y], ...]}`` — verbatim
          positions.
        """
        kind = placement.get("kind", "random")
        params = {k: v for k, v in placement.items() if k != "kind"}
        if kind == "random":
            return cls.from_random(
                region, count, comm_range=comm_range, rng=np.random.default_rng(seed)
            )
        if kind == "corner_cluster":
            return cls.from_corner_cluster(
                region,
                count,
                cluster_fraction=float(params.get("cluster_fraction", 0.15)),
                comm_range=comm_range,
                rng=np.random.default_rng(seed),
            )
        if kind == "lattice":
            from repro.baselines.lattice import lattice_for_count

            positions = lattice_for_count(
                region, count, kind=str(params.get("lattice", "triangular"))
            )
            return cls(region, positions, comm_range=comm_range)
        if kind == "triangular_spacing":
            from repro.baselines.lattice import triangular_lattice

            positions = triangular_lattice(region, float(params["spacing"]))
            return cls(region, positions, comm_range=comm_range)
        if kind == "explicit":
            positions = [(float(p[0]), float(p[1])) for p in params["positions"]]
            return cls(region, positions, comm_range=comm_range)
        raise ValueError(f"unknown placement kind {kind!r}")

    @classmethod
    def from_corner_cluster(
        cls,
        region: Region,
        count: int,
        cluster_fraction: float = 0.15,
        comm_range: float = 0.25,
        rng: Optional[np.random.Generator] = None,
    ) -> "SensorNetwork":
        """The paper's Figure 5(a) initial deployment: all nodes near the bottom-left corner.

        Nodes are placed uniformly at random in the square of side
        ``cluster_fraction * bbox_extent`` anchored at the region's
        bottom-left bounding-box corner (intersected with the free area).
        """
        if not 0 < cluster_fraction <= 1.0:
            raise ValueError("cluster_fraction must be in (0, 1]")
        if rng is None:
            rng = np.random.default_rng()
        xmin, ymin, xmax, ymax = region.bbox
        side = cluster_fraction * max(xmax - xmin, ymax - ymin)
        points: List[Point] = []
        attempts = 0
        while len(points) < count and attempts < 100000:
            attempts += 1
            p = (
                float(rng.uniform(xmin, xmin + side)),
                float(rng.uniform(ymin, ymin + side)),
            )
            if region.contains(p):
                points.append(p)
        if len(points) < count:
            raise RuntimeError(
                "could not place the corner cluster inside the free area; "
                "increase cluster_fraction"
            )
        return cls(region, points, comm_range=comm_range)
