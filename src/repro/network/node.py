"""A single (mobile) sensor node."""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Tuple

from repro.geometry.primitives import Point, distance


@dataclasses.dataclass
class Node:
    """One sensor node of the WSN.

    Attributes:
        node_id: unique integer identifier.
        position: current location ``u_i``.
        sensing_range: current (tunable) sensing range ``r_i``.
        comm_range: transmission range ``gamma`` (identical for all nodes
            in the paper's model, but stored per node so heterogeneous
            scenarios remain expressible).
        alive: whether the node is operational (failure injection flips
            this to ``False``).
        is_boundary: whether the boundary-detection service currently
            flags this node as a boundary node.
        distance_traveled: cumulative movement since deployment, used to
            account for the one-time movement energy investment.
    """

    node_id: int
    position: Point
    sensing_range: float = 0.0
    comm_range: float = 0.25
    alive: bool = True
    is_boundary: bool = False
    distance_traveled: float = 0.0

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")
        if self.sensing_range < 0:
            raise ValueError("sensing_range must be non-negative")
        if self.comm_range <= 0:
            raise ValueError("comm_range must be positive")
        self.position = (float(self.position[0]), float(self.position[1]))

    def move_to(self, new_position: Point) -> float:
        """Relocate the node, returning the distance moved."""
        moved = distance(self.position, new_position)
        self.position = (float(new_position[0]), float(new_position[1]))
        self.distance_traveled += moved
        return moved

    def distance_to(self, point: Point) -> float:
        """Euclidean distance from this node to a point."""
        return distance(self.position, point)

    def covers(self, point: Point, eps: float = 1e-12) -> bool:
        """The coverage indicator ``f(v, u_i, r_i)`` of Eq. (1)."""
        return self.distance_to(point) <= self.sensing_range + eps

    def sensing_energy(self) -> float:
        """The paper's sensing-energy model ``E(r_i) = pi r_i^2``."""
        return math.pi * self.sensing_range * self.sensing_range

    def copy(self) -> "Node":
        """A deep-enough copy (positions are immutable tuples)."""
        return dataclasses.replace(self)
