"""Unified telemetry: trace spans and a metrics registry (stdlib-only).

The two halves every layer of the system reports through:

* :mod:`repro.obs.trace` — low-overhead trace spans with context
  propagation across engine stages, ``REPRO_KERNEL_THREADS`` chunk
  tasks, :class:`~repro.api.Simulation` rounds, ``SweepRunner`` pool
  workers and service requests; exported as JSONL or Chrome trace-event
  JSON (open directly in https://ui.perfetto.dev).
* :mod:`repro.obs.metrics` — process-wide counters / gauges /
  histograms with Prometheus text exposition, served by the session
  service at ``GET /metrics``.

Disabled telemetry must be invisible on the hot paths: ``span()`` with
no active collector returns a shared no-op object after a single module
attribute check, and metric increments only happen at coarse events
(pool growth, round summaries, request completions) — the contract is
enforced by ``benchmarks/export_bench.py --check-overhead``.
"""

from repro.obs import metrics, trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    exposition,
    validate_exposition,
)
from repro.obs.trace import (
    TRACE_ENV,
    TraceCollector,
    span,
    start_tracing,
    stop_tracing,
    tracing,
    tracing_active,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "TRACE_ENV",
    "TraceCollector",
    "exposition",
    "metrics",
    "span",
    "start_tracing",
    "stop_tracing",
    "trace",
    "tracing",
    "tracing_active",
    "validate_chrome_trace",
    "validate_exposition",
]
