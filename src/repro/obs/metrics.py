"""Counters, gauges and histograms with Prometheus text exposition.

The metric model is deliberately the Prometheus one, because the wire
format is the only part that matters: ``GET /metrics`` on the session
service must serve text any Prometheus-compatible scraper ingests.

Naming scheme (enforced for validity, followed by convention):

* every series is prefixed ``repro_``;
* counters end in ``_total`` and only ever go up;
* units are spelled out in the name (``_seconds``, ``_bytes``);
* subsystem comes right after the prefix — ``repro_service_*`` for the
  session manager, ``repro_http_*`` for the front end, ``repro_sweep_*``
  for the orchestrator, engine-internal series keep the bare prefix
  (``repro_piece_pool_*``, ``repro_grid_*``).

Two registry scopes exist on purpose: the module-level :data:`REGISTRY`
collects process-wide engine/sweep series, while each
:class:`~repro.service.manager.SessionManager` owns a private
:class:`MetricsRegistry` so concurrent managers (tests spin up many)
never bleed counts into each other; the service's ``/metrics`` endpoint
renders both via :func:`exposition`.

Increments are threadsafe (one lock per metric) and cheap (~a dict-free
locked float add), but still only belong at *coarse* events — per
round, per request, per pool growth — never inside per-item kernels.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "exposition",
    "gauge",
    "histogram",
    "validate_exposition",
]

#: The exposition content type (Prometheus text format 0.0.4).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): sub-ms to multi-second, the span
#: of one HTTP request against the service.
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Metric:
    """Shared base: name/help/labels bookkeeping and child management."""

    kind = "untyped"

    def __init__(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], "_Metric"] = {}

    def labels(self, *labelvalues: Any) -> "_Metric":
        """The child series for one label-value combination."""
        if not self.labelnames:
            raise ValueError(f"metric {self.name} has no labels")
        if len(labelvalues) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes {len(self.labelnames)} label "
                f"value(s), got {len(labelvalues)}"
            )
        key = tuple(str(v) for v in labelvalues)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _make_child(self) -> "_Metric":
        return type(self)(self.name, self.help_text)

    def _samples(self) -> Iterable[Tuple[str, Dict[str, str], float]]:
        """``(suffix, labels, value)`` rows for the exposition."""
        raise NotImplementedError

    def _all_samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        if not self.labelnames:
            return list(self._samples())
        rows: List[Tuple[str, Dict[str, str], float]] = []
        with self._lock:
            children = list(self._children.items())
        for key, child in children:
            labels = dict(zip(self.labelnames, key))
            for suffix, extra, value in child._samples():
                merged = dict(labels)
                merged.update(extra)
                rows.append((suffix, merged, value))
        return rows


class Counter(_Metric):
    """A monotonically increasing count (name it ``*_total``)."""

    kind = "counter"

    def __init__(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _samples(self):
        return [("", {}, self.value)]


class Gauge(_Metric):
    """A value that can go either way; optionally computed at scrape.

    :meth:`set_function` turns the gauge into a callback read at
    exposition time — the pattern for derived state (live sessions,
    resident bytes) that already has one source of truth elsewhere.
    """

    kind = "gauge"

    def __init__(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self._value = 0.0
        self._function: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, function: Callable[[], float]) -> None:
        self._function = function

    @property
    def value(self) -> float:
        if self._function is not None:
            return float(self._function())
        with self._lock:
            return self._value

    def _samples(self):
        return [("", {}, self.value)]


class Histogram(_Metric):
    """Cumulative-bucket histogram (the Prometheus layout).

    ``observe(v)`` increments every bucket with ``le >= v`` plus the
    running sum/count — quantiles are the scraper's job, the process
    only pays a ``bisect`` and one locked add per observation.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help_text, buckets=self.bounds)

    def observe(self, value: float) -> None:
        # bisect_left keeps ``le`` inclusive: a value equal to a bucket
        # bound counts inside that bucket, as the Prometheus model says.
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def _samples(self):
        with self._lock:
            counts = list(self._counts)
            total = self._count
            running_sum = self._sum
        rows: List[Tuple[str, Dict[str, str], float]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, counts):
            cumulative += bucket_count
            rows.append(("_bucket", {"le": _format_value(bound)}, cumulative))
        rows.append(("_bucket", {"le": "+Inf"}, total))
        rows.append(("_sum", {}, running_sum))
        rows.append(("_count", {}, total))
        return rows


class MetricsRegistry:
    """An ordered, get-or-create collection of metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help_text, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames=labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames=labelnames, buckets=buckets
        )

    def collect(self) -> List[_Metric]:
        with self._lock:
            return list(self._metrics.values())

    def exposition(self) -> str:
        return exposition(self)


#: The process-wide default registry (engine / sweep / piece-pool
#: series).  Service managers hold private registries on top of it.
REGISTRY = MetricsRegistry()


def counter(name: str, help_text: str = "", labelnames: Sequence[str] = ()) -> Counter:
    """Get-or-create a counter on the default registry."""
    return REGISTRY.counter(name, help_text, labelnames)


def gauge(name: str, help_text: str = "", labelnames: Sequence[str] = ()) -> Gauge:
    """Get-or-create a gauge on the default registry."""
    return REGISTRY.gauge(name, help_text, labelnames)


def histogram(
    name: str,
    help_text: str = "",
    labelnames: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> Histogram:
    """Get-or-create a histogram on the default registry."""
    return REGISTRY.histogram(name, help_text, labelnames, buckets)


def exposition(*registries: MetricsRegistry) -> str:
    """Render registries as Prometheus text format 0.0.4.

    Each metric family renders once — on a name collision the earliest
    registry wins; the service passes its private registry before the
    process-wide one.
    """
    seen = set()
    lines: List[str] = []
    for registry in registries:
        for metric in registry.collect():
            if metric.name in seen:
                continue
            seen.add(metric.name)
            help_text = metric.help_text.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {metric.name} {help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for suffix, labels, value in metric._all_samples():
                if labels:
                    rendered = ",".join(
                        f'{key}="{_escape_label(str(val))}"'
                        for key, val in labels.items()
                    )
                    lines.append(
                        f"{metric.name}{suffix}{{{rendered}}} {_format_value(value)}"
                    )
                else:
                    lines.append(f"{metric.name}{suffix} {_format_value(value)}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+-]+|[+-]Inf|NaN)$"
)


def validate_exposition(text: str) -> Dict[str, str]:
    """Validate Prometheus text exposition; returns ``{family: type}``.

    Raises ``ValueError`` on the first malformed line.  Checks the
    format rules a scraper depends on: every sample parses, every
    sample's family was declared by a preceding ``# TYPE``, counters
    end in ``_total``, histograms expose ``_bucket``/``_sum``/``_count``
    with a ``+Inf`` bucket, and the payload ends with a newline.
    """
    if not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    families: Dict[str, str] = {}
    histogram_state: Dict[str, set] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                raise ValueError(f"line {line_number}: malformed TYPE line")
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {line_number}: unknown type {kind!r}")
            if kind == "counter" and not name.endswith("_total"):
                raise ValueError(
                    f"line {line_number}: counter {name!r} must end in _total"
                )
            families[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: unparseable sample: {line!r}")
        sample_name = match.group(1)
        family = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if trimmed and families.get(trimmed) == "histogram":
                family = trimmed
                histogram_state.setdefault(trimmed, set()).add(suffix)
                if suffix == "_bucket" and 'le="+Inf"' in (match.group(2) or ""):
                    histogram_state[trimmed].add("+Inf")
                break
        if family not in families:
            raise ValueError(
                f"line {line_number}: sample {sample_name!r} has no TYPE "
                f"declaration"
            )
    for name, seen in histogram_state.items():
        for required in ("_bucket", "_sum", "_count", "+Inf"):
            if required not in seen:
                raise ValueError(
                    f"histogram {name!r} is missing its {required} series"
                )
    return families
