"""Trace spans: timed, parented, exportable to JSONL and Chrome format.

A *span* is one timed region of execution (an engine stage, a kernel
chunk, a simulation round, an HTTP request) with a name, key/value
attributes, and a parent — the span that was open on the current
logical context when it started.  Parentage rides on a
:class:`contextvars.ContextVar`, so it follows ``await`` points and can
be carried into worker threads (:func:`wrap_chunk_tasks`) and across
process boundaries (:meth:`TraceCollector.adopt`).

Tracing is off by default and must cost nothing on the hot paths: with
no active collector, :func:`span` returns one shared no-op object after
a single module-global check — no allocation, no clock read.  Enabling
is process-global (:func:`start_tracing` / the :func:`tracing` context
manager / the ``REPRO_TRACE`` environment knob read by the CLIs), which
matches how the knob is used: one run, one trace file.

Export formats:

* ``*.jsonl`` — one JSON object per span, the machine-diffable form;
* Chrome trace-event JSON (any other extension) — complete (``"X"``)
  events grouped per process/thread, so a trace of a threaded sparse
  round opens directly in https://ui.perfetto.dev and shows per-worker
  parallel efficiency as stacked thread tracks.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "TRACE_ENV",
    "TraceCollector",
    "annotate",
    "current_collector",
    "span",
    "start_tracing",
    "stop_tracing",
    "tracing",
    "tracing_active",
    "validate_chrome_trace",
    "wrap_chunk_tasks",
]

#: Environment knob read by the CLIs (``repro serve --trace-out`` /
#: ``laacad-experiments --trace-out`` default to it): a path to write
#: the trace to, or ``1`` for collect-only (tests, pool workers).
TRACE_ENV = "REPRO_TRACE"

#: The span currently open on this logical context (``None`` at root).
_CURRENT: "contextvars.ContextVar[Optional[_Span]]" = contextvars.ContextVar(
    "repro_trace_span", default=None
)

#: The process-global active collector; ``span()`` is a no-op while it
#: is ``None`` — this single module-global check is the entire disabled
#: overhead.
_ACTIVE: Optional["TraceCollector"] = None


class _NoopSpan:
    """The shared disabled-path span: enter/exit do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    """One live span: context-manager handle while open, row when closed."""

    __slots__ = (
        "collector",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "duration",
        "_start",
        "_token",
    )

    def __init__(self, collector: "TraceCollector", name: str, attrs: Dict[str, Any]):
        self.collector = collector
        self.name = name
        self.attrs = attrs
        self.duration = 0.0

    def __enter__(self) -> "_Span":
        parent = _CURRENT.get()
        self.parent_id = parent.span_id if parent is not None else 0
        self.span_id = self.collector._next_id()
        self._token = _CURRENT.set(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = time.perf_counter()
        _CURRENT.reset(self._token)
        self.duration = end - self._start
        self.collector._record(self, self._start)
        return False


class TraceCollector:
    """Accumulates closed spans; thread-safe; exports JSONL / Chrome.

    Span rows are plain dicts (the JSONL schema)::

        {"name": str, "id": int, "parent": int, "ts": float (epoch s),
         "dur": float (s), "pid": int, "tid": int, "thread": str,
         "args": {...}}

    ``parent == 0`` marks a root span.  Timestamps are wall-clock
    anchored (``epoch + perf_counter``) so spans adopted from other
    processes land on one shared timeline.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rows: List[Dict[str, Any]] = []
        self._ids = itertools.count(1)
        # perf_counter → wall-clock anchor, fixed for the collector's
        # lifetime so every span shares one timebase.
        self._epoch = time.time() - time.perf_counter()

    def _next_id(self) -> int:
        with self._lock:
            return next(self._ids)

    def _record(self, span: "_Span", start_perf: float) -> None:
        thread = threading.current_thread()
        row = {
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "ts": self._epoch + start_perf,
            "dur": span.duration,
            "pid": os.getpid(),
            "tid": thread.ident,
            "thread": thread.name,
            "args": dict(span.attrs) if span.attrs else {},
        }
        with self._lock:
            self._rows.append(row)

    # ------------------------------------------------------------------
    # Reading / merging
    # ------------------------------------------------------------------
    def rows(self) -> List[Dict[str, Any]]:
        """A snapshot of the recorded span rows (closure order)."""
        with self._lock:
            return [dict(row) for row in self._rows]

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def adopt(
        self, rows: Iterable[Dict[str, Any]], parent_id: Optional[int] = None
    ) -> None:
        """Merge spans recorded by another collector (e.g. a pool worker).

        Foreign span ids are remapped onto this collector's id space so
        they cannot collide; foreign *root* spans (``parent == 0``) are
        re-parented under ``parent_id`` when given, stitching a worker's
        subtree under the dispatching span.  Timestamps and pids are
        kept verbatim — the wall-clock anchor is the shared timebase.
        """
        rows = list(rows)
        remap: Dict[int, int] = {}
        adopted = []
        for row in rows:
            remap[row["id"]] = self._next_id()
        for row in rows:
            row = dict(row)
            row["id"] = remap[row["id"]]
            old_parent = row["parent"]
            if old_parent in remap:
                row["parent"] = remap[old_parent]
            elif parent_id is not None:
                row["parent"] = parent_id
            adopted.append(row)
        with self._lock:
            self._rows.extend(adopted)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per line, in closure order."""
        return "".join(json.dumps(row, sort_keys=True) + "\n" for row in self.rows())

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome trace-event projection (Perfetto-loadable).

        Every span becomes one complete (``"ph": "X"``) event with
        microsecond timestamps relative to the earliest span; process
        and thread name metadata events give Perfetto readable track
        labels (one track per worker thread).
        """
        rows = self.rows()
        base = min((row["ts"] for row in rows), default=0.0)
        events: List[Dict[str, Any]] = []
        named_tracks: Dict[tuple, str] = {}
        for row in rows:
            named_tracks.setdefault((row["pid"], row["tid"]), row["thread"])
            args = dict(row["args"])
            args["span_id"] = row["id"]
            if row["parent"]:
                args["parent_id"] = row["parent"]
            events.append(
                {
                    "name": row["name"],
                    "cat": "repro",
                    "ph": "X",
                    "ts": (row["ts"] - base) * 1e6,
                    "dur": row["dur"] * 1e6,
                    "pid": row["pid"],
                    "tid": row["tid"],
                    "args": args,
                }
            )
        for (pid, tid), thread_name in sorted(named_tracks.items()):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread_name},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str) -> str:
        """Write the trace: ``*.jsonl`` → JSONL, anything else → Chrome."""
        if str(path).endswith(".jsonl"):
            payload = self.to_jsonl()
        else:
            payload = json.dumps(self.to_chrome())
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        return str(path)


# ----------------------------------------------------------------------
# The span API
# ----------------------------------------------------------------------
def span(name: str, **attrs: Any):
    """Open a span: ``with span("clip", round=r, tier=t): ...``.

    With tracing off this returns the shared no-op object — the cost is
    the one module-global check above, which is the overhead contract
    the hot paths rely on (see ``--check-overhead``).
    """
    if _ACTIVE is None:
        return _NOOP
    return _Span(_ACTIVE, name, attrs)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the innermost open span (no-op untraced).

    Lets code deep inside a request/round add context (HTTP method,
    status, cell digest) to a span opened further up the stack.
    """
    if _ACTIVE is None:
        return
    current = _CURRENT.get()
    if current is not None:
        current.attrs.update(attrs)


def current_collector() -> Optional[TraceCollector]:
    """The active collector, or ``None`` when tracing is off."""
    return _ACTIVE


def tracing_active() -> bool:
    return _ACTIVE is not None


def start_tracing(collector: Optional[TraceCollector] = None) -> TraceCollector:
    """Activate tracing process-wide; returns the active collector."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("tracing is already active; stop_tracing() first")
    _ACTIVE = collector if collector is not None else TraceCollector()
    return _ACTIVE


def stop_tracing() -> Optional[TraceCollector]:
    """Deactivate tracing; returns the collector that was active."""
    global _ACTIVE
    collector = _ACTIVE
    _ACTIVE = None
    return collector


@contextmanager
def tracing(collector: Optional[TraceCollector] = None):
    """``with tracing() as collector: ...`` — scoped start/stop."""
    active = start_tracing(collector)
    try:
        yield active
    finally:
        stop_tracing()


@contextmanager
def collecting():
    """Run with a fresh *private* collector, restoring the previous state.

    The pool-worker entry hook: a forked worker may have inherited the
    parent's active collector, whose rows would be lost with the child
    process — this swaps in a local one whose rows the worker returns
    explicitly (the dispatcher stitches them back via :meth:`adopt`).
    """
    global _ACTIVE
    previous = _ACTIVE
    local = TraceCollector()
    _ACTIVE = local
    # A fork also inherits the parent's *current span*, whose id means
    # nothing in (and may collide with) the local collector's id space —
    # spans recorded here must be roots, re-parented by the adopter.
    token = _CURRENT.set(None)
    try:
        yield local
    finally:
        _CURRENT.reset(token)
        _ACTIVE = previous


def wrap_chunk_tasks(
    tasks: Sequence[Callable[[], Any]], name: str = "chunk"
) -> List[Callable[[], Any]]:
    """Wrap chunk thunks so each runs inside its own child span.

    Each wrapped task runs under a *copy* of the submitting context, so
    a chunk executed on a pool thread is still parented to the span
    that dispatched it (``ThreadPoolExecutor`` does not propagate
    contextvars by itself).  ``seq`` records the submission index — the
    reduction order — so a Perfetto view of the worker tracks shows
    which chunks ran where.  Wrapping changes scheduling metadata only,
    never results: the thunks run unchanged, in the same order.
    """
    wrapped: List[Callable[[], Any]] = []
    for index, task in enumerate(tasks):
        context = contextvars.copy_context()

        def run(task=task, index=index, context=context):
            return context.run(_run_chunk, name, index, task)

        wrapped.append(run)
    return wrapped


def _run_chunk(name: str, index: int, task: Callable[[], Any]) -> Any:
    with span(name, seq=index):
        return task()


# ----------------------------------------------------------------------
# Chrome trace-event schema check
# ----------------------------------------------------------------------
#: The subset of the Chrome trace-event format the exporter emits;
#: :func:`validate_chrome_trace` enforces it field by field (the CI
#: round-trip check and the tests share this single definition).
CHROME_TRACE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["traceEvents"],
    "event": {
        "X": {
            "required": {
                "name": str,
                "ph": str,
                "ts": (int, float),
                "dur": (int, float),
                "pid": int,
                "tid": int,
                "args": dict,
            },
        },
        "M": {
            "required": {"name": str, "ph": str, "pid": int, "args": dict},
        },
    },
}


def validate_chrome_trace(payload: Any) -> int:
    """Validate a Chrome trace-event payload; returns the event count.

    Raises ``ValueError`` naming the first offending event and field.
    Checks the envelope, the per-phase required fields and types, and
    that durations/timestamps are non-negative — the properties Perfetto
    needs to render the trace at all.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload must have a 'traceEvents' array")
    schemas = CHROME_TRACE_SCHEMA["event"]
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{position}] is not an object")
        phase = event.get("ph")
        schema = schemas.get(phase)
        if schema is None:
            raise ValueError(
                f"traceEvents[{position}] has unsupported phase {phase!r}"
            )
        for field, expected in schema["required"].items():
            if field not in event:
                raise ValueError(f"traceEvents[{position}] lacks {field!r}")
            if not isinstance(event[field], expected):
                raise ValueError(
                    f"traceEvents[{position}].{field} has type "
                    f"{type(event[field]).__name__}"
                )
        if phase == "X" and (event["ts"] < 0 or event["dur"] < 0):
            raise ValueError(f"traceEvents[{position}] has a negative time")
    return len(events)
