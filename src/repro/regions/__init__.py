"""Target-area abstractions (the monitored area ``A`` of the paper).

A :class:`~repro.regions.region.Region` is a simple outer polygon minus a
set of hole polygons (obstacles).  Regions provide the geometric services
the rest of the system needs: containment, convex decomposition (for the
k-order Voronoi engine), grid sampling (for coverage verification),
random point generation (for initial deployments) and nearest-free-point
projection (for mobility constrained by obstacles).
"""

from repro.regions.region import Region
from repro.regions.shapes import (
    cross_region,
    l_shaped_region,
    rectangle_region,
    square_region,
    square_with_obstacles,
    unit_square,
)
from repro.regions.grid import GridSampler

__all__ = [
    "Region",
    "GridSampler",
    "square_region",
    "rectangle_region",
    "unit_square",
    "l_shaped_region",
    "cross_region",
    "square_with_obstacles",
]
