"""Grid sampling of a region, used by the coverage verifier.

The coverage analysis (``repro.analysis.coverage``) checks the paper's
central property — "every point of A is covered by at least k nodes" —
on a dense grid of sample points.  :class:`GridSampler` caches the grid
for a given (region, resolution) pair so that repeated per-round coverage
checks do not re-run the containment tests.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.geometry.primitives import Point
from repro.regions.region import Region


class GridSampler:
    """Cached uniform grid of sample points inside a region's free area."""

    def __init__(self, region: Region, resolution: int = 50) -> None:
        if resolution < 2:
            raise ValueError("grid resolution must be at least 2")
        self.region = region
        self.resolution = resolution
        self._points: Optional[np.ndarray] = None

    @property
    def points(self) -> np.ndarray:
        """Sample points as an ``(M, 2)`` float array (lazily computed)."""
        if self._points is None:
            pts = self.region.grid_points(self.resolution)
            if not pts:
                raise ValueError(
                    "grid produced no interior points; increase the resolution"
                )
            self._points = np.asarray(pts, dtype=float)
        return self._points

    @property
    def cell_size(self) -> float:
        """Approximate spacing between neighbouring grid samples."""
        xmin, ymin, xmax, ymax = self.region.bbox
        return max(xmax - xmin, ymax - ymin) / (self.resolution - 1)

    def as_list(self) -> List[Point]:
        """The sample points as a list of tuples."""
        return [(float(x), float(y)) for x, y in self.points]

    def __len__(self) -> int:
        return int(self.points.shape[0])
