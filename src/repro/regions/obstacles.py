"""Obstacle helpers.

Obstacles are plain hole polygons inside a :class:`~repro.regions.region.Region`.
This module provides convenience constructors and validity checks used by
the Figure 8 experiment and by user scenarios.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry.polygon import point_in_polygon, polygon_area
from repro.geometry.primitives import Point
from repro.regions.region import Region


def rectangular_obstacle(x0: float, y0: float, x1: float, y1: float) -> List[Point]:
    """A rectangular obstacle given by two opposite corners."""
    if x1 <= x0 or y1 <= y0:
        raise ValueError("obstacle corners must satisfy x1 > x0 and y1 > y0")
    return [(x0, y0), (x1, y0), (x1, y1), (x0, y1)]


def regular_polygon_obstacle(
    center: Tuple[float, float], radius: float, sides: int = 6
) -> List[Point]:
    """A regular polygonal obstacle (hexagonal by default)."""
    import math

    if sides < 3:
        raise ValueError("an obstacle polygon needs at least 3 sides")
    if radius <= 0:
        raise ValueError("obstacle radius must be positive")
    cx, cy = center
    return [
        (
            cx + radius * math.cos(2.0 * math.pi * i / sides),
            cy + radius * math.sin(2.0 * math.pi * i / sides),
        )
        for i in range(sides)
    ]


def validate_obstacles(region: Region) -> None:
    """Sanity-check that every hole lies inside the outer boundary.

    Raises:
        ValueError: when a hole vertex falls outside the outer polygon or
            a hole has non-positive area.
    """
    for hole in region.holes:
        if polygon_area(hole) <= 0:
            raise ValueError("obstacle with non-positive area")
        for vertex in hole:
            if not point_in_polygon(vertex, region.outer, include_boundary=True):
                raise ValueError(
                    f"obstacle vertex {vertex} lies outside the region boundary"
                )


def total_obstacle_area(region: Region) -> float:
    """Sum of the areas of all obstacles in the region."""
    return sum(polygon_area(h) for h in region.holes)
