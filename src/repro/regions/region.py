"""The target area ``A``: an outer polygon minus obstacle holes."""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.clipping import clip_polygon_polygon
from repro.geometry.polygon import (
    bounding_box,
    ensure_ccw,
    point_in_polygon,
    polygon_area,
    polygon_edges,
)
from repro.geometry.predicates import point_segment_distance
from repro.geometry.primitives import Point, distance
from repro.geometry.triangulate import decompose_with_holes

Polygon = List[Point]


class Region:
    """A 2-D target area, possibly non-convex and possibly with obstacles.

    Args:
        outer: simple polygon bounding the monitored area (either
            winding; stored CCW).
        holes: simple polygons fully contained in ``outer`` that sensor
            nodes can neither occupy nor need to cover (obstacles).
        name: optional human-readable label used by the experiment
            runners when emitting results.
    """

    def __init__(
        self,
        outer: Sequence[Point],
        holes: Sequence[Sequence[Point]] = (),
        name: str = "region",
    ) -> None:
        if len(outer) < 3:
            raise ValueError("a region's outer boundary needs at least 3 vertices")
        self.outer: Polygon = ensure_ccw([(float(x), float(y)) for x, y in outer])
        self.holes: List[Polygon] = [
            ensure_ccw([(float(x), float(y)) for x, y in hole]) for hole in holes
        ]
        for hole in self.holes:
            if len(hole) < 3:
                raise ValueError("each hole needs at least 3 vertices")
        self.name = name
        self._convex_pieces: Optional[List[Polygon]] = None

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def area(self) -> float:
        """Free (coverable) area: outer area minus hole areas."""
        return polygon_area(self.outer) - sum(polygon_area(h) for h in self.holes)

    @property
    def bbox(self) -> Tuple[float, float, float, float]:
        """Axis-aligned bounding box ``(xmin, ymin, xmax, ymax)`` of the outer boundary."""
        return bounding_box(self.outer)

    @property
    def diameter(self) -> float:
        """Diameter of the bounding box — an upper bound for any sensing range."""
        xmin, ymin, xmax, ymax = self.bbox
        return math.hypot(xmax - xmin, ymax - ymin)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"Region(name={self.name!r}, outer_vertices={len(self.outer)}, "
            f"holes={len(self.holes)}, area={self.area:.4f})"
        )

    # ------------------------------------------------------------------
    # Containment and distances
    # ------------------------------------------------------------------
    def contains(self, point: Point, include_boundary: bool = True) -> bool:
        """True when ``point`` lies in the free area (outside all holes)."""
        if not point_in_polygon(point, self.outer, include_boundary=include_boundary):
            return False
        for hole in self.holes:
            if point_in_polygon(point, hole, include_boundary=not include_boundary):
                return False
        return True

    def distance_to_boundary(self, point: Point) -> float:
        """Distance from ``point`` to the nearest free-area boundary edge.

        The boundary of the free area consists of the outer polygon's
        edges and every hole's edges.
        """
        best = math.inf
        for a, b in polygon_edges(self.outer):
            best = min(best, point_segment_distance(point, a, b))
        for hole in self.holes:
            for a, b in polygon_edges(hole):
                best = min(best, point_segment_distance(point, a, b))
        return best

    def nearest_free_point(self, point: Point, samples_per_edge: int = 32) -> Point:
        """Project ``point`` onto the free area.

        If the point is already free it is returned unchanged; otherwise
        the closest point on the free-area boundary is returned (obtained
        by sampling each boundary edge and refining around the best
        sample).  Used by the mobility layer so that a node whose motion
        target falls inside an obstacle stops at the obstacle's edge.
        """
        if self.contains(point):
            return point

        best_point = None
        best_dist = math.inf
        edges: List[Tuple[Point, Point]] = list(polygon_edges(self.outer))
        for hole in self.holes:
            edges.extend(polygon_edges(hole))
        for a, b in edges:
            for t in np.linspace(0.0, 1.0, samples_per_edge):
                cand = (a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1]))
                d = distance(point, cand)
                if d < best_dist and self.contains(cand):
                    best_dist = d
                    best_point = cand
        if best_point is None:
            # Extremely degenerate (e.g. region thinner than the sampling
            # step); fall back to the nearest outer vertex.
            best_point = min(self.outer, key=lambda v: distance(point, v))
        return best_point

    # ------------------------------------------------------------------
    # Decomposition and clipping
    # ------------------------------------------------------------------
    def convex_pieces(self) -> List[Polygon]:
        """Convex decomposition of the free area (cached).

        The k-order Voronoi engine runs its budgeted clipping on each
        convex piece independently and unions the results.
        """
        if self._convex_pieces is None:
            self._convex_pieces = decompose_with_holes(self.outer, self.holes)
        return self._convex_pieces

    def clip_convex(self, convex_polygon: Sequence[Point]) -> List[Polygon]:
        """Intersect a convex polygon with the free area.

        Returns a list of convex pieces (the intersection of a convex
        polygon with a non-convex free area is generally a union of
        convex pieces).
        """
        results: List[Polygon] = []
        for piece in self.convex_pieces():
            clipped = clip_polygon_polygon(piece, list(convex_polygon))
            if len(clipped) >= 3 and polygon_area(clipped) > 1e-12:
                results.append(clipped)
        return results

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def grid_points(self, resolution: int) -> List[Point]:
        """Points of a ``resolution x resolution`` grid that fall in the free area."""
        if resolution < 2:
            raise ValueError("grid resolution must be at least 2")
        xmin, ymin, xmax, ymax = self.bbox
        xs = np.linspace(xmin, xmax, resolution)
        ys = np.linspace(ymin, ymax, resolution)
        points: List[Point] = []
        for x in xs:
            for y in ys:
                p = (float(x), float(y))
                if self.contains(p):
                    points.append(p)
        return points

    def random_points(
        self, count: int, rng: Optional[np.random.Generator] = None
    ) -> List[Point]:
        """Uniformly random points in the free area (rejection sampling)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if rng is None:
            rng = np.random.default_rng()
        xmin, ymin, xmax, ymax = self.bbox
        points: List[Point] = []
        attempts = 0
        max_attempts = max(1000, 1000 * count)
        while len(points) < count and attempts < max_attempts:
            attempts += 1
            p = (
                float(rng.uniform(xmin, xmax)),
                float(rng.uniform(ymin, ymax)),
            )
            if self.contains(p):
                points.append(p)
        if len(points) < count:
            raise RuntimeError(
                "rejection sampling failed to place the requested number of "
                "points; the free area is too small relative to its bounding box"
            )
        return points

    def vertices(self) -> List[Point]:
        """All boundary vertices (outer + holes)."""
        verts = list(self.outer)
        for hole in self.holes:
            verts.extend(hole)
        return verts
