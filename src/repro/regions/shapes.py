"""Factories for the target areas used by the paper's experiments.

The paper's main experiments (Figures 5-7, Tables I-II) use a 1 km^2
square; Figure 8 uses two irregular areas with obstacles.  The exact
irregular shapes are not specified numerically in the paper, so we define
representative equivalents: an L-shaped hall with a rectangular obstacle
and a cross-shaped area with two obstacles.  What matters for the
reproduction is the *behaviour* (LAACAD adapting around holes and
non-convex boundaries), not the exact silhouette.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry.primitives import Point
from repro.regions.region import Region


def rectangle_region(
    width: float, height: float, origin: Tuple[float, float] = (0.0, 0.0), name: str = "rectangle"
) -> Region:
    """Axis-aligned rectangle with the given width/height and lower-left origin."""
    if width <= 0 or height <= 0:
        raise ValueError("rectangle dimensions must be positive")
    x0, y0 = origin
    outer = [
        (x0, y0),
        (x0 + width, y0),
        (x0 + width, y0 + height),
        (x0, y0 + height),
    ]
    return Region(outer, name=name)


def square_region(side: float, origin: Tuple[float, float] = (0.0, 0.0), name: str = "square") -> Region:
    """Axis-aligned square of the given side length."""
    return rectangle_region(side, side, origin=origin, name=name)


def unit_square(name: str = "unit-square") -> Region:
    """The canonical 1 x 1 target area (the paper's 1 km^2 area in km units)."""
    return square_region(1.0, name=name)


def l_shaped_region(size: float = 1.0, notch_fraction: float = 0.5, name: str = "l-shape") -> Region:
    """An L-shaped area: a square with its top-right quadrant removed."""
    if not 0.0 < notch_fraction < 1.0:
        raise ValueError("notch_fraction must be in (0, 1)")
    s = size
    n = size * notch_fraction
    outer = [
        (0.0, 0.0),
        (s, 0.0),
        (s, s - n),
        (s - n, s - n),
        (s - n, s),
        (0.0, s),
    ]
    return Region(outer, name=name)


def cross_region(size: float = 1.0, arm_fraction: float = 0.4, name: str = "cross") -> Region:
    """A plus/cross shaped area inscribed in a ``size x size`` square."""
    if not 0.0 < arm_fraction < 1.0:
        raise ValueError("arm_fraction must be in (0, 1)")
    s = size
    a = size * arm_fraction / 2.0  # half arm width
    c = size / 2.0
    outer = [
        (c - a, 0.0),
        (c + a, 0.0),
        (c + a, c - a),
        (s, c - a),
        (s, c + a),
        (c + a, c + a),
        (c + a, s),
        (c - a, s),
        (c - a, c + a),
        (0.0, c + a),
        (0.0, c - a),
        (c - a, c - a),
    ]
    return Region(outer, name=name)


def _rect(x0: float, y0: float, x1: float, y1: float) -> List[Point]:
    return [(x0, y0), (x1, y0), (x1, y1), (x0, y1)]


def square_with_obstacles(
    side: float = 1.0,
    obstacles: Sequence[Sequence[Point]] = (),
    name: str = "square-with-obstacles",
) -> Region:
    """A square area with caller-provided obstacle polygons."""
    region = square_region(side, name=name)
    return Region(region.outer, holes=list(obstacles), name=name)


def figure8_region_one(name: str = "fig8-region-I") -> Region:
    """Irregular area I for the Figure 8 experiment.

    A unit square with one central rectangular obstacle — the simplest
    area exercising the "hole that mobile nodes cannot move upon" code
    path.
    """
    holes = [_rect(0.40, 0.40, 0.60, 0.60)]
    return square_with_obstacles(1.0, obstacles=holes, name=name)


def figure8_region_two(name: str = "fig8-region-II") -> Region:
    """Irregular area II for the Figure 8 experiment.

    An L-shaped area with two rectangular obstacles, i.e. both a
    non-convex outer boundary and interior holes.
    """
    base = l_shaped_region(size=1.0, notch_fraction=0.45, name=name)
    holes = [
        _rect(0.15, 0.15, 0.30, 0.30),
        _rect(0.60, 0.15, 0.75, 0.35),
    ]
    return Region(base.outer, holes=holes, name=name)
