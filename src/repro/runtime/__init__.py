"""Distributed runtime: message-passing execution of LAACAD.

The centralized driver in :mod:`repro.core.laacad` evaluates the
geometry directly.  This package executes the same algorithm as a
*protocol*: every node is an agent that, once per period, floods a
position query through its expanding ring, receives replies hop by hop,
computes its dominating region from the replies only, and moves.  The
scheduler is synchronous (round = the paper's period ``tau``) and every
message is accounted for, which yields the communication-overhead data
the localized design is meant to minimise.

Failure injection (node crashes, reply losses) is layered on top so the
robustness of k-coverage under failures can be studied — the motivation
the paper gives for k > 1 in the first place.
"""

from repro.runtime.messages import Message, MessageKind
from repro.runtime.scheduler import SynchronousScheduler, CommunicationStats
from repro.runtime.agent import NodeAgent
from repro.runtime.engines import (
    BatchedDistributedEngine,
    DistributedEngineRound,
    DistributedRoundEngine,
    LegacyDistributedEngine,
    available_distributed_engines,
    make_distributed_engine,
    register_distributed_engine,
)
from repro.runtime.sparse import SparseDistributedEngine
from repro.runtime.protocol import DistributedLaacadRunner, DistributedRoundStats
from repro.runtime.failures import FailureInjector

__all__ = [
    "Message",
    "MessageKind",
    "SynchronousScheduler",
    "CommunicationStats",
    "NodeAgent",
    "BatchedDistributedEngine",
    "DistributedEngineRound",
    "DistributedRoundEngine",
    "LegacyDistributedEngine",
    "SparseDistributedEngine",
    "available_distributed_engines",
    "make_distributed_engine",
    "register_distributed_engine",
    "DistributedLaacadRunner",
    "DistributedRoundStats",
    "FailureInjector",
]
