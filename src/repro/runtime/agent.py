"""Base class for protocol agents running on sensor nodes."""

from __future__ import annotations

import abc
from typing import List, Optional

from repro.network.network import SensorNetwork
from repro.runtime.messages import Message
from repro.runtime.scheduler import SynchronousScheduler


class NodeAgent(abc.ABC):
    """One protocol instance, co-located with a sensor node.

    Agents interact with the world exclusively through the scheduler
    (messages) and through the narrow ``SensorNetwork`` queries that model
    what the radio layer can actually provide (who is within range, who
    answers a flood).  They must not read other nodes' state directly.
    """

    def __init__(
        self,
        node_id: int,
        network: SensorNetwork,
        scheduler: SynchronousScheduler,
    ) -> None:
        self.node_id = node_id
        self.network = network
        self.scheduler = scheduler

    # ------------------------------------------------------------------
    @property
    def node(self):
        """The physical node this agent runs on."""
        return self.network.node(self.node_id)

    @property
    def alive(self) -> bool:
        """Whether the underlying node is operational."""
        return self.node.alive

    def receive(self) -> List[Message]:
        """Drain this agent's inbox."""
        return self.scheduler.collect_inbox(self.node_id)

    def send(self, message: Message) -> bool:
        """Send a message through the scheduler (subject to the loss model)."""
        return self.scheduler.send(message)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def step(self, round_index: int) -> None:
        """Execute one protocol round."""
        raise NotImplementedError
