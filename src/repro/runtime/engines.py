"""Pluggable round-execution backends for the *distributed* protocol.

PR 1 split the centralized Algorithm-1 hot path into a ``RoundEngine``
registry with a scalar ``legacy`` reference and an array-native
``batched`` backend.  This module applies the same treatment to the
message-passing protocol (Algorithm 1+2 as executed by
:class:`repro.api.deployers.DistributedDeployer`):

* :class:`LegacyDistributedEngine` — one :class:`LaacadAgent` per node,
  every expanding-ring exchange accounted message by message through
  the scheduler (the original, message-level execution);
* :class:`BatchedDistributedEngine` — the same protocol simulated at
  the *round* level: one pairwise distance matrix per round, every
  node's ring memberships derived from it by thresholding instead of
  repeated :class:`~repro.network.neighbors.SpatialGrid` queries, loss
  sampling vectorised per ring, and the surviving neighbour sets fed
  through the batched :func:`~repro.engine.kernels.dominating_pieces_batch`
  clipping sweep.

Both backends are selected by ``LaacadConfig.engine`` (the same knob
the centralized deployer uses) and must be **bitwise identical** —
``tests/test_distributed_engine_equivalence.py`` enforces equality of
trajectories, sensing ranges and every communication counter across
loss rates, seeds and failure schedules.

The RNG draw-order contract
---------------------------
With a lossy channel, *which* reply is dropped is decided by one
``Generator.random()`` draw per transmission, so equivalence requires
the batched backend to consume the scheduler RNG draw-for-draw in the
legacy order.  That order is:

1. nodes step in ascending node-id order (dead nodes draw nothing);
2. per node, rings expand by ``gamma * ring_granularity`` per step and
   a ring's members are visited in the spatial grid's scan order —
   ascending ``(cell_x, cell_y, node_id)`` with ``cell =
   floor(coordinate / cell_size)`` — restricted to alive non-self nodes
   within ``dist_sq <= rho^2 + 1e-15`` (the grid's inclusion test);
3. per not-yet-known member: one draw for the flooded query, one for
   the reply (a dropped reply leaves the member unknown, so it is
   re-attempted — two more draws — in every later ring).

The batched backend reproduces (2) by sorting candidates once per node
with ``np.lexsort`` over the same cell keys and (3) by drawing all of a
ring's samples with a single ``Generator.random(2 * attempts)`` call,
which produces the identical stream as that many scalar calls.
"""

from __future__ import annotations

import abc
import dataclasses
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Type

import numpy as np

from repro.engine.kernels import (
    BatchedRegionContainment,
    dominating_pieces_batch,
    pairwise_distance_and_sq,
)
from repro.geometry.primitives import Point, distance
from repro.runtime.messages import POSITION_REPORT_BYTES, RING_QUERY_BYTES
from repro.voronoi.dominating import DominatingRegion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import LaacadConfig
    from repro.network.network import SensorNetwork
    from repro.runtime.scheduler import SynchronousScheduler

__all__ = [
    "BatchedDistributedEngine",
    "DistributedEngineRound",
    "DistributedRoundEngine",
    "LegacyDistributedEngine",
    "available_distributed_engines",
    "make_distributed_engine",
    "register_distributed_engine",
    "summarize_protocol_round",
]

#: Above this many nodes the distance matrices are built in row blocks.
_DISTANCE_CHUNK_THRESHOLD = 2048


@dataclasses.dataclass
class DistributedEngineRound:
    """Everything one protocol round produces, before moves are applied.

    Attributes:
        regions: dominating region of every alive node, keyed by node id
            in ascending order.
        centers: Chebyshev center per region (same keys/order).
        circumradii: Chebyshev radius per region, in key order.
        ranges_from_position: distance from each node's current position
            to the farthest point of its region, in key order.
        displacements: node-to-Chebyshev-center distance, in key order
            (the stopping-rule quantity).
        proposed_targets: the ``alpha``-step towards the center each
            node proposes, keyed by node id; only nodes whose
            displacement exceeds ``epsilon`` appear.
        profile: per-stage wall-clock seconds when ``REPRO_PROFILE=1``
            (see :mod:`repro.engine.profiling`); ``None`` otherwise.
    """

    regions: Dict[int, DominatingRegion]
    centers: Dict[int, Point]
    circumradii: List[float]
    ranges_from_position: List[float]
    displacements: List[float]
    proposed_targets: Dict[int, Point]
    profile: Optional[Dict[str, float]] = None


def summarize_protocol_round(
    network: "SensorNetwork",
    config: "LaacadConfig",
    regions: Dict[int, DominatingRegion],
) -> DistributedEngineRound:
    """Derive centers, statistics and move proposals from the regions.

    Shared by both backends so every derived float (Chebyshev center,
    displacement, proposed target) comes from one code path: once two
    backends produce identical region polygons, everything downstream
    is bitwise identical by construction.  The arithmetic matches the
    legacy agent exactly — ``chebyshev_center()`` is deterministic
    (seeded Welzl), and the proposed target is the agent's
    ``pos + alpha * (center - pos)`` grouping.
    """
    centers: Dict[int, Point] = {}
    circumradii: List[float] = []
    ranges_from_position: List[float] = []
    displacements: List[float] = []
    proposed_targets: Dict[int, Point] = {}
    alpha = config.alpha
    for node_id, region in regions.items():
        node = network.node(node_id)
        center, radius = region.chebyshev_center()
        centers[node_id] = center
        circumradii.append(radius)
        ranges_from_position.append(region.circumradius(node.position))
        displacement = distance(node.position, center)
        displacements.append(displacement)
        if displacement > config.epsilon:
            proposed_targets[node_id] = (
                node.position[0] + alpha * (center[0] - node.position[0]),
                node.position[1] + alpha * (center[1] - node.position[1]),
            )
    return DistributedEngineRound(
        regions=regions,
        centers=centers,
        circumradii=circumradii,
        ranges_from_position=ranges_from_position,
        displacements=displacements,
        proposed_targets=proposed_targets,
    )


class DistributedRoundEngine(abc.ABC):
    """Executes the gather/compute phase of one protocol round.

    Engines are constructed once per deployment session by
    :class:`repro.api.deployers.DistributedDeployer`, which keeps
    failure injection, statistics, convergence tracking and the
    synchronous move application for itself.  ``run_round`` performs
    every node's expanding-ring information gathering (accounting all
    transmissions — and consuming all loss draws — through the shared
    scheduler) and the per-node region computation; the engine retains
    the last computed regions so the deployer can finalize sensing
    ranges.
    """

    #: Short name used by ``LaacadConfig.engine``.
    name: str = "abstract"

    def __init__(
        self,
        network: "SensorNetwork",
        config: "LaacadConfig",
        scheduler: "SynchronousScheduler",
    ) -> None:
        self.network = network
        self.config = config
        self.scheduler = scheduler
        #: Regions measured by the most recent ``run_round`` call,
        #: keyed by node id; empty until the first round (or after a
        #: checkpoint restore, which triggers a refresh round).
        self.last_regions: Dict[int, DominatingRegion] = {}
        #: Full summary of the most recent round (regions, centers,
        #: displacements, move proposals); ``None`` until the first
        #: round.  Backs the deployer's deprecated per-agent surface.
        self.last_round: Optional[DistributedEngineRound] = None

    @abc.abstractmethod
    def run_round(self, round_index: int) -> DistributedEngineRound:
        """Gather, compute and summarise one round for every alive node."""


_REGISTRY: Dict[str, Type[DistributedRoundEngine]] = {}


def register_distributed_engine(
    cls: Type[DistributedRoundEngine],
) -> Type[DistributedRoundEngine]:
    """Class decorator adding a backend to the distributed-engine registry."""
    if not getattr(cls, "name", None) or cls.name == "abstract":
        raise ValueError("distributed engine classes must define a unique 'name'")
    _REGISTRY[cls.name] = cls
    return cls


def available_distributed_engines() -> List[str]:
    """Names of all registered distributed-engine backends."""
    return sorted(_REGISTRY)


def make_distributed_engine(
    name: str,
    network: "SensorNetwork",
    config: "LaacadConfig",
    scheduler: "SynchronousScheduler",
) -> DistributedRoundEngine:
    """Instantiate a registered distributed backend by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown distributed round engine {name!r}; "
            f"available: {', '.join(available_distributed_engines())}"
        ) from None
    return cls(network, config, scheduler)


@register_distributed_engine
class LegacyDistributedEngine(DistributedRoundEngine):
    """Message-level reference backend: one scalar agent per node."""

    name = "legacy"

    def __init__(
        self,
        network: "SensorNetwork",
        config: "LaacadConfig",
        scheduler: "SynchronousScheduler",
    ) -> None:
        from repro.runtime.protocol import LaacadAgent

        super().__init__(network, config, scheduler)
        self.agents: Dict[int, LaacadAgent] = {
            node.node_id: LaacadAgent(node.node_id, network, scheduler, config)
            for node in network.nodes
        }

    def run_round(self, round_index: int) -> DistributedEngineRound:
        regions: Dict[int, DominatingRegion] = {}
        for agent in self.agents.values():
            agent.step(round_index)
            if not agent.alive or agent.last_region is None:
                continue
            regions[agent.node_id] = agent.last_region
        self.last_regions = regions
        self.last_round = summarize_protocol_round(self.network, self.config, regions)
        return self.last_round


@register_distributed_engine
class BatchedDistributedEngine(DistributedRoundEngine):
    """Round-level backend: one distance matrix, vectorised rings.

    Per round the engine computes the pairwise hypot and squared
    distance matrices once (chunked above
    ``_DISTANCE_CHUNK_THRESHOLD`` nodes), the hop-count matrix
    (``max(1, ceil(d / gamma - 1e-9))``) and the spatial-grid scan
    order (``lexsort`` over cell keys), then walks every node's
    expanding-ring schedule over those arrays: ring membership is a
    threshold mask, the per-ring transmissions are accounted — and
    their loss draws consumed — through
    :meth:`~repro.runtime.scheduler.SynchronousScheduler.record_many`,
    the Algorithm-2 half-radius termination check counts closer
    neighbours in one broadcast comparison, and the known neighbour
    set (in delivery order) feeds the batched clipping sweep.  See the
    module docstring for why every step is draw- and decision-exact
    against the legacy agents.
    """

    name = "batched"

    def __init__(
        self,
        network: "SensorNetwork",
        config: "LaacadConfig",
        scheduler: "SynchronousScheduler",
    ) -> None:
        super().__init__(network, config, scheduler)
        # Sample directions of the Algorithm-2 half-radius circle check,
        # computed with math.cos/math.sin so the sample points are
        # bitwise the legacy agent's.
        samples = config.circle_check_samples
        self._circle_cos = np.asarray(
            [math.cos(2.0 * math.pi * i / samples) for i in range(samples)]
        )
        self._circle_sin = np.asarray(
            [math.sin(2.0 * math.pi * i / samples) for i in range(samples)]
        )
        # Interleaved (query, reply) sizes, tiled per ring batch.
        self._exchange_sizes = np.asarray(
            [RING_QUERY_BYTES, POSITION_REPORT_BYTES], dtype=np.int64
        )
        # Vectorised free-area containment for the circle samples,
        # decision-exact against region.contains.
        self._containment = BatchedRegionContainment(network.region)

    # ------------------------------------------------------------------
    def run_round(self, round_index: int) -> DistributedEngineRound:
        network = self.network
        config = self.config
        region = network.region
        area_pieces = region.convex_pieces()
        gamma = network.comm_range
        step = gamma * config.ring_granularity
        max_radius = 2.0 * region.diameter + step

        positions = np.asarray(network.positions(), dtype=float)
        alive = network.alive_mask()
        count = positions.shape[0]

        # Spatial-grid scan order: ascending (cell_x, cell_y, node_id)
        # with the grid's cell size; restricting to alive nodes keeps
        # the relative order nodes_within() would report.
        cell_size = max(gamma, 1e-6)
        cell_x = np.floor(positions[:, 0] / cell_size).astype(np.int64)
        cell_y = np.floor(positions[:, 1] / cell_size).astype(np.int64)
        scan = np.lexsort((np.arange(count), cell_y, cell_x))
        scan_alive = scan[alive[scan]]

        chunk = _DISTANCE_CHUNK_THRESHOLD if count > _DISTANCE_CHUNK_THRESHOLD else None
        dist, dist_sq = pairwise_distance_and_sq(positions, chunk_size=chunk)
        hops = np.maximum(1, np.ceil(dist / gamma - 1e-9)).astype(np.int64)

        regions: Dict[int, DominatingRegion] = {}
        for node_index in np.nonzero(alive)[0]:
            node_id = int(node_index)
            site = network.nodes[node_id].position
            cand = scan_alive[scan_alive != node_index]
            known_order, rho = self._expanding_rings(
                site,
                positions[cand],
                dist_sq[node_index, cand],
                hops[node_index, cand],
                step,
                max_radius,
            )
            competitors = positions[cand[known_order]] if known_order else positions[:0]
            pieces = dominating_pieces_batch(site, competitors, area_pieces, config.k)
            regions[node_id] = DominatingRegion(
                site=site,
                k=config.k,
                pieces=pieces,
                competitors_used=len(known_order),
                search_radius=rho,
            )
        self.last_regions = regions
        self.last_round = summarize_protocol_round(network, config, regions)
        return self.last_round

    # ------------------------------------------------------------------
    def _expanding_rings(
        self,
        site: Point,
        cand_positions: np.ndarray,
        cand_dist_sq: np.ndarray,
        cand_hops: np.ndarray,
        step: float,
        max_radius: float,
        extend=None,
    ) -> Tuple[List[int], float]:
        """Algorithm 2's information gathering over precomputed arrays.

        Returns the candidate indices whose replies were delivered, in
        delivery order (ring by ring, scan order within a ring — the
        legacy ``known_positions`` dict insertion order), and the final
        ring radius.

        ``extend``, when given, lets a caller grow the candidate arrays
        lazily as the ring expands (the sparse backend fetches them from
        the spatial grid instead of a dense matrix).  It is called with
        the new ring radius and returns either ``None`` (current arrays
        still cover the ring) or ``(positions, dist_sq, hops, remap)``
        where ``remap`` maps old candidate rows to rows of the new
        arrays — the new arrays must contain the old candidates in scan
        order so the RNG draw-order contract is preserved.
        """
        scheduler = self.scheduler
        sizes = self._exchange_sizes
        known_mask = np.zeros(cand_dist_sq.shape[0], dtype=bool)
        known_order: List[int] = []
        known_dirty = True
        known_positions = cand_positions[:0]
        rho = 0.0
        while True:
            rho += step
            if extend is not None:
                grown = extend(rho)
                if grown is not None:
                    cand_positions, cand_dist_sq, cand_hops, remap = grown
                    new_mask = np.zeros(cand_dist_sq.shape[0], dtype=bool)
                    new_mask[remap[known_mask]] = True
                    known_mask = new_mask
                    known_order = [int(remap[i]) for i in known_order]
                    known_dirty = True
            # The grid's inclusion test: dist_sq <= radius^2 + 1e-15.
            attempts = np.nonzero(
                (cand_dist_sq <= rho * rho + 1e-15) & ~known_mask
            )[0]
            if attempts.size:
                delivered = scheduler.record_many(
                    np.repeat(cand_hops[attempts], 2),
                    np.tile(sizes, attempts.size),
                )
                got = attempts[delivered[1::2]]
                if got.size:
                    known_mask[got] = True
                    known_order.extend(got.tolist())
                    known_dirty = True
            if known_dirty:
                known_positions = cand_positions[known_order]
                known_dirty = False
            if self._circle_dominated(site, rho / 2.0, known_positions):
                break
            if rho >= max_radius:
                break
        return known_order, rho

    def _circle_dominated(
        self, site: Point, radius: float, neighbor_positions: np.ndarray
    ) -> bool:
        """Vectorised Algorithm-2 half-radius check, decision-exact.

        Sample points are ``site + radius * (cos, sin)`` from the
        math-library tables; containment runs through the batched
        free-area kernel (decision-exact against ``region.contains``);
        the closer-than-me counting compares ``np.hypot`` distances
        against ``own_distance - 1e-12`` exactly like the scalar loop
        (rule 2 of the kernels' numerical contract covers the 1-ulp
        hypot latitude — the 1e-12 tolerance dwarfs it).
        """
        sample_x = site[0] + radius * self._circle_cos
        sample_y = site[1] + radius * self._circle_sin
        inside = self._containment.contains(sample_x, sample_y)
        if not inside.any():
            return True
        if neighbor_positions.shape[0] == 0:
            return False
        vx = sample_x[inside]
        vy = sample_y[inside]
        own_distance = np.hypot(site[0] - vx, site[1] - vy)
        closer = (
            np.hypot(
                neighbor_positions[:, 0][None, :] - vx[:, None],
                neighbor_positions[:, 1][None, :] - vy[:, None],
            )
            < (own_distance - 1e-12)[:, None]
        ).sum(axis=1)
        return bool(np.all(closer >= self.config.k))
