"""Failure injection for robustness experiments.

k-coverage is motivated by node failures (Sec. I of the paper): when a
node dies, every point it covered is still (k-1)-covered.  The injector
kills scheduled nodes at the start of given rounds; combined with the
scheduler's message-drop probability this lets the test suite and the
robustness example quantify how gracefully coverage degrades and how the
surviving nodes re-balance when LAACAD keeps running.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.network.network import SensorNetwork


@dataclasses.dataclass
class FailureInjector:
    """Deterministic and random node-failure schedules.

    Attributes:
        scheduled: mapping from round index to the node ids that crash at
            the beginning of that round.
        random_failure_rate: per-node, per-round probability of a crash
            (applied to alive nodes in addition to the schedule).
        rng: random generator for the random failures.
    """

    scheduled: Mapping[int, Sequence[int]] = dataclasses.field(default_factory=dict)
    random_failure_rate: float = 0.0
    rng: Optional[np.random.Generator] = None
    killed: List[int] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.random_failure_rate < 1.0:
            raise ValueError("random_failure_rate must be in [0, 1)")
        if self.rng is None:
            self.rng = np.random.default_rng(0)

    @classmethod
    def from_dict(cls, spec: Mapping[str, object]) -> "FailureInjector":
        """Scenario-driven constructor from a plain failure dict.

        Recognised keys: ``scheduled`` (round -> node ids; JSON object
        keys arrive as strings and are coerced back to ints),
        ``random_failure_rate`` and ``seed`` (for the random failures).
        """
        unknown = set(spec) - {"scheduled", "random_failure_rate", "seed"}
        if unknown:
            raise ValueError(f"unknown failure options: {sorted(unknown)}")
        scheduled_raw = spec.get("scheduled", {}) or {}
        scheduled: Dict[int, List[int]] = {
            int(round_index): [int(node_id) for node_id in node_ids]
            for round_index, node_ids in scheduled_raw.items()
        }
        return cls(
            scheduled=scheduled,
            random_failure_rate=float(spec.get("random_failure_rate", 0.0)),
            rng=np.random.default_rng(int(spec.get("seed", 0))),
        )

    def apply(self, network: SensorNetwork, round_index: int) -> List[int]:
        """Kill the nodes scheduled for this round; returns the ids killed now."""
        killed_now: List[int] = []
        for node_id in self.scheduled.get(round_index, []):
            node = network.node(node_id)
            if node.alive:
                network.kill_node(node_id)
                killed_now.append(node_id)
        if self.random_failure_rate > 0.0:
            for node in network.alive_nodes():
                if self.rng.random() < self.random_failure_rate:
                    network.kill_node(node.node_id)
                    killed_now.append(node.node_id)
        self.killed.extend(killed_now)
        return killed_now

    def total_killed(self) -> int:
        """How many nodes have been killed so far."""
        return len(self.killed)
