"""Protocol messages exchanged by LAACAD agents.

Message sizes follow a simple serialisation model (fixed header plus a
few bytes per coordinate), so the byte counts reported by the scheduler
are meaningful relative numbers rather than arbitrary unit counts.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import Any, Dict, Optional

#: Size of the fixed per-message header (ids, type, sequence number).
HEADER_BYTES = 16
#: Bytes used to encode a single coordinate pair.
POSITION_BYTES = 8
#: Serialised size of a ring query (header + the 4-byte query radius).
#: Shared with the scheduler's counting fast path so the accounted
#: bytes stay in lockstep with :func:`ring_query`.
RING_QUERY_BYTES = HEADER_BYTES + 4
#: Serialised size of a position report (header + one coordinate pair).
POSITION_REPORT_BYTES = HEADER_BYTES + POSITION_BYTES


class MessageKind(enum.Enum):
    """The message types of the LAACAD deployment protocol."""

    RING_QUERY = "ring_query"
    POSITION_REPORT = "position_report"
    BOUNDARY_ANNOUNCE = "boundary_announce"
    CONVERGENCE_VOTE = "convergence_vote"


_message_counter = itertools.count()


@dataclasses.dataclass(frozen=True)
class Message:
    """A single protocol message.

    Attributes:
        kind: message type.
        sender: node id of the sender.
        receiver: node id of the receiver.
        payload: structured content (query radius, reported position, ...).
        hops: number of radio hops the message traverses end to end.
        size_bytes: serialised size used for energy/overhead accounting.
        message_id: unique id (for tracing and deduplication in tests).
    """

    kind: MessageKind
    sender: int
    receiver: int
    payload: Dict[str, Any]
    hops: int = 1
    size_bytes: int = HEADER_BYTES
    message_id: int = dataclasses.field(default_factory=lambda: next(_message_counter))

    def __post_init__(self) -> None:
        if self.hops < 1:
            raise ValueError("a message traverses at least one hop")
        if self.size_bytes < 1:
            raise ValueError("message size must be positive")


def ring_query(sender: int, receiver: int, radius: float, hops: int) -> Message:
    """A position query flooded to every node within the search ring."""
    return Message(
        kind=MessageKind.RING_QUERY,
        sender=sender,
        receiver=receiver,
        payload={"radius": float(radius)},
        hops=hops,
        size_bytes=RING_QUERY_BYTES,
    )


def position_report(
    sender: int, receiver: int, position: tuple, hops: int
) -> Message:
    """A reply carrying the sender's (range-derived) position."""
    return Message(
        kind=MessageKind.POSITION_REPORT,
        sender=sender,
        receiver=receiver,
        payload={"position": (float(position[0]), float(position[1]))},
        hops=hops,
        size_bytes=POSITION_REPORT_BYTES,
    )


def convergence_vote(sender: int, receiver: int, settled: bool) -> Message:
    """A one-bit vote used to detect global convergence in-band."""
    return Message(
        kind=MessageKind.CONVERGENCE_VOTE,
        sender=sender,
        receiver=receiver,
        payload={"settled": bool(settled)},
        hops=1,
        size_bytes=HEADER_BYTES + 1,
    )
