"""The distributed LAACAD protocol (message-level execution of Algorithm 1+2).

Every round (one period ``tau``) each alive node:

1. runs the Algorithm 2 expanding-ring search; the query flood and the
   position replies are materialised as messages through the scheduler
   (one query transmission per ring member, one multi-hop reply each),
2. computes its dominating region *only* from the replies it actually
   received (a dropped reply means the corresponding neighbour is simply
   unknown this round),
3. proposes a move of ``alpha`` towards the Chebyshev center.

Moves are applied simultaneously at the end of the round, exactly like
the centralized driver, so with a loss-free channel the two drivers
produce identical trajectories (covered by an integration test).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import LaacadConfig
from repro.core.convergence import ConvergenceTracker
from repro.core.laacad import LaacadResult, RoundStats
from repro.geometry.primitives import Point, distance
from repro.network.mobility import MobilityModel
from repro.network.network import SensorNetwork
from repro.runtime.agent import NodeAgent
from repro.runtime.failures import FailureInjector
from repro.runtime.messages import position_report, ring_query
from repro.runtime.scheduler import CommunicationStats, SynchronousScheduler
from repro.voronoi.dominating import DominatingRegion, dominating_pieces


@dataclasses.dataclass
class DistributedRoundStats(RoundStats):
    """Round statistics extended with communication accounting."""

    messages: int = 0
    transmissions: int = 0
    bytes_sent: int = 0


class LaacadAgent(NodeAgent):
    """Protocol agent executing LAACAD at a single node."""

    def __init__(
        self,
        node_id: int,
        network: SensorNetwork,
        scheduler: SynchronousScheduler,
        config: LaacadConfig,
    ) -> None:
        super().__init__(node_id, network, scheduler)
        self.config = config
        self.last_region: Optional[DominatingRegion] = None
        self.proposed_target: Optional[Point] = None
        self.displacement: float = 0.0

    # ------------------------------------------------------------------
    def _expanding_ring_positions(self) -> Tuple[List[Point], float, int]:
        """Algorithm 2's information gathering, materialised as messages.

        Returns the neighbour positions learned this round, the final
        ring radius and the hop depth used.
        """
        gamma = self.network.comm_range
        step = gamma * self.config.ring_granularity
        max_radius = 2.0 * self.network.region.diameter + step
        own = self.node.position

        rho = 0.0
        known_positions: Dict[int, Point] = {}
        while True:
            rho += step
            hops = int(math.ceil(rho / gamma - 1e-9))
            ring_members = self.network.nodes_within(self.node_id, rho)
            for member in ring_members:
                if member in known_positions:
                    continue
                member_node = self.network.node(member)
                if not member_node.alive:
                    continue
                member_hops = max(
                    1, int(math.ceil(distance(own, member_node.position) / gamma - 1e-9))
                )
                # Query reaches the member (flooded), reply comes back.
                self.send(ring_query(self.node_id, member, rho, member_hops))
                delivered = self.send(
                    position_report(member, self.node_id, member_node.position, member_hops)
                )
                if delivered:
                    known_positions[member] = member_node.position
            if self._circle_dominated(rho / 2.0, list(known_positions.values())):
                break
            if rho >= max_radius:
                break
        hops = int(math.ceil(rho / gamma - 1e-9))
        return list(known_positions.values()), rho, hops

    def _circle_dominated(self, radius: float, neighbor_positions: List[Point]) -> bool:
        """The Algorithm 2 half-radius circle check restricted to the area."""
        own = self.node.position
        k = self.config.k
        samples = self.config.circle_check_samples
        for i in range(samples):
            angle = 2.0 * math.pi * i / samples
            v = (own[0] + radius * math.cos(angle), own[1] + radius * math.sin(angle))
            if not self.network.region.contains(v):
                continue
            own_distance = distance(own, v)
            closer = 0
            for pos in neighbor_positions:
                if distance(pos, v) < own_distance - 1e-12:
                    closer += 1
                    if closer >= k:
                        break
            if closer < k:
                return False
        return True

    # ------------------------------------------------------------------
    def step(self, round_index: int) -> None:
        """One protocol round: gather, compute, propose a move."""
        if not self.alive:
            self.last_region = None
            self.proposed_target = None
            self.displacement = 0.0
            return
        # Drain the inbox: the information content was already consumed
        # while gathering (the scheduler models delivery in-round), so
        # this only keeps mailbox sizes bounded.
        self.receive()

        positions, rho, _ = self._expanding_ring_positions()
        pieces = dominating_pieces(
            self.node.position, positions, self.network.region.convex_pieces(), self.config.k
        )
        region = DominatingRegion(
            site=self.node.position,
            k=self.config.k,
            pieces=pieces,
            competitors_used=len(positions),
            search_radius=rho,
        )
        self.last_region = region
        center, _ = region.chebyshev_center()
        self.displacement = distance(self.node.position, center)
        if self.displacement > self.config.epsilon:
            alpha = self.config.alpha
            self.proposed_target = (
                self.node.position[0] + alpha * (center[0] - self.node.position[0]),
                self.node.position[1] + alpha * (center[1] - self.node.position[1]),
            )
        else:
            self.proposed_target = None


class DistributedLaacadRunner:
    """Runs LAACAD as a message-passing protocol over a sensor network."""

    def __init__(
        self,
        network: SensorNetwork,
        config: LaacadConfig,
        mobility: Optional[MobilityModel] = None,
        drop_probability: float = 0.0,
        failure_injector: Optional[FailureInjector] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if len(network.alive_nodes()) < config.k:
            raise ValueError("the network needs at least k alive nodes")
        self.network = network
        self.config = config
        self.mobility = mobility if mobility is not None else MobilityModel()
        self.scheduler = SynchronousScheduler(
            drop_probability=drop_probability,
            rng=rng if rng is not None else np.random.default_rng(config.seed),
        )
        self.failure_injector = failure_injector
        self.agents: Dict[int, LaacadAgent] = {
            node.node_id: LaacadAgent(node.node_id, network, self.scheduler, config)
            for node in network.nodes
        }

    # ------------------------------------------------------------------
    def run(self) -> Tuple[LaacadResult, CommunicationStats]:
        """Execute the protocol; returns the deployment result and comm stats."""
        config = self.config
        network = self.network
        initial_positions = list(network.positions())
        tracker = ConvergenceTracker(epsilon=config.epsilon, patience=config.convergence_patience)
        history: List[RoundStats] = []

        converged = False
        rounds = 0
        for round_index in range(config.max_rounds):
            rounds = round_index + 1
            self.scheduler.begin_round()
            if self.failure_injector is not None:
                self.failure_injector.apply(network, round_index)

            messages_before = self.scheduler.stats.messages
            transmissions_before = self.scheduler.stats.transmissions
            bytes_before = self.scheduler.stats.bytes_sent

            displacements: List[float] = []
            circumradii: List[float] = []
            ranges_from_position: List[float] = []
            for agent in self.agents.values():
                agent.step(round_index)
                if not agent.alive or agent.last_region is None:
                    continue
                displacements.append(agent.displacement)
                _, radius = agent.last_region.chebyshev_center()
                circumradii.append(radius)
                ranges_from_position.append(
                    agent.last_region.circumradius(agent.node.position)
                )

            stats = DistributedRoundStats(
                round_index=round_index,
                max_circumradius=max(circumradii) if circumradii else 0.0,
                min_circumradius=min(circumradii) if circumradii else 0.0,
                max_range_from_position=max(ranges_from_position) if ranges_from_position else 0.0,
                min_range_from_position=min(ranges_from_position) if ranges_from_position else 0.0,
                max_displacement=max(displacements) if displacements else 0.0,
                mean_displacement=(sum(displacements) / len(displacements)) if displacements else 0.0,
                messages=self.scheduler.stats.messages - messages_before,
                transmissions=self.scheduler.stats.transmissions - transmissions_before,
                bytes_sent=self.scheduler.stats.bytes_sent - bytes_before,
            )
            history.append(stats)
            self.scheduler.end_round()

            if tracker.observe(displacements):
                converged = True
                break

            # Apply the proposed moves simultaneously.
            for agent in self.agents.values():
                if not agent.alive or agent.proposed_target is None:
                    continue
                constrained = self.mobility.constrain(
                    network.region, agent.node.position, agent.proposed_target
                )
                network.move_node(agent.node_id, constrained, clamp_to_region=True)

        if not converged:
            # The round cap was hit after a move: refresh every agent's
            # region once so the final sensing ranges refer to the final
            # positions (the centralized driver does the same).
            self.scheduler.begin_round()
            for agent in self.agents.values():
                agent.step(rounds)
            self.scheduler.end_round()

        # Final sensing ranges from the last computed regions.
        sensing_ranges: List[float] = []
        for node in network.nodes:
            agent = self.agents[node.node_id]
            if not node.alive or agent.last_region is None:
                sensing_ranges.append(0.0)
                continue
            r = agent.last_region.circumradius(node.position)
            network.set_sensing_range(node.node_id, r)
            sensing_ranges.append(r)

        result = LaacadResult(
            config=config,
            initial_positions=initial_positions,
            final_positions=list(network.positions()),
            sensing_ranges=sensing_ranges,
            converged=converged,
            rounds_executed=rounds,
            history=history,
        )
        return result, self.scheduler.stats
