"""The distributed LAACAD protocol (message-level execution of Algorithm 1+2).

Every round (one period ``tau``) each alive node:

1. runs the Algorithm 2 expanding-ring search; the query flood and the
   position replies are accounted through the scheduler, one query
   transmission per ring member and one multi-hop reply each (via the
   counting fast path — the loss model and every counter behave exactly
   as if the messages were materialised),
2. computes its dominating region *only* from the replies it actually
   received (a dropped reply means the corresponding neighbour is simply
   unknown this round),
3. proposes a move of ``alpha`` towards the Chebyshev center.

Moves are applied simultaneously at the end of the round, exactly like
the centralized driver, so with a loss-free channel the two drivers
produce identical trajectories (covered by an integration test).
"""

from __future__ import annotations

import math
import warnings
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api.results import DistributedRoundStats, SimulationResult
from repro.core.config import LaacadConfig
from repro.geometry.primitives import Point, distance
from repro.network.mobility import MobilityModel
from repro.network.network import SensorNetwork
from repro.runtime.agent import NodeAgent
from repro.runtime.failures import FailureInjector
from repro.runtime.messages import POSITION_REPORT_BYTES, RING_QUERY_BYTES
from repro.runtime.scheduler import CommunicationStats, SynchronousScheduler
from repro.voronoi.dominating import DominatingRegion, dominating_pieces

__all__ = [
    "DistributedLaacadRunner",
    "DistributedRoundStats",
    "LaacadAgent",
]


class LaacadAgent(NodeAgent):
    """Protocol agent executing LAACAD at a single node."""

    def __init__(
        self,
        node_id: int,
        network: SensorNetwork,
        scheduler: SynchronousScheduler,
        config: LaacadConfig,
    ) -> None:
        super().__init__(node_id, network, scheduler)
        self.config = config
        self.last_region: Optional[DominatingRegion] = None
        self.proposed_target: Optional[Point] = None
        self.displacement: float = 0.0

    # ------------------------------------------------------------------
    def _expanding_ring_positions(self) -> Tuple[List[Point], float, int]:
        """Algorithm 2's information gathering, accounted per message.

        Every query/reply exchange goes through the scheduler's
        counting fast path (:meth:`SynchronousScheduler.record`): the
        accounting and the loss draws are exactly those of sending one
        ``ring_query`` and one ``position_report``, but no ``Message``
        is allocated — nothing ever inspects these payloads (the reply's
        information content is consumed right here, at the delivery
        decision), so a loss-free broadcast round is pure counting.

        Returns the neighbour positions learned this round, the final
        ring radius and the hop depth used.
        """
        gamma = self.network.comm_range
        step = gamma * self.config.ring_granularity
        max_radius = 2.0 * self.network.region.diameter + step
        own = self.node.position

        rho = 0.0
        known_positions: Dict[int, Point] = {}
        while True:
            rho += step
            hops = int(math.ceil(rho / gamma - 1e-9))
            ring_members = self.network.nodes_within(self.node_id, rho)
            for member in ring_members:
                if member in known_positions:
                    continue
                member_node = self.network.node(member)
                if not member_node.alive:
                    continue
                member_hops = max(
                    1, int(math.ceil(distance(own, member_node.position) / gamma - 1e-9))
                )
                # Query reaches the member (flooded), reply comes back.
                self.scheduler.record(member_hops, RING_QUERY_BYTES)
                delivered = self.scheduler.record(member_hops, POSITION_REPORT_BYTES)
                if delivered:
                    known_positions[member] = member_node.position
            if self._circle_dominated(rho / 2.0, list(known_positions.values())):
                break
            if rho >= max_radius:
                break
        hops = int(math.ceil(rho / gamma - 1e-9))
        return list(known_positions.values()), rho, hops

    def _circle_dominated(self, radius: float, neighbor_positions: List[Point]) -> bool:
        """The Algorithm 2 half-radius circle check restricted to the area."""
        own = self.node.position
        k = self.config.k
        samples = self.config.circle_check_samples
        for i in range(samples):
            angle = 2.0 * math.pi * i / samples
            v = (own[0] + radius * math.cos(angle), own[1] + radius * math.sin(angle))
            if not self.network.region.contains(v):
                continue
            own_distance = distance(own, v)
            closer = 0
            for pos in neighbor_positions:
                if distance(pos, v) < own_distance - 1e-12:
                    closer += 1
                    if closer >= k:
                        break
            if closer < k:
                return False
        return True

    # ------------------------------------------------------------------
    def step(self, round_index: int) -> None:
        """One protocol round: gather, compute, propose a move."""
        if not self.alive:
            self.last_region = None
            self.proposed_target = None
            self.displacement = 0.0
            return
        positions, rho, _ = self._expanding_ring_positions()
        pieces = dominating_pieces(
            self.node.position, positions, self.network.region.convex_pieces(), self.config.k
        )
        region = DominatingRegion(
            site=self.node.position,
            k=self.config.k,
            pieces=pieces,
            competitors_used=len(positions),
            search_radius=rho,
        )
        self.last_region = region
        center, _ = region.chebyshev_center()
        self.displacement = distance(self.node.position, center)
        if self.displacement > self.config.epsilon:
            alpha = self.config.alpha
            self.proposed_target = (
                self.node.position[0] + alpha * (center[0] - self.node.position[0]),
                self.node.position[1] + alpha * (center[1] - self.node.position[1]),
            )
        else:
            self.proposed_target = None


class DistributedLaacadRunner:
    """Deprecated shim over :class:`repro.api.deployers.DistributedDeployer`.

    .. deprecated::
        Use :class:`repro.api.Simulation` with ``kind="distributed"``
        (or a spec whose pipeline is ``"distributed"``) instead::

            sim = Simulation(network=net, config=cfg, kind="distributed",
                             drop_probability=0.02, failure_injector=injector)
            result = sim.run()          # result.communication carries totals

        The steppable deployer executes the exact per-round order of the
        old loop, so results are bitwise identical; it additionally
        supports stepping, observation and checkpoint/resume.

    Construction emits a :class:`DeprecationWarning`; ``run()`` keeps
    the historical ``(result, CommunicationStats)`` return shape.
    """

    def __init__(
        self,
        network: SensorNetwork,
        config: LaacadConfig,
        mobility: Optional[MobilityModel] = None,
        drop_probability: float = 0.0,
        failure_injector: Optional[FailureInjector] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        warnings.warn(
            "repro.runtime.protocol.DistributedLaacadRunner is deprecated; use "
            "repro.api.Simulation(network=..., config=..., kind='distributed')",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api.deployers import DistributedDeployer

        self._deployer = DistributedDeployer(
            network,
            config,
            mobility=mobility,
            drop_probability=drop_probability,
            failure_injector=failure_injector,
            rng=rng,
        )

    @property
    def network(self) -> SensorNetwork:
        return self._deployer.network

    @property
    def config(self) -> LaacadConfig:
        return self._deployer.config

    @property
    def mobility(self) -> MobilityModel:
        return self._deployer.mobility

    @property
    def scheduler(self) -> SynchronousScheduler:
        return self._deployer.scheduler

    @property
    def failure_injector(self) -> Optional[FailureInjector]:
        return self._deployer.failure_injector

    @property
    def agents(self) -> Dict[int, LaacadAgent]:
        return self._deployer.agents

    def run(self) -> Tuple[SimulationResult, CommunicationStats]:
        """Execute the protocol; returns the deployment result and comm stats."""
        result = self._deployer.run()
        return result, self._deployer.scheduler.stats
