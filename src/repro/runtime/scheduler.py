"""Synchronous round scheduler with message accounting."""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.runtime.messages import Message


@dataclasses.dataclass
class CommunicationStats:
    """Cumulative communication accounting.

    Attributes:
        messages: total number of messages sent.
        transmissions: total number of per-hop radio transmissions
            (each message counts once per hop it traverses).
        bytes_sent: total serialised bytes, weighted by hop count.
        per_round_messages: message count per completed round.
        dropped: messages lost to the configured drop probability.
    """

    messages: int = 0
    transmissions: int = 0
    bytes_sent: int = 0
    per_round_messages: List[int] = dataclasses.field(default_factory=list)
    dropped: int = 0


class SynchronousScheduler:
    """Round-driven scheduler used by the distributed LAACAD protocol.

    Agents register with the scheduler and are stepped once per round in
    node-id order (the order is irrelevant because moves are applied only
    at the end of the round by the protocol driver).  All messages go
    through :meth:`send`, which applies the loss model and updates the
    accounting; delivery is immediate within the round — the paper's
    period ``tau`` is assumed long enough for the multi-hop exchange to
    finish inside one round.
    """

    def __init__(
        self,
        drop_probability: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        self.drop_probability = drop_probability
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._inboxes: Dict[int, List[Message]] = defaultdict(list)
        self.stats = CommunicationStats()
        self._round_messages = 0
        self.current_round = -1

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, message: Message) -> bool:
        """Send a message; returns False when the loss model dropped it."""
        self.stats.messages += 1
        self.stats.transmissions += message.hops
        self.stats.bytes_sent += message.size_bytes * message.hops
        self._round_messages += 1
        if self.drop_probability > 0.0 and self._rng.random() < self.drop_probability:
            self.stats.dropped += 1
            return False
        self._inboxes[message.receiver].append(message)
        return True

    def record(self, hops: int, size_bytes: int) -> bool:
        """Counting fast path: account one transmission without a ``Message``.

        Performs exactly the accounting and loss sampling of
        :meth:`send` — same counters, same single RNG draw in the same
        stream position — but allocates no message object and delivers
        nothing to an inbox.  Agents whose receivers never inspect
        payloads (the LAACAD expanding-ring exchange consumes the
        position *at the sender side* of the simulated reply) use this
        so a loss-free broadcast round costs two counter bumps per
        transmission instead of one frozen dataclass each.

        Returns False when the loss model dropped the transmission.
        """
        self.stats.messages += 1
        self.stats.transmissions += hops
        self.stats.bytes_sent += size_bytes * hops
        self._round_messages += 1
        if self.drop_probability > 0.0 and self._rng.random() < self.drop_probability:
            self.stats.dropped += 1
            return False
        return True

    def record_many(self, hops: np.ndarray, size_bytes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`record` over aligned hop/size arrays.

        Accounts ``len(hops)`` transmissions in one shot and, when the
        channel is lossy, draws all loss samples with a single
        ``Generator.random(n)`` call — the resulting stream is
        *element-for-element identical* to ``n`` scalar ``random()``
        calls, so batched callers consume the RNG in exactly the order
        the scalar path would (the distributed engines' draw-order
        contract; see ``repro.runtime.engines``).

        Returns the boolean delivered mask, aligned with the inputs.
        """
        hops = np.asarray(hops)
        count = int(hops.shape[0])
        if count == 0:
            return np.ones(0, dtype=bool)
        sizes = np.asarray(size_bytes)
        self.stats.messages += count
        self.stats.transmissions += int(hops.sum())
        self.stats.bytes_sent += int((sizes * hops).sum())
        self._round_messages += count
        if self.drop_probability > 0.0:
            dropped = self._rng.random(count) < self.drop_probability
            if dropped.any():
                self.stats.dropped += int(dropped.sum())
                return ~dropped
        return np.ones(count, dtype=bool)

    def collect_inbox(self, node_id: int) -> List[Message]:
        """Drain and return the pending messages of one node."""
        inbox = self._inboxes.get(node_id, [])
        self._inboxes[node_id] = []
        return inbox

    # ------------------------------------------------------------------
    # Round bookkeeping
    # ------------------------------------------------------------------
    def begin_round(self) -> int:
        """Start a new round and return its index."""
        self.current_round += 1
        self._round_messages = 0
        return self.current_round

    def end_round(self) -> None:
        """Close the current round's accounting."""
        self.stats.per_round_messages.append(self._round_messages)

    def reset(self) -> None:
        """Clear all inboxes and statistics (used between experiments)."""
        self._inboxes.clear()
        self.stats = CommunicationStats()
        self._round_messages = 0
        self.current_round = -1
