"""Sparse distributed backend: grid-fed rings, cross-node clipping.

:class:`~repro.runtime.engines.BatchedDistributedEngine` removed the
per-message Python of the legacy agents but kept two scalability walls:
the dense N×N distance matrices and a Python loop that walks every
node's expanding-ring schedule (and budgeted clipping sweep) one node
at a time.  This backend removes both:

* candidates come from :class:`~repro.network.neighbors.SpatialGrid`
  batch queries — the grid is built with the same cell size the scan
  order contract uses, so a bucket walk enumerates ring members in
  exactly the legacy scan order;
* with a **loss-free channel** the gather runs *level-synchronously*:
  all still-searching nodes share the same ring radius schedule, so one
  array pass per ring level accounts every node's new exchanges (bulk
  :meth:`~repro.runtime.scheduler.SynchronousScheduler.record_many` —
  loss-free accounting is a sum, so bulk order cannot change it) and
  one vectorised Algorithm-2 circle check retires all dominated nodes
  at once.  No RNG is consumed on a loss-free channel, so draw order
  is trivially preserved;
* with a **lossy channel** the engine falls back to the per-node,
  draw-exact ring walk of the batched backend (via the shared
  ``_expanding_rings``), feeding it candidates lazily from the grid
  instead of a dense matrix row — the RNG draw-order contract of
  ``repro.runtime.engines`` holds bit for bit;
* the per-node budgeted clipping sweeps are replaced by one
  :func:`~repro.engine.sparse_kernels.clip_cells_batch` call over all
  nodes, and the per-round summary (Chebyshev centers, displacements,
  move proposals) by :func:`~repro.engine.sparse_kernels.mec_batch`.

Numerical contract: **tolerance, not bitwise** (DESIGN.md "Sparse
engine tier") — positions/ranges/areas within 1e-9 of the batched
backend, identical convergence behaviour on the reference scenarios.
The gather decisions themselves (ring membership, hop counts, circle
checks, loss draws) reuse the exact arithmetic of the batched backend,
so the tolerance enters only through the fused clipping and the MEC.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.engine.jit_kernels import closer_counts, kernel_tier, segment_ids
from repro.engine.kernels import kernel_threads
from repro.engine.pieces import LazyRegions, materialize_pieces
from repro.engine.profiling import StageTimer
from repro.engine.sparse_kernels import clip_cells_batch, mec_batch
from repro.network.neighbors import SpatialGrid
from repro.obs import metrics as _metrics
from repro.runtime.engines import (
    BatchedDistributedEngine,
    DistributedEngineRound,
    register_distributed_engine,
    summarize_protocol_round,
)
from repro.voronoi.dominating import DominatingRegion

__all__ = ["SparseDistributedEngine"]

#: Same process-wide counter as the centralized engine's candidates
#: stage — get-or-create on the shared registry returns one object.
_GRID_CANDIDATES = _metrics.counter(
    "repro_grid_candidates_total",
    "Candidate neighbors returned by spatial-grid radius queries",
)


def _extend_schedule(rhos: List[float], thresholds: List[float], upto: int, step: float) -> None:
    """Grow the shared ring-radius schedule to ``upto`` levels.

    Radii are accumulated by repeated addition (``rho += step``) so the
    floats match the legacy per-node loop bit for bit; the thresholds
    are the grid inclusion test ``rho^2 + 1e-15``.
    """
    while len(rhos) < upto:
        rho = (rhos[-1] if rhos else 0.0) + step
        rhos.append(rho)
        thresholds.append(rho * rho + 1e-15)


#: Historic name: the lazy regions dict now lives in
#: :mod:`repro.engine.pieces`, shared with the centralized sparse tier.
_LazyRegions = LazyRegions


@register_distributed_engine
class SparseDistributedEngine(BatchedDistributedEngine):
    """Grid-bucketed, level-synchronous protocol rounds."""

    name = "sparse"

    # ------------------------------------------------------------------
    def run_round(self, round_index: int) -> DistributedEngineRound:
        network = self.network
        config = self.config
        self._stage_timer = StageTimer()
        area = network.region
        area_pieces = area.convex_pieces()
        gamma = network.comm_range
        step = gamma * config.ring_granularity
        max_radius = 2.0 * area.diameter + step

        positions = np.asarray(network.positions(), dtype=float)
        alive = network.alive_mask()
        alive_rows = np.nonzero(alive)[0].astype(np.int64)
        if alive_rows.size == 0:
            self.last_regions = {}
            self.last_round = summarize_protocol_round(network, config, {})
            return self.last_round

        # Same cell size as the scan-order contract: bucket-walk order
        # IS the legacy ring-member visiting order.
        grid = SpatialGrid(positions, cell_size=max(gamma, 1e-6))
        if self.scheduler.drop_probability > 0.0:
            with self._stage_timer.stage("gather"):
                gathered = self._gather_lossy(
                    grid, positions, alive, step, max_radius, gamma
                )
        else:
            gathered = self._gather_lossfree(
                grid, positions, alive, step, max_radius, gamma
            )
        known_ids, known_indptr, rho_final = gathered
        round_summary = self._clip_and_summarize(
            positions, alive_rows, known_ids, known_indptr, rho_final, area_pieces
        )
        self.last_regions = round_summary.regions
        self.last_round = round_summary
        return round_summary

    # ------------------------------------------------------------------
    # Loss-free gather: level-synchronous over all nodes
    # ------------------------------------------------------------------
    def _gather_lossfree(
        self,
        grid: SpatialGrid,
        positions: np.ndarray,
        alive: np.ndarray,
        step: float,
        max_radius: float,
        gamma: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All nodes' expanding rings, one ring level at a time.

        Loss-free delivery means every ring member is attempted exactly
        once — at the first level whose radius reaches it — and always
        answers, so per level the new exchanges of *all* still-active
        nodes can be accounted with one bulk ``record_many`` (the
        counters are order-independent sums) and the known sets grow by
        exactly the level's ring members.  No loss draws exist, so no
        RNG ordering constraint applies.
        """
        scheduler = self.scheduler
        sizes = self._exchange_sizes
        count = positions.shape[0]
        px = np.ascontiguousarray(positions[:, 0])
        py = np.ascontiguousarray(positions[:, 1])
        alive_rows = np.nonzero(alive)[0].astype(np.int64)
        n_alive = alive_rows.shape[0]
        active = np.ones(n_alive, dtype=bool)
        rho_final = np.zeros(n_alive)
        rhos: List[float] = []
        thresholds: List[float] = []

        # Delivered pairs, appended level by level (owner-grouped, scan
        # order within a level — the legacy delivery order).
        acc_owner: List[np.ndarray] = []
        acc_cand: List[np.ndarray] = []
        # Flat known positions for the vectorised circle checks.
        known_owner = np.zeros(0, dtype=np.int64)
        known_x = np.zeros(0)
        known_y = np.zeros(0)
        # Candidate pairs of the current fetch horizon.
        pair_owner = np.zeros(0, dtype=np.int64)
        pair_cand = np.zeros(0, dtype=np.int64)
        pair_ring = np.zeros(0, dtype=np.int64)
        pair_hops = np.zeros(0, dtype=np.int64)

        timer = self._stage_timer
        fetched_levels = 0
        level = 0
        while active.any():
            level += 1
            _extend_schedule(rhos, thresholds, level, step)
            rho = rhos[level - 1]
            if level > fetched_levels:
                # Fetch the next horizon block (doubling span) for the
                # still-active owners.  All pairs of earlier rings have
                # been processed, so the old pair state is obsolete.
                with timer.stage("gather"):
                    span = max(2, fetched_levels)
                    new_fetched = level + span - 1
                    _extend_schedule(rhos, thresholds, new_fetched, step)
                    radius = rhos[new_fetched - 1]
                    rows_active = np.nonzero(active)[0]
                    owners_nodes = alive_rows[rows_active]
                    cand, indptr = grid.query_radius_many(
                        positions[owners_nodes], radius
                    )
                    _GRID_CANDIDATES.inc(int(cand.shape[0]))
                    ow_row = rows_active[
                        segment_ids(np.diff(indptr), cand.shape[0])
                    ]
                    ow_node = alive_rows[ow_row]
                    keep = alive[cand] & (cand != ow_node)
                    cand = cand[keep]
                    ow_row = ow_row[keep]
                    ow_node = ow_node[keep]
                    dx = px[cand] - px[ow_node]
                    dy = py[cand] - py[ow_node]
                    dist_sq = dx * dx + dy * dy
                    hops = np.maximum(
                        1, np.ceil(np.hypot(dx, dy) / gamma - 1e-9)
                    ).astype(np.int64)
                    # Ring index: first level whose inclusion threshold
                    # admits the pair (identical float schedule as the
                    # scalar rho accumulation).
                    ring = (
                        np.searchsorted(
                            np.asarray(thresholds[:new_fetched]),
                            dist_sq,
                            side="left",
                        )
                        + 1
                    )
                    fresh = ring >= level
                    order = np.lexsort((ring[fresh], ow_row[fresh]))
                    pair_owner = ow_row[fresh][order]
                    pair_cand = cand[fresh][order]
                    pair_ring = ring[fresh][order]
                    pair_hops = hops[fresh][order]
                    fetched_levels = new_fetched

            mask = (pair_ring == level) & active[pair_owner]
            if mask.any():
                with timer.stage("gather"):
                    level_hops = pair_hops[mask]
                    scheduler.record_many(
                        np.repeat(level_hops, 2),
                        np.tile(sizes, level_hops.shape[0]),
                    )
                    lvl_owner = pair_owner[mask]
                    lvl_cand = pair_cand[mask]
                    acc_owner.append(lvl_owner)
                    acc_cand.append(lvl_cand)
                    known_owner = np.concatenate((known_owner, lvl_owner))
                    known_x = np.concatenate((known_x, px[lvl_cand]))
                    known_y = np.concatenate((known_y, py[lvl_cand]))

            # Algorithm-2 stop checks for every active node at once.
            with timer.stage("circle_check"):
                rows_active = np.nonzero(active)[0]
                sel = active[known_owner]
                ko = known_owner[sel]
                by_owner = np.argsort(ko, kind="stable")
                ko = ko[by_owner]
                row_local = np.full(n_alive, -1, dtype=np.int64)
                row_local[rows_active] = np.arange(rows_active.shape[0])
                local = row_local[ko]
                counts_local = np.bincount(local, minlength=rows_active.shape[0])
                kptr = np.concatenate(([0], np.cumsum(counts_local))).astype(
                    np.int64
                )
                dominated = self._circle_dominated_many(
                    px[alive_rows[rows_active]],
                    py[alive_rows[rows_active]],
                    rho / 2.0,
                    known_x[sel][by_owner],
                    known_y[sel][by_owner],
                    kptr,
                )
                stopping = dominated | (rho >= max_radius)
                stop_rows = rows_active[stopping]
                rho_final[stop_rows] = rho
                active[stop_rows] = False

        # Assemble per-node known lists in delivery order.
        if acc_owner:
            all_owner = np.concatenate(acc_owner)
            all_cand = np.concatenate(acc_cand)
            seq = np.concatenate(
                [
                    np.full(chunk.shape[0], i, dtype=np.int64)
                    for i, chunk in enumerate(acc_owner)
                ]
            )
            order = np.lexsort((seq, all_owner))
            known_counts = np.bincount(all_owner, minlength=n_alive)
            known_ids = all_cand[order]
        else:
            known_counts = np.zeros(n_alive, dtype=np.int64)
            known_ids = np.zeros(0, dtype=np.int64)
        known_indptr = np.concatenate(([0], np.cumsum(known_counts))).astype(np.int64)
        return known_ids, known_indptr, rho_final

    def _circle_dominated_many(
        self,
        sx: np.ndarray,
        sy: np.ndarray,
        radius: float,
        kx: np.ndarray,
        ky: np.ndarray,
        kptr: np.ndarray,
    ) -> np.ndarray:
        """Vectorised half-radius domination check for many nodes.

        Per node: every free-area sample point on the half-radius circle
        must see at least ``k`` known neighbours strictly closer than
        the node itself.  Decisions mirror the scalar
        ``_circle_dominated`` with one tolerance-contract deviation:
        "closer" is decided on squared distances (``d² < t²`` instead
        of ``hypot(d) < t``), which can differ only when a neighbour
        sits within an ulp of the 1e-12 comparison margin.

        The decision per node is ``all over samples of (count >= k or
        sample outside the free area)`` — a node with *no* inside
        sample is vacuously dominated, so the formula subsumes the
        scalar early-out.  Containment is therefore only evaluated at
        the samples whose closer-count falls short of ``k`` (the only
        places it can influence the verdict), which is typically a tiny
        fraction of the sample set.  The counting itself — candidate
        gather, squared distances, and the two-stage cap-then-remainder
        schedule (a subset count already >= k can only grow, so only
        rows with a still-short sample pay for the knowns beyond the
        first ``max(8, 4k)``) — is the fused
        :func:`repro.engine.jit_kernels.closer_counts` kernel, shared
        by the numpy and JIT tiers with decision-identical totals.
        """
        a = sx.shape[0]
        n_samples = self._circle_cos.shape[0]
        sample_x = sx[:, None] + radius * self._circle_cos[None, :]
        sample_y = sy[:, None] + radius * self._circle_sin[None, :]
        counts = np.diff(kptr)
        k = self.config.k

        def blocked(row_sel: np.ndarray, col_sel: np.ndarray) -> np.ndarray:
            """Rows (of ``row_sel``) with a blocking sample among ``col_sel``.

            Evaluates exactly the per-(row, sample) decision of the
            one-shot check — counting kernel, then containment at the
            short samples only — restricted to the given panel slice.
            """
            n_rows = row_sel.shape[0]
            n_cols = col_sel.shape[0]
            counted = np.zeros((n_rows, n_cols), dtype=np.int64)
            # Rows with fewer than ``k`` knowns are counted-out a
            # priori: no sample can reach ``k`` closer neighbours, so
            # every sample is short regardless of the actual counts and
            # the verdict is decided by containment alone — the kernel
            # would change nothing about the decision.
            kern = np.nonzero(counts[row_sel] >= k)[0]
            if kern.size:
                krows = row_sel[kern]
                sample_x_r = np.ascontiguousarray(
                    sample_x[np.ix_(krows, col_sel)]
                )
                sample_y_r = np.ascontiguousarray(
                    sample_y[np.ix_(krows, col_sel)]
                )
                threshold = np.hypot(
                    sx[krows, None] - sample_x_r, sy[krows, None] - sample_y_r
                )
                threshold -= 1e-12
                np.maximum(threshold, 0.0, out=threshold)
                threshold_sq = threshold * threshold
                # Stage-1 budget for the two-stage counting kernel.
                # Any value is decision-equivalent (a prefix count
                # already at ``k`` only grows when more knowns are
                # folded in); 8*k is the measured sweet spot between
                # stage-1 panel traffic and stage-2 fallback rows.
                cap = max(16, 8 * k)
                counted[kern] = closer_counts(
                    kx,
                    ky,
                    kptr[krows],
                    counts[krows],
                    sample_x_r,
                    sample_y_r,
                    threshold_sq,
                    cap,
                    k,
                )
            short = counted < k
            srow, scol = np.nonzero(short)
            if not srow.size:
                return np.zeros(n_rows, dtype=bool)
            inside = self._containment.contains(
                sample_x[row_sel[srow], col_sel[scol]],
                sample_y[row_sel[srow], col_sel[scol]],
            )
            return np.bincount(srow[inside], minlength=n_rows) > 0

        # Two-phase evaluation: a strided sixth of the samples spans
        # the whole circle, so any blocking arc wider than one stride
        # shows up in the first (cheap) panel and finalises its row as
        # not-dominated without ever paying for the other five sixths.
        # The survivors — at late gather levels, nearly everyone — then
        # pay exactly the remaining samples, so the split never costs
        # more than one extra kernel dispatch.  Decisions are the
        # one-shot ones: the phases partition the sample set and each
        # (row, sample) verdict is computed with the same arithmetic.
        all_rows = np.arange(a, dtype=np.int64)
        phase_a = np.arange(0, n_samples, 6, dtype=np.int64)
        phase_b = np.setdiff1d(np.arange(n_samples, dtype=np.int64), phase_a)
        block_a = blocked(all_rows, phase_a)
        survivors = np.nonzero(~block_a)[0]
        dominated = np.zeros(a, dtype=bool)
        if survivors.size:
            dominated[survivors] = ~blocked(survivors, phase_b)
        return dominated

    # ------------------------------------------------------------------
    # Lossy gather: per-node, RNG draw-exact
    # ------------------------------------------------------------------
    def _gather_lossy(
        self,
        grid: SpatialGrid,
        positions: np.ndarray,
        alive: np.ndarray,
        step: float,
        max_radius: float,
        gamma: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-node expanding rings with lazily fetched candidates.

        Dropped replies are retried ring after ring, so the RNG must be
        consumed node by node in the legacy order — the shared
        ``_expanding_rings`` walk does exactly that; this wrapper only
        replaces its candidate source (a dense matrix row in the
        batched backend) with expanding spatial-grid fetches, whose
        scan order is the contract order by construction.
        """
        count = positions.shape[0]
        px = positions[:, 0]
        py = positions[:, 1]
        network = self.network
        alive_rows = np.nonzero(alive)[0].astype(np.int64)
        known_parts: List[np.ndarray] = []
        known_counts = np.zeros(alive_rows.shape[0], dtype=np.int64)
        rho_final = np.zeros(alive_rows.shape[0])
        for row, node_index in enumerate(alive_rows.tolist()):
            site = network.nodes[node_index].position

            def fetch(horizon):
                cand = np.asarray(
                    grid.query_radius(site, horizon), dtype=np.int64
                )
                keep = alive[cand] & (cand != node_index)
                ids = cand[keep]
                dx = px[ids] - site[0]
                dy = py[ids] - site[1]
                dist_sq = dx * dx + dy * dy
                hops = np.maximum(
                    1, np.ceil(np.hypot(dx, dy) / gamma - 1e-9)
                ).astype(np.int64)
                return ids, positions[ids], dist_sq, hops

            state = {"horizon": step * 4.0}
            ids, cand_positions, cand_dist_sq, cand_hops = fetch(state["horizon"])
            state["ids"] = ids

            def extend(rho, _state=state):
                if rho <= _state["horizon"]:
                    return None
                _state["horizon"] = max(_state["horizon"] * 2.0, rho)
                new_ids, new_pos, new_dist_sq, new_hops = fetch(_state["horizon"])
                position_of = np.full(count, -1, dtype=np.int64)
                position_of[new_ids] = np.arange(new_ids.shape[0])
                remap = position_of[_state["ids"]]
                _state["ids"] = new_ids
                return new_pos, new_dist_sq, new_hops, remap

            known_order, rho = self._expanding_rings(
                site,
                cand_positions,
                cand_dist_sq,
                cand_hops,
                step,
                max_radius,
                extend=extend,
            )
            delivered = state["ids"][known_order] if known_order else np.zeros(
                0, dtype=np.int64
            )
            known_parts.append(delivered)
            known_counts[row] = delivered.shape[0]
            rho_final[row] = rho
        known_ids = (
            np.concatenate(known_parts) if known_parts else np.zeros(0, dtype=np.int64)
        )
        known_indptr = np.concatenate(([0], np.cumsum(known_counts))).astype(np.int64)
        return known_ids, known_indptr, rho_final

    # ------------------------------------------------------------------
    # Shared compute phase: cross-node clip + vectorised summary
    # ------------------------------------------------------------------
    def _clip_and_summarize(
        self,
        positions: np.ndarray,
        alive_rows: np.ndarray,
        known_ids: np.ndarray,
        known_indptr: np.ndarray,
        rho_final: np.ndarray,
        area_pieces,
    ) -> DistributedEngineRound:
        network = self.network
        config = self.config
        k = config.k
        timer = self._stage_timer
        n_alive = alive_rows.shape[0]
        px = positions[:, 0]
        py = positions[:, 1]
        sx = px[alive_rows]
        sy = py[alive_rows]
        with timer.stage("clip"):
            owner = segment_ids(np.diff(known_indptr), known_ids.shape[0])
            dx = px[known_ids] - sx[owner]
            dy = py[known_ids] - sy[owner]
            dist_sq = dx * dx + dy * dy
            # The sweep's competitor order: nearest first, stable on ties
            # (base order = delivery order, as in the scalar sweep).
            order = np.lexsort((dist_sq, owner))
            comp_ids = known_ids[order]
            vx, vy, piece_indptr, piece_owner = clip_cells_batch(
                np.column_stack((sx, sy)),
                px[comp_ids],
                py[comp_ids],
                known_indptr,
                area_pieces,
                k,
            )

        # Region polygons (read by the deployer's result() and the
        # compat agent surface) are materialised lazily on first access.
        known_count = np.diff(known_indptr)

        def build_regions() -> Dict[int, DominatingRegion]:
            pieces_per_row = materialize_pieces(
                vx, vy, piece_indptr, piece_owner, n_alive
            )
            built: Dict[int, DominatingRegion] = {}
            for row in range(n_alive):
                node_id = int(alive_rows[row])
                built[node_id] = DominatingRegion(
                    site=network.nodes[node_id].position,
                    k=k,
                    pieces=pieces_per_row[row],
                    competitors_used=int(known_count[row]),
                    search_radius=float(rho_final[row]),
                )
            return built

        regions: Dict[int, DominatingRegion] = LazyRegions(build_regions)

        # Vectorised summary: Chebyshev centers via mec_batch, ranges
        # and displacements via ragged reductions, move proposals with
        # the agent's exact update grouping.
        with timer.stage("summary"):
            vert_owner = piece_owner[
                segment_ids(np.diff(piece_indptr), vx.shape[0])
            ]
            owner_vert_counts = np.bincount(vert_owner, minlength=n_alive)
            vert_indptr = np.concatenate(
                ([0], np.cumsum(owner_vert_counts))
            ).astype(np.int64)
            cx, cy, radius = mec_batch(vx, vy, vert_indptr)
            empty = owner_vert_counts == 0
            cx = np.where(empty, sx, cx)
            cy = np.where(empty, sy, cy)
            radius = np.where(empty, 0.0, radius)
            ranges = np.zeros(n_alive)
            if vx.size:
                vert_dist = np.hypot(vx - sx[vert_owner], vy - sy[vert_owner])
                group_starts = np.nonzero(
                    np.concatenate(([True], vert_owner[1:] != vert_owner[:-1]))
                )[0]
                ranges[vert_owner[group_starts]] = np.maximum.reduceat(
                    vert_dist, group_starts
                )
            displacements = np.hypot(sx - cx, sy - cy)
            ids = alive_rows.tolist()
            centers: Dict[int, Tuple[float, float]] = dict(
                zip(ids, zip(cx.tolist(), cy.tolist()))
            )
            alpha = config.alpha
            move_rows = np.nonzero(displacements > config.epsilon)[0]
            # Same expression grouping as the scalar agent update:
            # pos + alpha * (center - pos), evaluated per coordinate.
            tx = sx[move_rows] + alpha * (cx[move_rows] - sx[move_rows])
            ty = sy[move_rows] + alpha * (cy[move_rows] - sy[move_rows])
            proposed: Dict[int, Tuple[float, float]] = dict(
                zip(
                    alive_rows[move_rows].tolist(),
                    zip(tx.tolist(), ty.tolist()),
                )
            )
        return DistributedEngineRound(
            regions=regions,
            centers=centers,
            circumradii=radius.tolist(),
            ranges_from_position=ranges.tolist(),
            displacements=displacements.tolist(),
            proposed_targets=proposed,
            profile=timer.result(threads=kernel_threads(), tier=kernel_tier()),
        )
