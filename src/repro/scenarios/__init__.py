"""Declarative scenarios: spec -> registry -> sweep -> cache.

The scenario subsystem turns every experiment into data (see DESIGN.md):

* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec`, the frozen,
  hashable description of one simulation;
* :mod:`repro.scenarios.pipelines` — the execution pipelines that
  interpret a spec (``laacad``, ``static``, ``distributed``, ...);
* :mod:`repro.scenarios.registry` — named scenario families and the
  ``{param: [values...]}`` grid expander;
* :mod:`repro.scenarios.sweep` — :class:`SweepRunner`, the parallel,
  cached, resumable sweep orchestrator.
"""

from repro.scenarios.pipelines import (
    available_pipelines,
    execute_pipeline,
    register_pipeline,
)
from repro.scenarios.registry import (
    ScenarioFamily,
    available_families,
    expand_grid,
    get_family,
    make_scenario,
    register_family,
)
from repro.scenarios.spec import RESULT_SCHEMA_VERSION, ScenarioSpec
from repro.scenarios.sweep import SweepOutcome, SweepReport, SweepRunner, run_scenarios

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "ScenarioFamily",
    "ScenarioSpec",
    "SweepOutcome",
    "SweepReport",
    "SweepRunner",
    "available_families",
    "available_pipelines",
    "execute_pipeline",
    "expand_grid",
    "get_family",
    "make_scenario",
    "register_family",
    "register_pipeline",
    "run_scenarios",
]
