"""Execution pipelines: how a :class:`ScenarioSpec` is turned into numbers.

Each pipeline is a pure function ``spec -> result dict``; the dict must
be JSON-serializable (the sweep cache stores it verbatim and the spec
layer normalizes it through a JSON round-trip).  Pipelines are looked up
in a registry so new simulation kinds plug in without touching the sweep
machinery::

    from repro.scenarios import register_pipeline

    def run_my_pipeline(spec):
        return {"answer": 42}

    register_pipeline("my_pipeline", run_my_pipeline)

Built-in pipelines:

* ``laacad`` — the centralized Algorithm 1 iteration (the workhorse of
  Figures 5-8 and the tables);
* ``static`` — no movement: nodes keep their placement and size their
  sensing ranges to their dominating regions (the lifetime baselines);
* ``distributed`` — the message-passing runtime, with optional node
  failures and message loss;
* ``voronoi`` — structural summary of the k-order Voronoi partition
  (Figure 1);
* ``rings`` — the Algorithm 2 expanding-ring probe at the central
  lattice node (Figure 2);
* ``localized_compare`` — localized vs global dominating-region
  agreement (the locality ablation).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

import numpy as np

from repro.scenarios.spec import ScenarioSpec

PipelineFn = Callable[[ScenarioSpec], Dict[str, Any]]

_PIPELINES: Dict[str, PipelineFn] = {}


def register_pipeline(name: str, fn: PipelineFn) -> None:
    """Register (or replace) a pipeline under ``name``."""
    _PIPELINES[name] = fn


def available_pipelines() -> List[str]:
    """Sorted names of every registered pipeline."""
    return sorted(_PIPELINES)


def execute_pipeline(spec: ScenarioSpec) -> Dict[str, Any]:
    """Run the pipeline a spec names; raises for unknown pipelines."""
    try:
        pipeline = _PIPELINES[spec.pipeline]
    except KeyError:
        raise ValueError(
            f"unknown pipeline {spec.pipeline!r}; "
            f"available: {', '.join(available_pipelines())}"
        ) from None
    return pipeline(spec)


# ----------------------------------------------------------------------
# Deployment pipelines (centralized / static / distributed)
# ----------------------------------------------------------------------
def _run_deployment(spec: ScenarioSpec) -> Dict[str, Any]:
    """Execute a deployment scenario through the ``repro.api`` session.

    All three deployment pipelines share one code path and one
    serializer (``SimulationResult.to_dict``), so their payloads can
    never drift apart again.  When the checkpoint environment is
    configured (the CLI's ``--checkpoint-every``/``--checkpoint-dir``,
    or a :class:`~repro.scenarios.sweep.SweepRunner` checkpoint
    directory), the run writes a full checkpoint every N rounds and
    resumes from a matching one — resumption is bitwise-identical, so
    the determinism contract behind the result cache is preserved.
    """
    from repro.api.checkpoint import (
        checkpoint_path_for,
        resolve_checkpoint_dir,
        resolve_checkpoint_every,
    )
    from repro.api.session import Simulation

    every = resolve_checkpoint_every()
    checkpoint_dir = resolve_checkpoint_dir()
    if every and checkpoint_dir is not None:
        path = checkpoint_path_for(checkpoint_dir, spec.digest())
        session = Simulation.resume_or_start(spec, path)
        result = session.run(checkpoint_every=every, checkpoint_path=path)
        try:
            path.unlink()
        except OSError:
            pass
    else:
        result = Simulation.from_spec(spec).run()
    return result.to_dict()


def run_laacad_pipeline(spec: ScenarioSpec) -> Dict[str, Any]:
    """Centralized Algorithm 1 run."""
    return _run_deployment(spec)


def run_static_pipeline(spec: ScenarioSpec) -> Dict[str, Any]:
    """No-movement deployment: ranges sized to the dominating regions."""
    return _run_deployment(spec)


def run_distributed_pipeline(spec: ScenarioSpec) -> Dict[str, Any]:
    """Message-passing protocol run with failures and message loss.

    ``spec.engine`` selects the distributed round backend (``batched``
    simulates the protocol at the round level over shared distance
    arrays; ``legacy`` steps one scalar agent per node).  The backends
    are bitwise identical — including the loss-model RNG draw order —
    which is what keeps the sweep cache's engine-agnostic digest sound
    for distributed scenarios too (see ``ScenarioSpec.digest``).
    """
    return _run_deployment(spec)


def run_voronoi_pipeline(spec: ScenarioSpec) -> Dict[str, Any]:
    """Structural summary of the k-order Voronoi partition (Figure 1)."""
    from repro.geometry.polygon import polygon_area
    from repro.voronoi.korder import KOrderVoronoiDiagram

    if spec.placement.get("kind", "random") != "random":
        raise ValueError(
            "the voronoi pipeline draws generator sites uniformly at random; "
            f"placement {spec.placement.get('kind')!r} is not supported"
        )
    region = spec.build_region()
    rng = np.random.default_rng(spec.resolved_placement_seed())
    sites = region.random_points(spec.node_count, rng=rng)
    seed_resolution = int(spec.extra.get("seed_resolution", 60))
    diagram = KOrderVoronoiDiagram(
        sites, region, spec.k, seed_resolution=seed_resolution
    )
    cells = diagram.cells()
    areas = [
        sum(polygon_area(list(piece)) for piece in pieces)
        for pieces in cells.values()
    ]
    dominating_areas = [
        diagram.dominating_region(i).area for i in range(spec.node_count)
    ]
    return {
        "node_count": spec.node_count,
        "num_cells": int(diagram.num_cells()),
        "cell_count_bound": int(diagram.cell_count_bound()),
        "total_cell_area": float(diagram.total_cell_area()),
        "region_area": float(region.area),
        "mean_cell_area": float(np.mean(areas)) if areas else 0.0,
        "mean_dominating_area": float(np.mean(dominating_areas)),
        "max_dominating_area": float(np.max(dominating_areas)),
    }


def run_rings_pipeline(spec: ScenarioSpec) -> Dict[str, Any]:
    """Algorithm 2 expanding-ring probe at the central node (Figure 2)."""
    from repro.core.dominating import localized_dominating_region
    from repro.geometry.primitives import distance

    region = spec.build_region()
    network = spec.build_network(region)
    positions = network.positions()
    if len(positions) <= spec.k:
        raise ValueError("the lattice is too sparse for the requested k values")
    xmin, ymin, xmax, ymax = region.bbox
    center_point = ((xmin + xmax) / 2.0, (ymin + ymax) / 2.0)
    central = min(
        range(len(positions)), key=lambda i: distance(positions[i], center_point)
    )
    computation = localized_dominating_region(
        network,
        central,
        spec.k,
        ring_granularity=float(spec.extra.get("ring_granularity", 1.0)),
        circle_check_samples=int(spec.extra.get("circle_check_samples", 72)),
    )
    return {
        "node_count": len(positions),
        "central_node": int(central),
        "ring_radius": float(computation.ring_radius),
        "hops": int(computation.hops),
        "neighbors_used": int(computation.neighbors_used),
        "competitors_in_region": int(computation.region.competitors_used),
        "dominating_area": float(computation.region.area),
        "circumradius": float(computation.region.chebyshev_center()[1]),
    }


def run_localized_compare_pipeline(spec: ScenarioSpec) -> Dict[str, Any]:
    """Localized (Algorithm 2) vs global dominating regions on one network."""
    from repro.core.dominating import localized_dominating_region
    from repro.voronoi.dominating import compute_dominating_region

    region = spec.build_region()
    network = spec.build_network(region)
    positions = network.positions()
    max_diff = 0.0
    hops: List[int] = []
    neighbors_used: List[int] = []
    for node in network.nodes:
        others = [p for j, p in enumerate(positions) if j != node.node_id]
        global_region = compute_dominating_region(
            node.position, others, region, spec.k
        )
        local = localized_dominating_region(network, node.node_id, spec.k)
        diff = abs(
            global_region.circumradius(node.position)
            - local.region.circumradius(node.position)
        )
        max_diff = max(max_diff, diff)
        hops.append(local.hops)
        neighbors_used.append(local.neighbors_used)
    return {
        "node_count": len(positions),
        "max_range_difference": float(max_diff),
        "max_hops": int(max(hops)) if hops else 0,
        "mean_hops": float(np.mean(hops)) if hops else 0.0,
        "mean_neighbors_used": float(np.mean(neighbors_used)) if neighbors_used else 0.0,
    }


register_pipeline("laacad", run_laacad_pipeline)
register_pipeline("static", run_static_pipeline)
register_pipeline("distributed", run_distributed_pipeline)
register_pipeline("voronoi", run_voronoi_pipeline)
register_pipeline("rings", run_rings_pipeline)
register_pipeline("localized_compare", run_localized_compare_pipeline)
