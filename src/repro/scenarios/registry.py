"""Named scenario families and the grid expander.

A :class:`ScenarioFamily` is a reusable template: a base
:class:`ScenarioSpec` plus a default sweep grid.  Families make "add a
new workload" a ~10-line registry entry instead of a new experiment
module::

    register_family(ScenarioFamily(
        name="my_workload",
        description="what it studies",
        base=ScenarioSpec(name="my_workload", k=2, ...),
        default_grid={"k": [1, 2, 3]},
    ))

Grid keys are spec field names, optionally dotted into dict-valued
fields (``"placement.cluster_fraction"``, ``"extra.seed_resolution"``).
Expansion order is deterministic: the cartesian product iterates the
grid keys in insertion order, last key fastest — exactly like the nested
``for`` loops the experiment runners used to hand-roll.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, List, Mapping, Sequence

from repro.scenarios.spec import ScenarioSpec


@dataclasses.dataclass(frozen=True)
class ScenarioFamily:
    """A named scenario template with a default sweep grid.

    Attributes:
        name: registry key.
        description: one-line summary (shown by the CLI).
        base: the template spec; family scenarios are derived from it.
        default_grid: the sweep the family runs when no grid is given.
    """

    name: str
    description: str
    base: ScenarioSpec
    default_grid: Mapping[str, Sequence[Any]] = dataclasses.field(default_factory=dict)

    def scenario(self, **overrides: Any) -> ScenarioSpec:
        """One concrete spec: the base with (possibly dotted) overrides."""
        spec = self.base
        for path, value in overrides.items():
            spec = spec.override(path, value)
        return spec

    def grid(self, grid: Mapping[str, Sequence[Any]] = None, **overrides: Any) -> List[ScenarioSpec]:
        """Expand a sweep grid over this family (default: ``default_grid``).

        A fixed override pins its parameter: when falling back to the
        family's default grid, any axis naming an overridden parameter is
        dropped so the override is not swept away.
        """
        base = self.scenario(**overrides) if overrides else self.base
        if grid is None:
            grid = {
                key: values
                for key, values in self.default_grid.items()
                if key not in overrides
            }
        return expand_grid(base, grid)


_FAMILIES: Dict[str, ScenarioFamily] = {}


def register_family(family: ScenarioFamily) -> None:
    """Register (or replace) a scenario family."""
    _FAMILIES[family.name] = family


def available_families() -> List[str]:
    """Sorted names of every registered family."""
    return sorted(_FAMILIES)


def get_family(name: str) -> ScenarioFamily:
    """Family lookup; raises a helpful ``KeyError`` for unknown names."""
    try:
        return _FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario family {name!r}; "
            f"available: {', '.join(available_families())}"
        ) from None


def make_scenario(family_name: str, **overrides: Any) -> ScenarioSpec:
    """One concrete scenario from a named family."""
    return get_family(family_name).scenario(**overrides)


def expand_grid(
    base: ScenarioSpec, grid: Mapping[str, Sequence[Any]]
) -> List[ScenarioSpec]:
    """Turn ``{param: [values...]}`` into the list of swept scenarios.

    Every parameter may be a spec field or a dotted path into a
    dict-valued field.  An empty grid yields ``[base]``.
    """
    if not grid:
        return [base]
    keys = list(grid)
    specs: List[ScenarioSpec] = []
    for combo in itertools.product(*(grid[key] for key in keys)):
        spec = base
        for path, value in zip(keys, combo):
            spec = spec.override(path, value)
        specs.append(spec)
    return specs


# ----------------------------------------------------------------------
# Built-in families
# ----------------------------------------------------------------------
register_family(
    ScenarioFamily(
        name="open_field",
        description="Uniform random deployment on the unit square (Fig. 7 / tables setting)",
        base=ScenarioSpec(name="open_field", placement={"kind": "random"}, k=2, seed=23),
        default_grid={"node_count": [20, 60, 100], "k": [1, 2, 3]},
    )
)

register_family(
    ScenarioFamily(
        name="corner_cluster",
        description="All nodes start at the bottom-left corner (Fig. 5/6 setting)",
        base=ScenarioSpec(
            name="corner_cluster",
            placement={"kind": "corner_cluster", "cluster_fraction": 0.15},
            node_count=60,
            k=1,
            seed=11,
            max_rounds=120,
        ),
        default_grid={"k": [1, 2, 3, 4]},
    )
)

register_family(
    ScenarioFamily(
        name="obstacle_field",
        description="Unit square with a central obstacle (Fig. 8 region I)",
        base=ScenarioSpec(
            name="obstacle_field",
            region={"kind": "fig8_region_one"},
            node_count=50,
            k=2,
            seed=41,
            max_rounds=80,
        ),
        default_grid={"k": [2, 4]},
    )
)

register_family(
    ScenarioFamily(
        name="l_hall_obstacles",
        description="L-shaped hall with two obstacles (Fig. 8 region II)",
        base=ScenarioSpec(
            name="l_hall_obstacles",
            region={"kind": "fig8_region_two"},
            node_count=50,
            k=2,
            seed=41,
            max_rounds=80,
        ),
        default_grid={"k": [2, 4]},
    )
)

register_family(
    ScenarioFamily(
        name="dense_uniform",
        description="Dense short-range deployment (Table I min-node setting)",
        base=ScenarioSpec(
            name="dense_uniform",
            node_count=150,
            k=2,
            comm_range=0.1,
            seed=31,
            max_rounds=60,
        ),
        default_grid={"node_count": [150, 200, 250]},
    )
)

register_family(
    ScenarioFamily(
        name="ring_probe",
        description="Algorithm 2 locality probe on a triangular lattice (Fig. 2 setting)",
        base=ScenarioSpec(
            name="ring_probe",
            pipeline="rings",
            placement={"kind": "triangular_spacing", "spacing": 0.1},
            comm_range=0.12,
            k=1,
            seed=13,
            extra={"comm_factor": 1.2},
        ),
        default_grid={"k": list(range(1, 13))},
    )
)

register_family(
    ScenarioFamily(
        name="voronoi_partition",
        description="Structural summary of the k-order Voronoi partition (Fig. 1 setting)",
        base=ScenarioSpec(
            name="voronoi_partition",
            pipeline="voronoi",
            node_count=30,
            k=1,
            seed=7,
            extra={"seed_resolution": 60},
        ),
        default_grid={"k": [1, 2, 3, 4]},
    )
)

register_family(
    ScenarioFamily(
        name="static_blueprint",
        description="No-movement deployments sized to their dominating regions (lifetime baselines)",
        base=ScenarioSpec(
            name="static_blueprint",
            pipeline="static",
            node_count=40,
            k=2,
            comm_range=0.3,
            seed=61,
        ),
        default_grid={"placement.kind": ["random", "lattice"]},
    )
)

# The two families below open workloads no pre-existing experiment
# exercises: mid-run node failures and speed-limited actuators.
register_family(
    ScenarioFamily(
        name="node_failures",
        description=(
            "Message-passing LAACAD with mid-run node crashes: quantifies how "
            "gracefully k-coverage degrades and how survivors re-balance"
        ),
        base=ScenarioSpec(
            name="node_failures",
            pipeline="distributed",
            node_count=36,
            k=3,
            comm_range=0.3,
            seed=8,
            max_rounds=80,
            failures={"scheduled": {"10": [0, 1], "20": [2]}, "random_failure_rate": 0.0, "seed": 8},
        ),
        default_grid={"k": [2, 3], "failures.random_failure_rate": [0.0, 0.005]},
    )
)

register_family(
    ScenarioFamily(
        name="constrained_mobility",
        description=(
            "Corner-cluster deployment with a per-round speed limit: slow "
            "actuators stretch the expanding phase but must not break coverage"
        ),
        base=ScenarioSpec(
            name="constrained_mobility",
            placement={"kind": "corner_cluster", "cluster_fraction": 0.15},
            node_count=40,
            k=2,
            seed=11,
            max_rounds=200,
            mobility={"max_step": 0.05},
        ),
        default_grid={"mobility.max_step": [0.025, 0.05, 0.1], "k": [1, 2]},
    )
)
