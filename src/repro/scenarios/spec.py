"""The declarative scenario specification.

A :class:`ScenarioSpec` is a frozen, fully serializable description of
one simulation: the target area, how the nodes are placed, the LAACAD
parameters, the execution pipeline and every seed involved.  Two specs
with the same canonical dict are the same experiment — the sha256 digest
of that dict is the content address the sweep cache is keyed by.

The spec is deliberately *plain data*: regions, placements, mobility
constraints and failure schedules are small dicts (``{"kind": ...}``)
rather than live objects, so a spec round-trips through JSON, hashes
stably, and crosses process boundaries into sweep workers unchanged.
Construction of the live objects is delegated to the scenario-driven
hooks on the domain classes (``SensorNetwork.from_placement``,
``MobilityModel.from_dict``, ``FailureInjector.from_dict``,
``LaacadConfig.from_mapping``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Mapping, Optional

from repro.core.config import LaacadConfig
from repro.network.mobility import MobilityModel
from repro.regions.region import Region
from repro.regions.shapes import (
    cross_region,
    figure8_region_one,
    figure8_region_two,
    l_shaped_region,
    rectangle_region,
    square_region,
    unit_square,
)

#: Bump when the result payload layout changes; stale cache entries are
#: recomputed instead of being misread.  Version 2: deployment pipelines
#: serialize through ``SimulationResult.to_dict`` (payloads gained the
#: lossless ``schema_version``/``kind``/``config`` fields).
RESULT_SCHEMA_VERSION = 2


def _region_from_dict(spec: Mapping[str, Any]) -> Region:
    """Build the target area described by a region dict."""
    kind = spec.get("kind", "unit_square")
    params = {k: v for k, v in spec.items() if k != "kind"}
    if kind == "unit_square":
        return unit_square(**params)
    if kind == "square":
        return square_region(**params)
    if kind == "rectangle":
        return rectangle_region(**params)
    if kind == "l_shape":
        return l_shaped_region(**params)
    if kind == "cross":
        return cross_region(**params)
    if kind == "fig8_region_one":
        return figure8_region_one(**params)
    if kind == "fig8_region_two":
        return figure8_region_two(**params)
    if kind == "polygon":
        outer = [tuple(p) for p in params["outer"]]
        holes = [[tuple(p) for p in hole] for hole in params.get("holes", [])]
        return Region(outer, holes=holes, name=params.get("name", "polygon"))
    raise ValueError(f"unknown region kind {kind!r}")


def _canonicalize(value: Any) -> Any:
    """Deep-convert a value into canonical JSON-compatible form.

    Tuples become lists, mappings become plain dicts, and non-string
    mapping keys are stringified the way ``json.dumps`` would, so the
    canonical dict of a spec is identical whether it was built in Python
    or reloaded from a cache file.
    """
    if isinstance(value, Mapping):
        return {str(k): _canonicalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonicalize(v) for v in value]
    if isinstance(value, (str, bool, type(None))):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    raise TypeError(f"value {value!r} is not scenario-serializable")


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one simulation run.

    Attributes:
        name: human-readable label (not part of the content hash).
        pipeline: which execution pipeline interprets the spec — see
            ``repro.scenarios.pipelines`` (``"laacad"``, ``"static"``,
            ``"distributed"``, ``"voronoi"``, ``"rings"``,
            ``"localized_compare"``).
        region: region dict (``{"kind": "unit_square"}``,
            ``{"kind": "fig8_region_one"}``, ...).
        node_count: number of nodes to place (spacing-driven lattice
            placements may override it; the result records the actual
            count).
        k: coverage order.
        comm_range: transmission range ``gamma``.
        placement: placement dict (``{"kind": "random"}``,
            ``{"kind": "corner_cluster", "cluster_fraction": 0.15}``,
            ``{"kind": "lattice", "lattice": "triangular"}``,
            ``{"kind": "triangular_spacing", "spacing": 0.1}``).
        alpha, epsilon, max_rounds: Algorithm 1 knobs.
        seed: the LAACAD config seed.
        placement_seed: RNG seed of the initial placement; ``None``
            means "use ``seed``".
        engine: round-engine backend name.
        mobility: mobility dict (``{"max_step": 0.05}``); empty = the
            default unconstrained model.
        failures: failure dict (``{"scheduled": {"10": [0, 1]},
            "random_failure_rate": 0.01, "seed": 0}``); empty = none.
        drop_probability: message-drop probability (distributed pipeline).
        extra: pipeline-specific knobs (``seed_resolution`` for the
            Voronoi pipeline, ``comm_factor`` for the ring probe, ...).
    """

    name: str = "scenario"
    pipeline: str = "laacad"
    region: Mapping[str, Any] = dataclasses.field(
        default_factory=lambda: {"kind": "unit_square"}
    )
    node_count: int = 40
    k: int = 1
    comm_range: float = 0.25
    placement: Mapping[str, Any] = dataclasses.field(
        default_factory=lambda: {"kind": "random"}
    )
    alpha: float = 1.0
    epsilon: float = 1e-3
    max_rounds: int = 200
    seed: int = 0
    placement_seed: Optional[int] = None
    engine: str = "batched"
    mobility: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    failures: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    drop_probability: float = 0.0
    extra: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    # Serialization and identity
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical dict: every field in canonical JSON-compatible form."""
        payload = dataclasses.asdict(self)
        return {key: _canonicalize(value) for key, value in payload.items()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from (a superset of) its canonical dict."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        return cls(**{k: _canonicalize(v) for k, v in payload.items()})

    def canonical_json(self) -> str:
        """Deterministic JSON text of the content-relevant fields.

        Two fields are excluded: the ``name`` label (renaming a scenario
        must not invalidate its cached result) and ``engine`` (round
        backends are contractually bit-identical — enforced by the
        engine equivalence suite — so a sweep cached under one backend
        resolves under the other).  An intentionally approximate future
        backend must therefore be modeled as a different pipeline or an
        ``extra`` knob, never via ``engine``.
        """
        payload = self.to_dict()
        payload.pop("name", None)
        payload.pop("engine", None)
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """sha256 content address of this scenario."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """A copy of this spec with some fields replaced."""
        return dataclasses.replace(self, **changes)

    def override(self, path: str, value: Any) -> "ScenarioSpec":
        """A copy with one (possibly dotted) parameter overridden.

        ``spec.override("k", 3)`` replaces a top-level field;
        ``spec.override("placement.cluster_fraction", 0.2)`` replaces one
        key inside a dict-valued field.
        """
        known = {f.name for f in dataclasses.fields(self)}
        if "." not in path:
            if path not in known:
                raise ValueError(
                    f"unknown scenario parameter {path!r}; "
                    f"fields: {', '.join(sorted(known))}"
                )
            return self.replace(**{path: value})
        field_name, _, key = path.partition(".")
        if field_name not in known:
            raise ValueError(
                f"unknown scenario parameter {path!r}; "
                f"fields: {', '.join(sorted(known))}"
            )
        current = getattr(self, field_name)
        if not isinstance(current, Mapping):
            raise ValueError(
                f"cannot apply dotted override {path!r}: field {field_name!r} "
                "is not a mapping"
            )
        updated = dict(current)
        updated[key] = value
        return self.replace(**{field_name: updated})

    # ------------------------------------------------------------------
    # Construction of live objects
    # ------------------------------------------------------------------
    def build_region(self) -> Region:
        """The target area this scenario runs on."""
        return _region_from_dict(self.region)

    def resolved_placement_seed(self) -> int:
        """The placement RNG seed (defaults to the config seed)."""
        return self.seed if self.placement_seed is None else self.placement_seed

    def build_network(self, region: Optional[Region] = None):
        """Construct the sensor network described by the spec."""
        from repro.network.network import SensorNetwork

        if region is None:
            region = self.build_region()
        return SensorNetwork.from_placement(
            region,
            self.placement,
            count=self.node_count,
            comm_range=self.comm_range,
            seed=self.resolved_placement_seed(),
        )

    def build_config(self) -> LaacadConfig:
        """The LAACAD configuration for this scenario."""
        options = {
            "k": self.k,
            "alpha": self.alpha,
            "epsilon": self.epsilon,
            "max_rounds": self.max_rounds,
            "seed": self.seed,
            "engine": self.engine,
        }
        options.update(self.extra.get("config", {}))
        return LaacadConfig.from_mapping(options)

    def build_mobility(self) -> MobilityModel:
        """The mobility model (default: unconstrained, kept in region)."""
        return MobilityModel.from_dict(self.mobility)

    def build_failure_injector(self):
        """The failure injector described by the spec (``None`` if none)."""
        from repro.runtime.failures import FailureInjector

        return FailureInjector.from_dict(self.failures) if self.failures else None

    def simulation(self):
        """A :class:`repro.api.Simulation` session for this scenario.

        The session is steppable, observable and checkpointable; the
        spec's ``pipeline`` selects the deployer kind.
        """
        from repro.api.session import Simulation

        return Simulation.from_spec(self)

    def build_runner(self):
        """Deprecated: a centralized ``LaacadRunner`` over a fresh network.

        Constructing the runner emits a :class:`DeprecationWarning`; use
        :meth:`simulation` instead.
        """
        from repro.core.laacad import LaacadRunner

        return LaacadRunner(
            self.build_network(), self.build_config(), mobility=self.build_mobility()
        )

    def build_distributed_runner(self):
        """Deprecated: a ``DistributedLaacadRunner`` with this spec's failures.

        Constructing the runner emits a :class:`DeprecationWarning`; use
        :meth:`simulation` (with ``pipeline="distributed"``) instead.
        """
        from repro.runtime.protocol import DistributedLaacadRunner

        return DistributedLaacadRunner(
            self.build_network(),
            self.build_config(),
            mobility=self.build_mobility(),
            drop_probability=self.drop_probability,
            failure_injector=self.build_failure_injector(),
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        """Execute the scenario; returns a JSON-normalized result dict.

        The result is passed through a JSON round-trip before being
        returned so that freshly computed and cache-loaded results are
        indistinguishable (identical types and float values).
        """
        from repro.scenarios.pipelines import execute_pipeline

        result = execute_pipeline(self)
        return json.loads(json.dumps(result, default=float))
