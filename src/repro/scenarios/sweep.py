"""The sweep orchestrator: run many scenarios with caching and workers.

The :class:`SweepRunner` executes a list of :class:`ScenarioSpec`s and
returns their results in input order.  Two orthogonal features:

* **Content-addressed cache** — with a ``cache_dir``, every result is
  stored as ``<digest-prefix>/<digest>.json`` keyed by the scenario's
  canonical-dict sha256.  Re-running a sweep only computes the missing
  cells, so interrupted or extended sweeps resume for free, and two
  experiments sharing a cell (e.g. Figures 5 and 6 run the identical
  deployments) compute it once.
* **Worker pool** — ``jobs > 1`` fans the missing cells out over a
  ``multiprocessing`` pool.  Scenarios cross the process boundary as
  canonical dicts and every pipeline is a pure function of its spec, so
  the parallel results are bit-identical to the serial ones; ``jobs=1``
  (the default) runs in-process with no pool at all.

Duplicate scenarios inside one sweep are computed once and fanned back
out to every position they occupy.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import multiprocessing
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.scenarios.spec import RESULT_SCHEMA_VERSION, ScenarioSpec

#: Cache accounting, process-wide: the same hit/miss totals the
#: :class:`SweepReport` carries per sweep, accumulated across sweeps so
#: the ``/metrics`` endpoint (and any long-lived orchestrator) can watch
#: cache effectiveness over time.
_CACHE_HITS = _metrics.counter(
    "repro_sweep_cache_hits_total", "Sweep cells served from the result cache"
)
_CACHE_MISSES = _metrics.counter(
    "repro_sweep_cache_misses_total", "Sweep cells computed (cache misses)"
)


def _execute_spec_dict(payload: Tuple[str, Dict[str, Any]]) -> Tuple[str, Dict[str, Any]]:
    """Worker entry point: rebuild the spec from its dict and run it.

    Module-level (not a closure) so it pickles into pool workers.
    """
    digest, spec_dict = payload
    spec = ScenarioSpec.from_dict(spec_dict)
    with _trace.span("sweep_cell", digest=digest[:12]):
        return digest, spec.run()


def _execute_spec_dict_traced(
    payload: Tuple[str, Dict[str, Any]],
) -> Tuple[str, Dict[str, Any], List[Dict[str, Any]]]:
    """Traced worker entry: also returns the cell's span rows.

    A forked worker inherits the parent's collector object, but its rows
    would die with the child process — so the traced dispatch records
    into a private collector and ships the rows home with the result for
    the parent to :meth:`~repro.obs.trace.TraceCollector.adopt`.
    """
    with _trace.collecting() as local:
        digest, result = _execute_spec_dict(payload)
    return digest, result, local.rows()


@dataclasses.dataclass
class SweepOutcome:
    """One executed (or cache-served) sweep cell."""

    spec: ScenarioSpec
    result: Dict[str, Any]
    cached: bool


@dataclasses.dataclass
class SweepReport:
    """Everything a sweep produced, in input order."""

    outcomes: List[SweepOutcome]
    hits: int
    misses: int
    elapsed_seconds: float
    jobs: int

    @property
    def results(self) -> List[Dict[str, Any]]:
        """Result dicts in the order the scenarios were submitted."""
        return [outcome.result for outcome in self.outcomes]

    def summary(self) -> str:
        """One-line accounting string (printed by the CLI)."""
        return (
            f"{len(self.outcomes)} scenarios, {self.hits} cache hits, "
            f"{self.misses} misses, jobs={self.jobs}, "
            f"{self.elapsed_seconds:.2f}s"
        )


class SweepRunner:
    """Executes scenario lists with optional caching and parallelism.

    Args:
        cache_dir: directory of the content-addressed result cache;
            ``None`` disables caching.
        jobs: worker processes; 1 (the default) runs serially in-process.
        checkpoint_dir: directory for per-cell mid-run checkpoints; with
            ``checkpoint_every`` set, every deployment cell periodically
            writes a full checkpoint named by its scenario digest, and a
            re-run after preemption resumes each interrupted cell
            bitwise-identically instead of starting over.
        checkpoint_every: checkpoint frequency in rounds (``None``/0
            disables mid-run checkpointing).
    """

    def __init__(
        self,
        cache_dir: Optional[Path] = None,
        jobs: int = 1,
        checkpoint_dir: Optional[Path] = None,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if checkpoint_every is not None and checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.jobs = int(jobs)
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_every = int(checkpoint_every) if checkpoint_every else 0

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _cache_path(self, digest: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / digest[:2] / f"{digest}.json"

    def load_cached(self, spec: ScenarioSpec) -> Optional[Dict[str, Any]]:
        """The cached result for a spec, or ``None`` if absent/stale."""
        if self.cache_dir is None:
            return None
        path = self._cache_path(spec.digest())
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("schema_version") != RESULT_SCHEMA_VERSION:
            return None
        # Hash-collision / hand-edit paranoia: the stored spec must match.
        if payload.get("spec_json") != spec.canonical_json():
            return None
        return payload.get("result")

    def store(self, spec: ScenarioSpec, result: Dict[str, Any]) -> Optional[Path]:
        """Persist one result; returns the cache file path (or ``None``)."""
        if self.cache_dir is None:
            return None
        path = self._cache_path(spec.digest())
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "digest": spec.digest(),
            "spec": spec.to_dict(),
            "spec_json": spec.canonical_json(),
            "result": result,
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2))
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def _checkpoint_env(self):
        """Expose the checkpoint settings to pipelines (and pool workers).

        Pipelines read the checkpoint knobs from the environment (the
        same channel the CLI uses), which also crosses the
        ``multiprocessing`` fork boundary for free; the previous values
        are restored afterwards.
        """
        if not (self.checkpoint_every and self.checkpoint_dir is not None):
            yield
            return
        from repro.api.checkpoint import CHECKPOINT_DIR_ENV, CHECKPOINT_EVERY_ENV

        saved = {
            key: os.environ.get(key)
            for key in (CHECKPOINT_DIR_ENV, CHECKPOINT_EVERY_ENV)
        }
        os.environ[CHECKPOINT_DIR_ENV] = str(self.checkpoint_dir)
        os.environ[CHECKPOINT_EVERY_ENV] = str(self.checkpoint_every)
        try:
            yield
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value

    def run(self, specs: Sequence[ScenarioSpec]) -> SweepReport:
        """Execute the sweep; results come back in input order."""
        start = time.perf_counter()
        specs = list(specs)
        digests = [spec.digest() for spec in specs]

        # Serve every cell the cache already holds.
        results: Dict[str, Dict[str, Any]] = {}
        hits = 0
        missing: Dict[str, ScenarioSpec] = {}
        for spec, digest in zip(specs, digests):
            if digest in results or digest in missing:
                continue
            cached = self.load_cached(spec)
            if cached is not None:
                results[digest] = cached
                hits += 1
            else:
                missing[digest] = spec

        # Compute the missing cells (deduplicated), serially or pooled.
        misses = len(missing)
        _CACHE_HITS.inc(hits)
        _CACHE_MISSES.inc(misses)
        if missing:
            work = [(digest, spec.to_dict()) for digest, spec in missing.items()]
            with self._checkpoint_env(), _trace.span(
                "sweep", cells=len(work), jobs=self.jobs
            ) as sweep_span:
                if self.jobs > 1 and len(work) > 1:
                    with multiprocessing.Pool(min(self.jobs, len(work))) as pool:
                        if _trace.tracing_active():
                            # Workers trace into private collectors and
                            # return their rows; stitch each cell's
                            # subtree under this sweep span.
                            collector = _trace.current_collector()
                            parent = getattr(sweep_span, "span_id", None)
                            computed = []
                            for digest, result, rows in pool.map(
                                _execute_spec_dict_traced, work
                            ):
                                collector.adopt(rows, parent_id=parent)
                                computed.append((digest, result))
                        else:
                            computed = pool.map(_execute_spec_dict, work)
                else:
                    computed = [_execute_spec_dict(item) for item in work]
            for digest, result in computed:
                results[digest] = result
                self.store(missing[digest], result)

        outcomes = [
            SweepOutcome(spec=spec, result=results[digest], cached=digest not in missing)
            for spec, digest in zip(specs, digests)
        ]
        elapsed = time.perf_counter() - start
        return SweepReport(
            outcomes=outcomes,
            hits=hits,
            misses=misses,
            elapsed_seconds=elapsed,
            jobs=self.jobs,
        )


def run_scenarios(
    specs: Sequence[ScenarioSpec],
    cache_dir: Optional[Path] = None,
    jobs: int = 1,
) -> List[Dict[str, Any]]:
    """Convenience wrapper: run a sweep and return just the result dicts."""
    return SweepRunner(cache_dir=cache_dir, jobs=jobs).run(specs).results
