"""``repro.service`` — simulation-as-a-service (see DESIGN.md).

The layer above :mod:`repro.api` that turns the single-caller
:class:`~repro.api.Simulation` session into a multi-tenant service:

* :class:`SessionManager` — thousands of named sessions on one asyncio
  loop, CPU-bound stepping on a bounded worker pool, LRU
  checkpoint-backed eviction of idle sessions (resident cost of an
  evicted session ≈ its JSON checkpoint blob) with transparent,
  bitwise-identical resurrection;
* :class:`EventBatcher` / :class:`Subscriber` — coalesced round-event
  batches flushed on a count/wall-clock window instead of per-event
  callbacks;
* :class:`ServiceServer` / :class:`ServiceThread` — the stdlib-only
  JSON-over-HTTP front end (create/step/run/checkpoint/subscribe/delete,
  long-poll batch delivery) and its thread harness for synchronous
  callers;
* the ``repro serve`` CLI (:mod:`repro.service.cli`).
"""

from repro.service.batching import (
    DEFAULT_MAX_EVENTS,
    DEFAULT_MAX_LATENCY,
    DEFAULT_MAX_PENDING,
    EventBatcher,
    Subscriber,
)
from repro.service.events import event_to_dict
from repro.service.http import ServiceServer, ServiceThread
from repro.service.manager import (
    LIVE_BYTES_BUDGET_ENV,
    MAX_LIVE_SESSIONS_ENV,
    DuplicateSessionError,
    SessionCompletedError,
    SessionManager,
    SessionRecord,
    UnknownSessionError,
    estimate_live_nbytes,
)

__all__ = [
    "DEFAULT_MAX_EVENTS",
    "DEFAULT_MAX_LATENCY",
    "DEFAULT_MAX_PENDING",
    "DuplicateSessionError",
    "EventBatcher",
    "LIVE_BYTES_BUDGET_ENV",
    "MAX_LIVE_SESSIONS_ENV",
    "ServiceServer",
    "ServiceThread",
    "SessionCompletedError",
    "SessionManager",
    "SessionRecord",
    "Subscriber",
    "UnknownSessionError",
    "estimate_live_nbytes",
    "event_to_dict",
]
