"""Batched event delivery: coalesce round events, flush on a window.

Remote consumers must not pay one round-trip per round event — at
thousands of concurrent sessions the per-event callback model of
``Simulation.add_observer`` becomes pure overhead.  The service layer
instead coalesces events per subscriber and flushes *batches* on a
configurable window, whichever comes first:

* **count**: the buffer reached ``max_events``;
* **wall-clock**: ``max_latency`` seconds passed since the first event
  entered the (non-empty) buffer.

This is the bulk-sensor pattern of production firmwares (klipper's
``_InternalClient`` + ``BATCH_UPDATES``): producers append cheaply,
consumers receive chunks, and latency is bounded by the flush window
rather than by the consumer's round-trip time.

A subscriber that stops draining does not block the producer or grow
without bound: flushed batches queue up to ``max_pending`` and the
oldest are dropped, with the drop *counted* and reported on the next
batch the subscriber does read (``dropped_batches``) — delivery is
best-effort, loss is observable, sessions never stall.

Everything here is single-loop asyncio: ``publish`` must be called on
the event loop that owns the batcher (the :class:`SessionManager`
guarantees this), so no locks are needed.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque
from typing import Any, Deque, Dict, List, Optional

#: Default flush window: a batch closes at this many events ...
DEFAULT_MAX_EVENTS = 32
#: ... or this many seconds after its first event, whichever is first.
DEFAULT_MAX_LATENCY = 0.25
#: Flushed-but-undelivered batches kept per subscriber before the
#: oldest are dropped (and counted).
DEFAULT_MAX_PENDING = 64


class Subscriber:
    """One consumer's view of a session's event stream.

    Holds the open (still-coalescing) buffer, the queue of flushed
    batches awaiting delivery, and the long-poll wakeup event.  Created
    via :meth:`EventBatcher.attach`; never constructed directly.
    """

    def __init__(
        self,
        subscriber_id: str,
        *,
        max_events: int,
        max_latency: float,
        max_pending: int,
        include_positions: bool = False,
        drop_counter: Optional[Any] = None,
    ) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        if max_latency < 0.0:
            raise ValueError("max_latency must be >= 0")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.id = subscriber_id
        self.max_events = max_events
        self.max_latency = max_latency
        self.max_pending = max_pending
        self.include_positions = include_positions
        self.buffer: List[Dict[str, Any]] = []
        self.pending: Deque[Dict[str, Any]] = deque()
        self.dropped_batches = 0
        self._drop_counter = drop_counter
        self.batches_flushed = 0
        self.events_seen = 0
        self.closed = False
        self._wakeup = asyncio.Event()
        self._flush_handle: Optional[asyncio.TimerHandle] = None

    # -- producer side (EventBatcher) ----------------------------------
    def _enqueue(self, batch: Dict[str, Any]) -> None:
        if len(self.pending) >= self.max_pending:
            self.pending.popleft()
            self.dropped_batches += 1
            if self._drop_counter is not None:
                self._drop_counter.inc()
        self.pending.append(batch)
        self._wakeup.set()

    def _cancel_timer(self) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None

    # -- consumer side -------------------------------------------------
    async def next_batch(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Long-poll: the next flushed batch, or ``None`` on timeout.

        Returns immediately when a batch is already pending; otherwise
        waits up to ``timeout`` seconds (forever when ``None``) for one
        to be flushed.  On a closed, fully drained subscriber this
        returns ``None`` immediately.
        """
        while True:
            if self.pending:
                batch = self.pending.popleft()
                # Stamped at delivery, not at flush: the consumer learns
                # of every drop that has happened up to this read.
                batch["dropped_batches"] = self.dropped_batches
                if not self.pending:
                    self._wakeup.clear()
                return batch
            if self.closed:
                return None
            self._wakeup.clear()
            try:
                if timeout is None:
                    await self._wakeup.wait()
                else:
                    await asyncio.wait_for(self._wakeup.wait(), timeout)
            except asyncio.TimeoutError:
                return None


class EventBatcher:
    """Coalesces one session's round events into per-subscriber batches."""

    def __init__(
        self,
        session_name: str,
        *,
        max_events: int = DEFAULT_MAX_EVENTS,
        max_latency: float = DEFAULT_MAX_LATENCY,
        max_pending: int = DEFAULT_MAX_PENDING,
        drop_counter: Optional[Any] = None,
    ) -> None:
        self.session_name = session_name
        self.max_events = max_events
        self.max_latency = max_latency
        self.max_pending = max_pending
        self.drop_counter = drop_counter
        self._subscribers: Dict[str, Subscriber] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Subscriber lifecycle
    # ------------------------------------------------------------------
    def attach(
        self,
        *,
        max_events: Optional[int] = None,
        max_latency: Optional[float] = None,
        include_positions: bool = False,
    ) -> Subscriber:
        """Register a new subscriber (optionally overriding the window)."""
        subscriber = Subscriber(
            f"sub-{next(self._ids)}",
            max_events=self.max_events if max_events is None else max_events,
            max_latency=self.max_latency if max_latency is None else max_latency,
            max_pending=self.max_pending,
            include_positions=include_positions,
            drop_counter=self.drop_counter,
        )
        self._subscribers[subscriber.id] = subscriber
        return subscriber

    def detach(self, subscriber_id: str) -> None:
        """Unsubscribe; a mid-batch buffer is discarded, pending batches
        are dropped, and an in-flight long-poll returns ``None``."""
        subscriber = self._subscribers.pop(subscriber_id, None)
        if subscriber is None:
            raise KeyError(subscriber_id)
        subscriber._cancel_timer()
        subscriber.closed = True
        subscriber.buffer.clear()
        subscriber.pending.clear()
        subscriber._wakeup.set()

    def get(self, subscriber_id: str) -> Subscriber:
        return self._subscribers[subscriber_id]

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    # ------------------------------------------------------------------
    # Producer path
    # ------------------------------------------------------------------
    def publish(self, event: Any) -> None:
        """Buffer one round event for every subscriber (loop-thread only).

        ``event`` is a :class:`~repro.api.events.RoundEvent`; the wire
        projection is computed at most twice (with and without
        positions) regardless of the subscriber count.
        """
        from repro.service.events import event_to_dict

        projections: Dict[bool, Dict[str, Any]] = {}
        for subscriber in self._subscribers.values():
            projection = projections.get(subscriber.include_positions)
            if projection is None:
                projection = event_to_dict(
                    event, include_positions=subscriber.include_positions
                )
                projections[subscriber.include_positions] = projection
            self._buffer_event(subscriber, projection)

    def _buffer_event(self, subscriber: Subscriber, projection: Dict[str, Any]) -> None:
        subscriber.buffer.append(projection)
        subscriber.events_seen += 1
        if len(subscriber.buffer) >= subscriber.max_events:
            self._flush(subscriber)
        elif subscriber._flush_handle is None:
            # First event of a fresh batch: bound its latency.  A zero
            # window degenerates to per-event delivery (flush now).
            if subscriber.max_latency == 0.0:
                self._flush(subscriber)
            else:
                loop = asyncio.get_running_loop()
                subscriber._flush_handle = loop.call_later(
                    subscriber.max_latency, self._flush_timer, subscriber
                )

    def _flush_timer(self, subscriber: Subscriber) -> None:
        subscriber._flush_handle = None
        self._flush(subscriber)

    def flush_all(self) -> None:
        """Force every non-empty buffer out (session end / shutdown)."""
        for subscriber in list(self._subscribers.values()):
            self._flush(subscriber)

    def _flush(self, subscriber: Subscriber) -> None:
        subscriber._cancel_timer()
        if not subscriber.buffer:
            # An empty flush window (timer fired after a count-flush
            # raced it, or an explicit flush_all on an idle stream)
            # produces no batch: subscribers never see empty batches.
            return
        batch = {
            "session": self.session_name,
            "batch_index": subscriber.batches_flushed,
            "events": subscriber.buffer,
            "event_count": len(subscriber.buffer),
            "dropped_batches": subscriber.dropped_batches,  # re-stamped at delivery
            "final": bool(subscriber.buffer[-1]["done"]),
        }
        subscriber.buffer = []
        subscriber.batches_flushed += 1
        subscriber._enqueue(batch)

    def close(self) -> None:
        """Detach every subscriber (session deleted)."""
        for subscriber_id in list(self._subscribers):
            self.detach(subscriber_id)
