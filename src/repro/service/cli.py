"""The ``repro`` command — service-side entry points.

``repro serve`` starts the simulation-as-a-service HTTP front end::

    repro serve --port 8080 --max-live-sessions 256 \\
        --live-bytes-budget 64000000 --workers 4

    # or without installing the console script:
    PYTHONPATH=src python -m repro serve --port 8080

The server hosts an async :class:`~repro.service.manager.SessionManager`
(checkpoint-backed eviction, batched event delivery) and serves the
JSON-over-HTTP API documented in :mod:`repro.service.http`.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import os
from typing import List, Optional

from repro.obs import trace as _trace
from repro.service.batching import DEFAULT_MAX_EVENTS, DEFAULT_MAX_LATENCY


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LAACAD reproduction services (see also: laacad-experiments).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="Run the simulation-as-a-service HTTP server"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8723, help="TCP port (0 = ephemeral)")
    serve.add_argument(
        "--max-live-sessions",
        type=int,
        default=None,
        metavar="N",
        help="live (un-evicted) session cap; LRU idle sessions beyond it "
        "are checkpoint-evicted (default 128, env REPRO_SERVICE_MAX_LIVE)",
    )
    serve.add_argument(
        "--live-bytes-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="resident-byte budget for live sessions (default unlimited, "
        "env REPRO_SERVICE_LIVE_BYTES)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="bounded thread pool driving CPU-bound step() calls "
        "(default min(8, cores+2))",
    )
    serve.add_argument(
        "--flush-count",
        type=int,
        default=DEFAULT_MAX_EVENTS,
        metavar="N",
        help=f"events per subscriber batch before a flush (default {DEFAULT_MAX_EVENTS})",
    )
    serve.add_argument(
        "--flush-window",
        type=float,
        default=DEFAULT_MAX_LATENCY,
        metavar="SECONDS",
        help="max seconds a buffered event waits before its batch flushes "
        f"(default {DEFAULT_MAX_LATENCY})",
    )
    serve.add_argument(
        "--trace-out",
        default=os.environ.get(_trace.TRACE_ENV) or None,
        metavar="PATH",
        help="record trace spans and write them on shutdown: *.jsonl for "
        "span rows, anything else for Chrome trace-event JSON "
        f"(default: the {_trace.TRACE_ENV} environment variable)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log requests and evictions"
    )
    return parser


async def _serve(args: argparse.Namespace) -> int:
    from repro.service.http import ServiceServer
    from repro.service.manager import SessionManager

    manager = SessionManager(
        max_live_sessions=args.max_live_sessions,
        max_live_bytes=args.live_bytes_budget,
        max_workers=args.workers,
        batch_max_events=args.flush_count,
        batch_max_latency=args.flush_window,
    )
    # "" / "0" mean off; "1" collects without writing (the env knob's
    # collect-only form); anything else is the output path.
    trace_out = getattr(args, "trace_out", None)
    collector = None
    if trace_out not in (None, "", "0"):
        collector = _trace.start_tracing()
    server = ServiceServer(manager, host=args.host, port=args.port)
    await server.start()
    budget = (
        f"{manager.max_live_bytes} bytes"
        if manager.max_live_bytes is not None
        else "unlimited"
    )
    print(
        f"repro service listening on {server.base_url} "
        f"(max {manager.max_live_sessions} live sessions, "
        f"live-byte budget {budget}, {manager.max_workers} workers)"
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        pass
    finally:
        await server.stop()
        if collector is not None:
            _trace.stop_tracing()
            if trace_out != "1":
                collector.write(trace_out)
                print(f"trace written to {trace_out} ({len(collector)} spans)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.INFO if getattr(args, "verbose", False) else logging.WARNING
    )
    if args.command == "serve":
        try:
            return asyncio.run(_serve(args))
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            print("\nshutting down")
            return 0
    return 2  # pragma: no cover - argparse enforces valid commands


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
