"""Wire form of the per-round event stream.

Remote subscribers cannot receive live :class:`~repro.api.events.RoundEvent`
objects, so the service layer ships a JSON-compatible projection of
each event.  The projection is deliberately *scalar-first*: the stats
dataclass and the per-round flags always travel, while the O(N) vectors
(positions, displacements, centers) are opt-in per subscriber — a
thousand dashboards watching convergence curves should not each pull
every node position every round.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from repro.api.events import RoundEvent


def event_to_dict(event: RoundEvent, include_positions: bool = False) -> Dict[str, Any]:
    """Project a round event onto its JSON wire form.

    The scalar core (round index, full stats record, flags) is always
    present; ``include_positions`` adds the post-move positions and the
    per-node Chebyshev centers.  Dominating-region geometry never
    travels — it is live objects, meaningful only in-process.
    """
    payload: Dict[str, Any] = {
        "round_index": int(event.round_index),
        "stats": dataclasses.asdict(event.stats),
        "moved": bool(event.moved),
        "converged": bool(event.converged),
        "done": bool(event.done),
    }
    if include_positions:
        payload["positions"] = [[float(x), float(y)] for x, y in event.positions]
        payload["centers"] = {
            str(node_id): [float(c[0]), float(c[1])]
            for node_id, c in event.centers.items()
        }
    return payload
