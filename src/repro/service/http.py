"""Stdlib-only JSON-over-HTTP front end for the session manager.

A deliberately small asyncio HTTP/1.1 server — no web framework, no new
dependencies — exposing the :class:`~repro.service.manager.SessionManager`
lifecycle.  One request per connection (``Connection: close``), JSON
bodies both ways; stdlib ``urllib.request`` is a complete client (see
``examples/service_quickstart.py``).

Endpoints (table mirrored in DESIGN.md, "The service layer"):

    ==========  =========================================  ==========================
    Method      Path                                       Meaning
    ==========  =========================================  ==========================
    GET         /stats                                     manager-wide hosting stats
    GET         /metrics                                   Prometheus text exposition
    GET         /sessions                                  list session infos
    POST        /sessions                                  create ``{"name"?, "scenario": {...}}``
    GET         /sessions/{name}                           one session's info
    DELETE      /sessions/{name}                           delete the session
    POST        /sessions/{name}/step                      ``{"rounds"?: 1}`` → events + info
    POST        /sessions/{name}/run                       ``{"until_round": R}`` run-to-round
    GET         /sessions/{name}/result                    (mid-run or final) result payload
    GET         /sessions/{name}/checkpoint                full checkpoint payload
    POST        /sessions/{name}/evict                     force checkpoint-eviction
    POST        /sessions/{name}/subscribers               attach batch subscriber
    GET         /sessions/{name}/subscribers/{id}/batch    long-poll next batch (?timeout=s)
    DELETE      /sessions/{name}/subscribers/{id}          unsubscribe
    ==========  =========================================  ==========================

Error mapping: unknown session/subscriber → 404; duplicate name or
stepping a completed session → 409; malformed request → 400.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.service.manager import (
    DuplicateSessionError,
    SessionCompletedError,
    SessionManager,
    UnknownSessionError,
)

logger = logging.getLogger(__name__)


class RawBody:
    """A non-JSON response payload: bytes plus their content type.

    Routes normally return JSON-able dicts; ``/metrics`` must serve the
    Prometheus text format instead, so it wraps the rendered exposition
    in one of these and the connection handler sends it verbatim.
    """

    __slots__ = ("data", "content_type")

    def __init__(self, data: bytes, content_type: str) -> None:
        self.data = data
        self.content_type = content_type

#: Longest body accepted (a scenario spec is tiny; this guards sockets).
MAX_BODY_BYTES = 4 * 1024 * 1024
#: Cap on the long-poll wait so a dead client cannot pin a connection.
MAX_LONGPOLL_SECONDS = 60.0


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class ServiceServer:
    """Asyncio HTTP server bound to one :class:`SessionManager`."""

    def __init__(self, manager: SessionManager, host: str = "127.0.0.1", port: int = 0):
        self.manager = manager
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._requests_total = manager.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by response status",
            labelnames=("status",),
        )
        self._request_seconds = manager.metrics.histogram(
            "repro_http_request_seconds",
            "HTTP request wall-clock latency in seconds",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        start = time.perf_counter()
        with _trace.span("http_request"):
            try:
                status, payload = await self._handle_request(reader)
            except _HttpError as exc:
                status, payload = exc.status, {"error": exc.message}
            except (asyncio.IncompleteReadError, ConnectionError):
                writer.close()
                return
            except Exception:  # noqa: BLE001 - the server must not die
                logger.exception("unhandled error serving a request")
                status, payload = 500, {"error": "internal server error"}
            _trace.annotate(status=status)
        self._requests_total.labels(status).inc()
        self._request_seconds.observe(time.perf_counter() - start)
        if isinstance(payload, RawBody):
            body = payload.data
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            writer.close()

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Union[Dict[str, Any], RawBody]]:
        request_line = (await reader.readline()).decode("ascii", "replace").strip()
        if not request_line:
            raise _HttpError(400, "empty request")
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("ascii", "replace")
            if line in ("\r\n", "\n", ""):
                break
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        raw = await reader.readexactly(length) if length else b""
        body: Dict[str, Any] = {}
        if raw:
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise _HttpError(400, f"invalid JSON body: {exc}")
            if not isinstance(body, dict):
                raise _HttpError(400, "JSON body must be an object")
        split = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        parts = [p for p in split.path.split("/") if p]
        _trace.annotate(method=method.upper(), path=split.path)
        try:
            return await self._route(method.upper(), parts, query, body)
        except UnknownSessionError as exc:
            raise _HttpError(404, f"unknown session or subscriber: {exc}")
        except DuplicateSessionError as exc:
            raise _HttpError(409, str(exc))
        except SessionCompletedError as exc:
            raise _HttpError(409, str(exc))
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, str(exc))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self,
        method: str,
        parts: List[str],
        query: Dict[str, str],
        body: Dict[str, Any],
    ) -> Tuple[int, Union[Dict[str, Any], RawBody]]:
        manager = self.manager
        if parts == ["stats"]:
            if method != "GET":
                raise _HttpError(405, "use GET /stats")
            return 200, manager.stats()
        if parts == ["metrics"]:
            if method != "GET":
                raise _HttpError(405, "use GET /metrics")
            # The manager's private registry first (its names win any
            # collision), then the process-wide engine/sweep series.
            text = _metrics.exposition(manager.metrics, _metrics.REGISTRY)
            return 200, RawBody(text.encode("utf-8"), _metrics.CONTENT_TYPE)
        if parts == ["sessions"]:
            if method == "GET":
                return 200, {"sessions": manager.list_sessions()}
            if method == "POST":
                scenario = body.get("scenario", {})
                if not isinstance(scenario, dict):
                    raise _HttpError(400, "'scenario' must be an object")
                info = await manager.create(body.get("name"), **scenario)
                return 201, info
            raise _HttpError(405, "use GET or POST on /sessions")
        if len(parts) >= 2 and parts[0] == "sessions":
            name = parts[1]
            rest = parts[2:]
            if not rest:
                if method == "GET":
                    return 200, manager.info(name)
                if method == "DELETE":
                    await manager.delete(name)
                    return 200, {"deleted": name}
                raise _HttpError(405, "use GET or DELETE on /sessions/{name}")
            if rest == ["step"] and method == "POST":
                rounds = int(body.get("rounds", 1))
                include = bool(body.get("include_events", True))
                return 200, await manager.step(name, rounds, include_events=include)
            if rest == ["run"] and method == "POST":
                if "until_round" not in body:
                    raise _HttpError(400, "'until_round' is required")
                include = bool(body.get("include_events", False))
                return 200, await manager.run_to_round(
                    name, int(body["until_round"]), include_events=include
                )
            if rest == ["result"] and method == "GET":
                return 200, await manager.result(name)
            if rest == ["checkpoint"] and method == "GET":
                return 200, await manager.checkpoint(name)
            if rest == ["evict"] and method == "POST":
                return 200, await manager.evict(name)
            if rest == ["subscribers"] and method == "POST":
                max_events = body.get("max_events")
                max_latency = body.get("max_latency")
                subscriber_id = await manager.subscribe(
                    name,
                    max_events=int(max_events) if max_events is not None else None,
                    max_latency=(
                        float(max_latency) if max_latency is not None else None
                    ),
                    include_positions=bool(body.get("include_positions", False)),
                )
                return 201, {"subscriber_id": subscriber_id, "session": name}
            if len(rest) == 3 and rest[0] == "subscribers" and rest[2] == "batch":
                if method != "GET":
                    raise _HttpError(405, "use GET for batch long-polls")
                timeout = min(
                    float(query.get("timeout", "10")), MAX_LONGPOLL_SECONDS
                )
                batch = await manager.next_batch(name, rest[1], timeout)
                if batch is None:
                    return 200, {"batch": None, "session": name}
                return 200, {"batch": batch, "session": name}
            if len(rest) == 2 and rest[0] == "subscribers" and method == "DELETE":
                await manager.unsubscribe(name, rest[1])
                return 200, {"unsubscribed": rest[1], "session": name}
        raise _HttpError(404, f"no route for {method} /{'/'.join(parts)}")


class ServiceThread:
    """A server + manager on a private event-loop thread.

    The convenience harness for synchronous callers — tests, the
    quickstart example and the CI smoke job drive the HTTP API with
    plain ``urllib`` while the service runs here.  Not used by
    ``repro serve`` (which owns the loop in the main thread).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **manager_kwargs: Any):
        self._host = host
        self._port = port
        self._manager_kwargs = manager_kwargs
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[ServiceServer] = None

    def __enter__(self) -> "ServiceThread":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        if not self._started.is_set():
            raise RuntimeError("service did not start within 30s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            manager = SessionManager(**self._manager_kwargs)
            self.server = ServiceServer(manager, host=self._host, port=self._port)
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            loop.close()

    @property
    def base_url(self) -> str:
        assert self.server is not None
        return self.server.base_url

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self._loop = None
        self._thread = None
