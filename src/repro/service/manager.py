"""The async multi-tenant session manager (simulation-as-a-service core).

One :class:`SessionManager` hosts thousands of named
:class:`~repro.api.Simulation` sessions on a single asyncio event loop:

* **Bounded compute.** CPU-bound ``step()`` calls run on a bounded
  thread pool (``max_workers``), so one heavy N=10k session queues
  behind the pool instead of starving the event loop — the loop stays
  free to accept requests, serve checkpoints and flush event batches.
* **Checkpoint-backed eviction.** Idle sessions are transparently
  serialized to their versioned :class:`~repro.api.SimulationCheckpoint`
  JSON blob and the live object dropped; the next request resurrects
  them via :meth:`Simulation.restore`, which is bitwise-identical by
  the PR 3 contract.  An idle session therefore costs ~the blob
  (:attr:`SimulationCheckpoint.nbytes`), not the live numpy state.
  Eviction is LRU by :attr:`Simulation.idle_since` and triggers on
  either a live-session cap or a live-byte budget.
* **Batched event delivery.** Subscribers receive coalesced round-event
  batches through :class:`~repro.service.batching.EventBatcher` instead
  of per-event callbacks; see that module for the flush-window
  semantics.

Every public coroutine must run on the manager's event loop (the HTTP
front end in :mod:`repro.service.http` does; tests drive the manager
under ``asyncio.run``).  Per-session :class:`asyncio.Lock`\\ s serialize
step/evict/resurrect per session while letting distinct sessions
proceed concurrently.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from repro.api.session import Simulation
from repro.obs.metrics import MetricsRegistry
from repro.service.batching import (
    DEFAULT_MAX_EVENTS,
    DEFAULT_MAX_LATENCY,
    DEFAULT_MAX_PENDING,
    EventBatcher,
    Subscriber,
)

#: Live-session resident-size estimator (bytes).  The eviction budget
#: needs a *ranking-stable* estimate that is cheap at create time; the
#: constants are calibrated against the tracemalloc measurements in
#: ``benchmarks/test_bench_service.py`` (a live idle session allocates
#: roughly an order of magnitude more than its checkpoint blob).
LIVE_SESSION_BASE_BYTES = 64 * 1024
LIVE_BYTES_PER_NODE = 2048

#: Environment knobs the ``repro serve`` CLI and tests share.
MAX_LIVE_SESSIONS_ENV = "REPRO_SERVICE_MAX_LIVE"
LIVE_BYTES_BUDGET_ENV = "REPRO_SERVICE_LIVE_BYTES"


class UnknownSessionError(KeyError):
    """No session with that name (maps to HTTP 404)."""


class DuplicateSessionError(ValueError):
    """A session with that name already exists (maps to HTTP 409)."""


class SessionCompletedError(RuntimeError):
    """The session is done; it cannot be stepped further (HTTP 409)."""


def estimate_live_nbytes(node_count: int) -> int:
    """Estimated resident cost of one live session (see module constants)."""
    return LIVE_SESSION_BASE_BYTES + LIVE_BYTES_PER_NODE * int(node_count)


class SessionRecord:
    """Bookkeeping for one hosted session: live object *or* evicted blob."""

    def __init__(self, name: str, simulation: Simulation, batcher: EventBatcher) -> None:
        self.name = name
        self.simulation: Optional[Simulation] = simulation
        self.blob: Optional[str] = None
        self.batcher = batcher
        self.lock = asyncio.Lock()
        self.created_at = time.monotonic()
        self.node_count = len(simulation.network.nodes)
        self.kind = simulation.deployer.kind
        self.rounds_executed = 0
        self.done = False
        self.evictions = 0
        self.resurrections = 0
        self.steps = 0
        self._evicted_idle_since = time.monotonic()

    @property
    def live(self) -> bool:
        return self.simulation is not None

    @property
    def idle_since(self) -> float:
        """Monotonic last-use timestamp, live or evicted."""
        if self.simulation is not None:
            return self.simulation.idle_since
        return self._evicted_idle_since

    @property
    def nbytes(self) -> int:
        """Resident cost: blob size when evicted, estimate when live."""
        if self.simulation is None:
            return len(self.blob.encode("utf-8")) if self.blob else 0
        return estimate_live_nbytes(self.node_count)

    def info(self) -> Dict[str, Any]:
        """JSON-compatible status row (the ``GET /sessions/{name}`` body)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "live": self.live,
            "done": self.done,
            "rounds_executed": self.rounds_executed,
            "node_count": self.node_count,
            "nbytes": self.nbytes,
            "evictions": self.evictions,
            "resurrections": self.resurrections,
            "steps": self.steps,
            "subscribers": self.batcher.subscriber_count,
            "idle_seconds": max(0.0, time.monotonic() - self.idle_since),
        }


class SessionManager:
    """Hosts many concurrent sessions with eviction and batched events."""

    def __init__(
        self,
        *,
        max_live_sessions: Optional[int] = None,
        max_live_bytes: Optional[int] = None,
        max_workers: Optional[int] = None,
        batch_max_events: int = DEFAULT_MAX_EVENTS,
        batch_max_latency: float = DEFAULT_MAX_LATENCY,
        max_pending_batches: int = DEFAULT_MAX_PENDING,
    ) -> None:
        if max_live_sessions is None:
            env = os.environ.get(MAX_LIVE_SESSIONS_ENV, "").strip()
            max_live_sessions = int(env) if env else 128
        if max_live_bytes is None:
            env = os.environ.get(LIVE_BYTES_BUDGET_ENV, "").strip()
            max_live_bytes = int(env) if env else None
        if max_live_sessions < 1:
            raise ValueError("max_live_sessions must be >= 1")
        self.max_live_sessions = max_live_sessions
        self.max_live_bytes = max_live_bytes
        self.batch_max_events = batch_max_events
        self.batch_max_latency = batch_max_latency
        self.max_pending_batches = max_pending_batches
        workers = max_workers if max_workers else min(8, (os.cpu_count() or 1) + 2)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service"
        )
        self.max_workers = workers
        self._sessions: Dict[str, SessionRecord] = {}
        self._reserved: set = set()
        self._names = itertools.count(1)
        self._closed = False
        # Per-manager registry: the single source of truth for hosting
        # counters (stats() and /metrics both read it), private so tests
        # running many managers in one process never share state.
        self.metrics = MetricsRegistry()
        self._created_total = self.metrics.counter(
            "repro_service_sessions_created_total", "Sessions created or adopted"
        )
        self._steps_total = self.metrics.counter(
            "repro_service_session_steps_total", "Simulation rounds executed"
        )
        self._evictions_total = self.metrics.counter(
            "repro_service_session_evictions_total",
            "Sessions checkpoint-evicted to free the live budget",
        )
        self._resurrections_total = self.metrics.counter(
            "repro_service_session_resurrections_total",
            "Evicted sessions restored from their checkpoint blob",
        )
        self._batcher_drops_total = self.metrics.counter(
            "repro_service_batcher_dropped_batches_total",
            "Event batches dropped on saturated subscriber queues",
        )
        self.metrics.gauge(
            "repro_service_live_sessions", "Sessions currently resident"
        ).set_function(
            lambda: sum(1 for r in self._sessions.values() if r.live)
        )
        self.metrics.gauge(
            "repro_service_evicted_sessions", "Sessions currently evicted"
        ).set_function(
            lambda: sum(1 for r in self._sessions.values() if not r.live)
        )
        self.metrics.gauge(
            "repro_service_live_bytes_estimate",
            "Estimated resident bytes of the live sessions",
        ).set_function(
            lambda: sum(r.nbytes for r in self._sessions.values() if r.live)
        )

    # ------------------------------------------------------------------
    # Counter-backed totals (the registry is the single source of truth)
    # ------------------------------------------------------------------
    @property
    def total_created(self) -> int:
        return int(self._created_total.value)

    @property
    def total_evictions(self) -> int:
        return int(self._evictions_total.value)

    @property
    def total_resurrections(self) -> int:
        return int(self._resurrections_total.value)

    @property
    def total_steps(self) -> int:
        return int(self._steps_total.value)

    @property
    def batcher_dropped_batches(self) -> int:
        return int(self._batcher_drops_total.value)

    # ------------------------------------------------------------------
    # Lookup / listing
    # ------------------------------------------------------------------
    def _record(self, name: str) -> SessionRecord:
        try:
            return self._sessions[name]
        except KeyError:
            raise UnknownSessionError(name) from None

    def info(self, name: str) -> Dict[str, Any]:
        return self._record(name).info()

    def list_sessions(self) -> List[Dict[str, Any]]:
        return [record.info() for record in self._sessions.values()]

    def stats(self) -> Dict[str, Any]:
        """Aggregate hosting stats (the ``GET /stats`` body)."""
        live = [r for r in self._sessions.values() if r.live]
        evicted = [r for r in self._sessions.values() if not r.live]
        return {
            "sessions": len(self._sessions),
            "live_sessions": len(live),
            "evicted_sessions": len(evicted),
            "live_bytes_estimate": sum(r.nbytes for r in live),
            "evicted_bytes": sum(r.nbytes for r in evicted),
            "max_live_sessions": self.max_live_sessions,
            "max_live_bytes": self.max_live_bytes,
            "max_workers": self.max_workers,
            "total_created": self.total_created,
            "total_evictions": self.total_evictions,
            "total_resurrections": self.total_resurrections,
            "total_steps": self.total_steps,
            "batcher_dropped_batches": self.batcher_dropped_batches,
        }

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    async def create(
        self, name: Optional[str] = None, /, **scenario_kwargs: Any
    ) -> Dict[str, Any]:
        """Create and register a session from ``Simulation`` kwargs.

        ``scenario_kwargs`` is anything the kwargs construction form of
        :class:`Simulation` accepts (``node_count``, ``k``, ``seed``,
        ``pipeline``, ...).  Construction runs on the worker pool — it
        builds networks and can be arbitrarily heavy.
        """
        self._require_open()
        if name is None:
            name = f"session-{next(self._names)}"
        if name in self._sessions or name in self._reserved:
            raise DuplicateSessionError(f"session {name!r} already exists")
        loop = asyncio.get_running_loop()
        # Reserve the name before awaiting so concurrent creates of the
        # same name cannot both pass the duplicate check.
        self._reserved.add(name)
        try:
            simulation = await loop.run_in_executor(
                self._pool, lambda: Simulation(**scenario_kwargs)
            )
        finally:
            self._reserved.discard(name)
        batcher = EventBatcher(
            name,
            max_events=self.batch_max_events,
            max_latency=self.batch_max_latency,
            max_pending=self.max_pending_batches,
            drop_counter=self._batcher_drops_total,
        )
        record = SessionRecord(name, simulation, batcher)
        self._sessions[name] = record
        self._created_total.inc()
        await self._maybe_evict(exclude=name)
        return record.info()

    async def adopt(self, name: str, simulation: Simulation) -> Dict[str, Any]:
        """Register an already-built session object (in-process callers)."""
        self._require_open()
        if name in self._sessions:
            raise DuplicateSessionError(f"session {name!r} already exists")
        batcher = EventBatcher(
            name,
            max_events=self.batch_max_events,
            max_latency=self.batch_max_latency,
            max_pending=self.max_pending_batches,
            drop_counter=self._batcher_drops_total,
        )
        record = SessionRecord(name, simulation, batcher)
        record.rounds_executed = simulation.state.rounds_executed
        record.done = simulation.done
        self._sessions[name] = record
        self._created_total.inc()
        await self._maybe_evict(exclude=name)
        return record.info()

    async def delete(self, name: str) -> None:
        """Drop a session: subscribers are closed, state is discarded."""
        record = self._record(name)
        async with record.lock:
            record.batcher.close()
            record.simulation = None
            record.blob = None
            self._sessions.pop(name, None)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    async def step(
        self, name: str, rounds: int = 1, include_events: bool = True
    ) -> Dict[str, Any]:
        """Execute up to ``rounds`` rounds (stops early when done).

        Returns the session info plus (optionally) the wire form of the
        events produced.  The compute runs on the worker pool; the
        events are published to the session's subscribers on the loop.
        """
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        record = self._record(name)
        async with record.lock:
            simulation = await self._ensure_live(record)
            if simulation.done:
                raise SessionCompletedError(
                    f"session {name!r} is complete after "
                    f"{record.rounds_executed} round(s)"
                )
            loop = asyncio.get_running_loop()

            def run_rounds() -> List[Any]:
                events = []
                for _ in range(rounds):
                    if simulation.done:
                        break
                    events.append(simulation.step())
                return events

            events = await loop.run_in_executor(self._pool, run_rounds)
            self._after_step(record, simulation, events)
        await self._maybe_evict(exclude=name)
        payload = {"session": record.info()}
        if include_events:
            from repro.service.events import event_to_dict

            payload["events"] = [event_to_dict(e) for e in events]
        return payload

    async def run_to_round(
        self, name: str, round_target: int, include_events: bool = False
    ) -> Dict[str, Any]:
        """Step until ``rounds_executed >= round_target`` (or done)."""
        if round_target < 0:
            raise ValueError("round_target must be >= 0")
        record = self._record(name)
        async with record.lock:
            simulation = await self._ensure_live(record)
            loop = asyncio.get_running_loop()

            def run_rounds() -> List[Any]:
                events = []
                while (
                    not simulation.done
                    and simulation.state.rounds_executed < round_target
                ):
                    events.append(simulation.step())
                return events

            events = await loop.run_in_executor(self._pool, run_rounds)
            self._after_step(record, simulation, events)
        await self._maybe_evict(exclude=name)
        payload = {"session": record.info()}
        if include_events:
            from repro.service.events import event_to_dict

            payload["events"] = [event_to_dict(e) for e in events]
        return payload

    def _after_step(
        self, record: SessionRecord, simulation: Simulation, events: List[Any]
    ) -> None:
        record.steps += len(events)
        if events:
            self._steps_total.inc(len(events))
        record.rounds_executed = simulation.state.rounds_executed
        record.done = simulation.done
        for event in events:
            record.batcher.publish(event)
        if record.done:
            # The stream is over: close out partial batches immediately
            # instead of making the last subscribers wait out the window.
            record.batcher.flush_all()

    async def result(self, name: str) -> Dict[str, Any]:
        """Finalized (or mid-run) result of the session, wire form."""
        record = self._record(name)
        async with record.lock:
            simulation = await self._ensure_live(record)
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                self._pool, lambda: simulation.result().to_dict()
            )
        await self._maybe_evict(exclude=name)
        return result

    async def checkpoint(self, name: str) -> Dict[str, Any]:
        """The session's full checkpoint payload.

        An evicted session answers straight from its blob — serving a
        checkpoint never forces a resurrection.
        """
        record = self._record(name)
        async with record.lock:
            if record.simulation is None:
                return json.loads(record.blob or "null")
            simulation = record.simulation
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._pool, lambda: simulation.checkpoint().payload
            )

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    async def subscribe(
        self,
        name: str,
        *,
        max_events: Optional[int] = None,
        max_latency: Optional[float] = None,
        include_positions: bool = False,
    ) -> str:
        """Attach a batch subscriber to a session; returns its id."""
        record = self._record(name)
        subscriber = record.batcher.attach(
            max_events=max_events,
            max_latency=max_latency,
            include_positions=include_positions,
        )
        return subscriber.id

    async def next_batch(
        self, name: str, subscriber_id: str, timeout: Optional[float] = None
    ) -> Optional[Dict[str, Any]]:
        """Long-poll the next coalesced batch for one subscriber."""
        record = self._record(name)
        try:
            subscriber: Subscriber = record.batcher.get(subscriber_id)
        except KeyError:
            raise UnknownSessionError(f"{name}/{subscriber_id}") from None
        return await subscriber.next_batch(timeout)

    async def unsubscribe(self, name: str, subscriber_id: str) -> None:
        record = self._record(name)
        try:
            record.batcher.detach(subscriber_id)
        except KeyError:
            raise UnknownSessionError(f"{name}/{subscriber_id}") from None

    # ------------------------------------------------------------------
    # Eviction / resurrection
    # ------------------------------------------------------------------
    async def _ensure_live(self, record: SessionRecord) -> Simulation:
        """Resurrect an evicted session (caller holds the record lock)."""
        if record.simulation is not None:
            record.simulation.touch()
            return record.simulation
        blob = record.blob
        if blob is None:  # pragma: no cover - delete() holds the lock
            raise UnknownSessionError(record.name)
        loop = asyncio.get_running_loop()
        simulation = await loop.run_in_executor(
            self._pool, lambda: Simulation.restore(json.loads(blob))
        )
        simulation.touch()
        record.simulation = simulation
        record.blob = None
        record.resurrections += 1
        self._resurrections_total.inc()
        return simulation

    def _over_budget(self, live: List[SessionRecord]) -> bool:
        if len(live) > self.max_live_sessions:
            return True
        if self.max_live_bytes is not None:
            return sum(r.nbytes for r in live) > self.max_live_bytes
        return False

    async def _maybe_evict(self, exclude: Optional[str] = None) -> int:
        """Evict LRU idle live sessions until back under budget.

        Sessions currently holding their lock (stepping/resurrecting)
        and the just-touched ``exclude`` session are skipped; when every
        candidate is busy the manager stays temporarily over budget
        rather than blocking — the next request re-checks.
        """
        evicted = 0
        while True:
            live = [r for r in self._sessions.values() if r.live]
            if not self._over_budget(live):
                return evicted
            # The just-touched session sorts last, so it is only evicted
            # when the budget cannot even hold one session — a hard byte
            # budget stays hard.
            candidates = sorted(
                (r for r in live if not r.lock.locked()),
                key=lambda r: (r.name == exclude, r.idle_since),
            )
            if not candidates:
                return evicted
            await self._evict(candidates[0])
            evicted += 1

    async def _evict(self, record: SessionRecord) -> None:
        """Serialize one session to its checkpoint blob and drop it."""
        async with record.lock:
            simulation = record.simulation
            if simulation is None:
                return
            loop = asyncio.get_running_loop()
            blob = await loop.run_in_executor(
                self._pool, lambda: simulation.checkpoint().to_json()
            )
            record.blob = blob
            record.simulation = None
            record._evicted_idle_since = time.monotonic()
            record.evictions += 1
            self._evictions_total.inc()

    async def evict(self, name: str) -> Dict[str, Any]:
        """Force-evict one session (testing / admin endpoint)."""
        record = self._record(name)
        await self._evict(record)
        return record.info()

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("the session manager is closed")

    async def close(self) -> None:
        """Close every subscriber and release the worker pool."""
        self._closed = True
        for record in list(self._sessions.values()):
            record.batcher.close()
        self._sessions.clear()
        self._pool.shutdown(wait=True)
