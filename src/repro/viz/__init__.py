"""Lightweight visualisation of deployments and Voronoi structures.

No plotting dependencies are available (or needed): the module renders
deployments, sensing disks, dominating regions and k-order Voronoi
partitions to standalone SVG files (viewable in any browser) and to
coarse ASCII maps (viewable in a terminal or a log file).  The experiment
CLI and the examples use these to produce figure-like artefacts for
Figures 1, 5 and 8.
"""

from repro.viz.svg import SvgCanvas, render_deployment_svg, render_partition_svg
from repro.viz.ascii_art import ascii_deployment

__all__ = [
    "SvgCanvas",
    "render_deployment_svg",
    "render_partition_svg",
    "ascii_deployment",
]
