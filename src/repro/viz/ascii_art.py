"""ASCII rendering of deployments for terminals and log files."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.geometry.primitives import Point
from repro.regions.region import Region


def ascii_deployment(
    region: Region,
    positions: Sequence[Point],
    width: int = 60,
    height: Optional[int] = None,
    node_char: str = "o",
    stacked_char: str = "O",
    obstacle_char: str = "#",
    outside_char: str = ".",
) -> str:
    """Render node positions over the region as a character grid.

    Free area is blank, obstacles and out-of-region cells are marked, and
    cells holding one node show ``node_char`` (``stacked_char`` when two
    or more nodes share a cell — the "even clustering" of k >= 2 shows up
    as capital letters).
    """
    if width < 4:
        raise ValueError("width must be at least 4 characters")
    xmin, ymin, xmax, ymax = region.bbox
    aspect = (ymax - ymin) / (xmax - xmin)
    if height is None:
        # Terminal cells are roughly twice as tall as they are wide.
        height = max(4, int(round(width * aspect * 0.5)))

    grid: List[List[str]] = []
    for row in range(height):
        y = ymax - (row + 0.5) * (ymax - ymin) / height
        line: List[str] = []
        for col in range(width):
            x = xmin + (col + 0.5) * (xmax - xmin) / width
            if region.contains((x, y)):
                line.append(" ")
            elif any(
                True
                for hole in region.holes
                if _point_in(hole, (x, y))
            ):
                line.append(obstacle_char)
            else:
                line.append(outside_char)
        grid.append(line)

    for x, y in positions:
        col = min(width - 1, max(0, int((x - xmin) / (xmax - xmin) * width)))
        row = min(height - 1, max(0, int((ymax - y) / (ymax - ymin) * height)))
        current = grid[row][col]
        grid[row][col] = stacked_char if current == node_char else node_char

    border = "+" + "-" * width + "+"
    return "\n".join([border] + ["|" + "".join(row) + "|" for row in grid] + [border])


def _point_in(polygon: Sequence[Point], point: Point) -> bool:
    from repro.geometry.polygon import point_in_polygon

    return point_in_polygon(point, polygon, include_boundary=False)
