"""SVG rendering of deployments, sensing disks and Voronoi partitions.

The renderer is deliberately dependency-free: it writes plain SVG 1.1
markup.  World coordinates (the region's bounding box) are mapped to a
fixed-size canvas with a small margin; the y axis is flipped so that the
rendered figure matches the mathematical orientation used everywhere else
in the package.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.geometry.primitives import Point
from repro.regions.region import Region

#: Default qualitative colour cycle (distinct, print-friendly).
PALETTE = (
    "#1f77b4",
    "#ff7f0e",
    "#2ca02c",
    "#d62728",
    "#9467bd",
    "#8c564b",
    "#e377c2",
    "#7f7f7f",
    "#bcbd22",
    "#17becf",
)


@dataclasses.dataclass
class SvgCanvas:
    """An SVG document with a world-to-pixel transform.

    Args:
        bbox: world bounding box ``(xmin, ymin, xmax, ymax)``.
        width: canvas width in pixels (height follows the aspect ratio).
        margin: margin in pixels around the drawing.
    """

    bbox: Tuple[float, float, float, float]
    width: int = 640
    margin: int = 16

    def __post_init__(self) -> None:
        xmin, ymin, xmax, ymax = self.bbox
        if xmax <= xmin or ymax <= ymin:
            raise ValueError("degenerate bounding box")
        if self.width <= 2 * self.margin:
            raise ValueError("canvas width must exceed twice the margin")
        self._scale = (self.width - 2 * self.margin) / (xmax - xmin)
        self.height = int(round((ymax - ymin) * self._scale)) + 2 * self.margin
        self._elements: List[str] = []

    # ------------------------------------------------------------------
    def to_pixel(self, point: Point) -> Tuple[float, float]:
        """Map a world point to pixel coordinates (y axis flipped)."""
        xmin, ymin, _, ymax = self.bbox
        px = self.margin + (point[0] - xmin) * self._scale
        py = self.margin + (ymax - point[1]) * self._scale
        return (px, py)

    def scale_length(self, length: float) -> float:
        """Map a world length to pixels."""
        return length * self._scale

    # ------------------------------------------------------------------
    def add_polygon(
        self,
        polygon: Sequence[Point],
        fill: str = "none",
        stroke: str = "#333333",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        """Draw a closed polygon."""
        if len(polygon) < 3:
            return
        pts = " ".join(f"{x:.2f},{y:.2f}" for x, y in (self.to_pixel(p) for p in polygon))
        self._elements.append(
            f'<polygon points="{pts}" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{stroke_width}" fill-opacity="{opacity}" />'
        )

    def add_circle(
        self,
        center: Point,
        radius: float,
        fill: str = "none",
        stroke: str = "#1f77b4",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        """Draw a circle given in world coordinates."""
        cx, cy = self.to_pixel(center)
        self._elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{self.scale_length(radius):.2f}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="{stroke_width}" '
            f'fill-opacity="{opacity}" />'
        )

    def add_point(self, point: Point, radius_px: float = 3.0, fill: str = "#d62728") -> None:
        """Draw a node marker (radius given in pixels, not world units)."""
        cx, cy = self.to_pixel(point)
        self._elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{radius_px:.2f}" fill="{fill}" />'
        )

    def add_text(self, point: Point, text: str, size_px: int = 12, fill: str = "#000000") -> None:
        """Draw a text label anchored at a world point."""
        cx, cy = self.to_pixel(point)
        self._elements.append(
            f'<text x="{cx:.2f}" y="{cy:.2f}" font-size="{size_px}" '
            f'font-family="sans-serif" fill="{fill}">{_escape(text)}</text>'
        )

    # ------------------------------------------------------------------
    def to_svg(self) -> str:
        """Serialise the document."""
        header = (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">'
        )
        background = f'<rect width="{self.width}" height="{self.height}" fill="#ffffff" />'
        return "\n".join([header, background, *self._elements, "</svg>"])

    def save(self, path: Path | str) -> Path:
        """Write the SVG document to a file; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_svg())
        return path


def _escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _draw_region(canvas: SvgCanvas, region: Region) -> None:
    canvas.add_polygon(region.outer, fill="#f7f7f7", stroke="#000000", stroke_width=1.5)
    for hole in region.holes:
        canvas.add_polygon(hole, fill="#bbbbbb", stroke="#000000", stroke_width=1.0, opacity=1.0)


def render_deployment_svg(
    region: Region,
    positions: Sequence[Point],
    sensing_ranges: Optional[Sequence[float]] = None,
    path: Optional[Path | str] = None,
    width: int = 640,
    title: Optional[str] = None,
) -> str:
    """Render a deployment (nodes plus optional sensing disks) as SVG.

    This is the Figure 5 / Figure 8 style of plot: the target area with
    its obstacles, translucent sensing disks and node markers.

    Args:
        region: the target area.
        positions: node positions.
        sensing_ranges: per-node sensing ranges (omit to draw nodes only).
        path: when given, the SVG is also written to this file.
        width: canvas width in pixels.
        title: optional caption drawn in the top-left corner.

    Returns:
        The SVG document as a string.
    """
    if sensing_ranges is not None and len(sensing_ranges) != len(positions):
        raise ValueError("sensing_ranges must match positions in length")
    canvas = SvgCanvas(region.bbox, width=width)
    _draw_region(canvas, region)
    if sensing_ranges is not None:
        for pos, r in zip(positions, sensing_ranges):
            if r > 0:
                canvas.add_circle(pos, r, fill="#1f77b4", stroke="#1f77b4", opacity=0.12)
    for pos in positions:
        canvas.add_point(pos, radius_px=3.0)
    if title:
        xmin, _, _, ymax = region.bbox
        canvas.add_text((xmin, ymax), title, size_px=14)
    svg = canvas.to_svg()
    if path is not None:
        canvas.save(path)
    return svg


def render_partition_svg(
    region: Region,
    cells: Iterable[Sequence[Sequence[Point]]],
    sites: Optional[Sequence[Point]] = None,
    path: Optional[Path | str] = None,
    width: int = 640,
) -> str:
    """Render a (k-order) Voronoi partition as SVG (the Figure 1 style).

    Args:
        region: the target area (drawn as the backdrop).
        cells: an iterable of cells, where each cell is a list of convex
            polygon pieces (the representation used throughout the
            Voronoi engine).
        sites: optional generator positions to overlay.
        path: when given, the SVG is also written to this file.
        width: canvas width in pixels.
    """
    canvas = SvgCanvas(region.bbox, width=width)
    _draw_region(canvas, region)
    for index, pieces in enumerate(cells):
        colour = PALETTE[index % len(PALETTE)]
        for piece in pieces:
            canvas.add_polygon(piece, fill=colour, stroke="#333333", stroke_width=0.6, opacity=0.35)
    if sites:
        for site in sites:
            canvas.add_point(site, radius_px=2.5, fill="#000000")
    svg = canvas.to_svg()
    if path is not None:
        canvas.save(path)
    return svg
