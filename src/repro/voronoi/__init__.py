"""Voronoi engine: ordinary (1-order) and high-order Voronoi computations.

The central object for LAACAD is the *dominating region* ``V^k_i`` of a
site: the set of points for which the site is among the ``k`` nearest
(Proposition 1 of the paper).  Two independent implementations are
provided:

* :mod:`repro.voronoi.dominating` — an exact budgeted bisector-clipping
  construction that represents each dominating region as a union of
  convex polygons, and
* :mod:`repro.voronoi.raster` — a brute-force raster oracle used for
  cross-validation in the test suite.

:mod:`repro.voronoi.korder` additionally assembles the full k-order
Voronoi diagram (the cells of Figure 1), and :mod:`repro.voronoi.ordinary`
offers the classical 1-order cells as a convenience/baseline.
"""

from repro.voronoi.dominating import DominatingRegion, compute_dominating_region
from repro.voronoi.ordinary import voronoi_cell
from repro.voronoi.korder import KOrderVoronoiDiagram
from repro.voronoi.raster import RasterOracle

__all__ = [
    "DominatingRegion",
    "compute_dominating_region",
    "voronoi_cell",
    "KOrderVoronoiDiagram",
    "RasterOracle",
]
