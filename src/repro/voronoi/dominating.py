"""Exact computation of k-order dominating regions.

The dominating region of site ``i`` (Eq. 7 of the paper) is::

    V^k_i = { v in A : |{ j != i : ||u_j - v|| < ||u_i - v|| }| <= k - 1 }

i.e. the set of points where at most ``k - 1`` other sites are strictly
closer.  We compute it by a *budgeted clipping sweep*: starting from the
convex pieces of the target area, every competitor's perpendicular
bisector splits each piece into a "closer to i" part (violation count
unchanged) and a "closer to j" part (violation count + 1); parts whose
violation count would exceed ``k - 1`` are discarded.  The surviving
pieces form exactly the dominating region.

The number of live pieces is bounded by the complexity of the <=k level
of the bisector arrangement, which is small in practice; competitors are
processed in order of increasing distance so that far bisectors rarely
split anything.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence, Tuple

from repro.geometry.bisector import perpendicular_bisector_halfplane
from repro.geometry.chebyshev import chebyshev_center_of_pieces
from repro.geometry.clipping import clip_polygon_halfplane
from repro.geometry.polygon import point_in_polygon, polygon_area
from repro.geometry.primitives import EPS, Point, distance, distance_sq
from repro.regions.region import Region

Polygon = List[Point]

#: Clipping slivers below this area are discarded.
_MIN_PIECE_AREA = 1e-14


@dataclasses.dataclass
class DominatingRegion:
    """The dominating region of one site, as a union of convex polygons.

    Attributes:
        site: the site (node position) the region belongs to.
        k: the coverage order the region was computed for.
        pieces: convex polygons whose union is the dominating region.
        competitors_used: how many competitor sites actually took part in
            the clipping (after pre-filtering); useful to reason about
            the locality of the computation.
        search_radius: the pre-filter radius that was sufficient for an
            exact result (``math.inf`` when no pre-filtering was applied).
    """

    site: Point
    k: int
    pieces: List[Polygon]
    competitors_used: int = 0
    search_radius: float = math.inf

    @property
    def is_empty(self) -> bool:
        """True when no area is dominated by the site."""
        return not self.pieces

    @property
    def area(self) -> float:
        """Total area of the dominating region."""
        return sum(polygon_area(p) for p in self.pieces)

    def vertices(self) -> List[Point]:
        """All polygon vertices of all pieces (with duplicates)."""
        verts: List[Point] = []
        for piece in self.pieces:
            verts.extend(piece)
        return verts

    def circumradius(self, from_point: Optional[Point] = None) -> float:
        """Sensing range needed from ``from_point`` (default: the site) to cover the region."""
        origin = from_point if from_point is not None else self.site
        ox, oy = origin
        hypot = math.hypot
        best = 0.0
        for piece in self.pieces:
            for v in piece:
                d = hypot(v[0] - ox, v[1] - oy)
                if d > best:
                    best = d
        return best

    def chebyshev_center(self) -> Tuple[Point, float]:
        """Chebyshev center and minimal covering radius of the region.

        For an empty region the site itself with radius 0 is returned,
        which makes the LAACAD update a no-op for that node.
        """
        if self.is_empty:
            return self.site, 0.0
        return chebyshev_center_of_pieces(self.pieces)

    def contains(self, point: Point, eps: float = 1e-9) -> bool:
        """True when ``point`` lies in (or on the boundary of) the region."""
        return any(point_in_polygon(point, piece, include_boundary=True, eps=eps) for piece in self.pieces)

    def max_distance_from_site(self) -> float:
        """Alias for :meth:`circumradius` measured from the site (paper's ``R-hat``)."""
        return self.circumradius(self.site)


def dominating_pieces(
    site: Point,
    competitors: Sequence[Point],
    area_pieces: Sequence[Polygon],
    k: int,
    eps: float = EPS,
) -> List[Polygon]:
    """Budgeted clipping sweep over a fixed competitor set.

    Args:
        site: the site whose region is computed.
        competitors: positions of the other sites to consider.
        area_pieces: convex decomposition of the target area.
        k: coverage order (>= 1); up to ``k - 1`` competitors may be
            strictly closer.
        eps: geometric tolerance.

    Returns:
        Convex polygons whose union is the dominating region of ``site``
        with respect to exactly the given competitors.
    """
    if k < 1:
        raise ValueError("coverage order k must be >= 1")
    budget = k - 1
    # (polygon, violations) pairs
    state: List[Tuple[Polygon, int]] = [
        (list(piece), 0) for piece in area_pieces if len(piece) >= 3
    ]
    ordered = sorted(competitors, key=lambda q: distance_sq(site, q))
    for comp in ordered:
        if not state:
            break
        halfplane = perpendicular_bisector_halfplane(site, comp)
        if halfplane is None:
            # Co-located competitor: never *strictly* closer, no effect.
            continue
        new_state: List[Tuple[Polygon, int]] = []
        for poly, violations in state:
            values = [halfplane.value(v) for v in poly]
            if all(v <= eps for v in values):
                # Entire piece is at least as close to the site.
                new_state.append((poly, violations))
                continue
            if all(v >= -eps for v in values):
                # Entire piece is closer to the competitor.
                if violations + 1 <= budget:
                    new_state.append((poly, violations + 1))
                continue
            closer = clip_polygon_halfplane(poly, halfplane, eps)
            if len(closer) >= 3 and polygon_area(closer) > _MIN_PIECE_AREA:
                new_state.append((closer, violations))
            if violations + 1 <= budget:
                farther = clip_polygon_halfplane(poly, halfplane.flipped(), eps)
                if len(farther) >= 3 and polygon_area(farther) > _MIN_PIECE_AREA:
                    new_state.append((farther, violations + 1))
        state = new_state
    return [poly for poly, _ in state]


def initial_prefilter_radius(
    sorted_distances: Sequence[float], k: int, diameter: float, eps: float = EPS
) -> float:
    """Starting search radius ``rho`` of the Lemma-1 competitor pre-filter.

    ``sorted_distances`` are the distances from the site to every
    competitor in ascending order.  The radius is large enough to see
    roughly the ``k`` nearest competitors while never collapsing below a
    small fraction of the area diameter.  Shared by the scalar
    :func:`compute_dominating_region` path and the batched round engine
    so both backends walk the exact same radius schedule.
    """
    idx = min(k, len(sorted_distances)) - 1
    return max(2.0 * sorted_distances[idx], diameter * 0.05, eps * 10)


def compute_dominating_region(
    site: Point,
    others: Sequence[Point],
    region: Region,
    k: int,
    prefilter: bool = True,
    initial_radius: Optional[float] = None,
    eps: float = EPS,
) -> DominatingRegion:
    """Dominating region of ``site`` against all ``others``, clipped to ``region``.

    When ``prefilter`` is enabled the computation mirrors the locality
    argument of Lemma 1: only competitors within a search radius ``rho``
    are considered, and ``rho`` is doubled until the resulting region is
    contained in the disk of radius ``rho / 2`` around the site (at which
    point farther competitors provably cannot change the result).

    Args:
        site: the site position.
        others: all other site positions (the site itself must not be in
            this list; co-located duplicates of other sites are fine).
        region: the target area ``A``.
        k: coverage order.
        prefilter: enable the expanding-radius competitor pre-filter.
        initial_radius: starting search radius; defaults to twice the
            distance of the ``k``-th nearest competitor.
        eps: geometric tolerance.
    """
    if k < 1:
        raise ValueError("coverage order k must be >= 1")
    area_pieces = region.convex_pieces()
    others = list(others)

    if not others or not prefilter:
        pieces = dominating_pieces(site, others, area_pieces, k, eps)
        return DominatingRegion(
            site=site,
            k=k,
            pieces=pieces,
            competitors_used=len(others),
            search_radius=math.inf,
        )

    distances = sorted(distance(site, q) for q in others)
    max_needed = region.diameter * 2.0 + 1.0
    if initial_radius is not None:
        rho = max(initial_radius, eps)
    else:
        # Enough to see roughly the k nearest competitors at the start.
        rho = initial_prefilter_radius(distances, k, region.diameter, eps)

    while True:
        competitors = [q for q in others if distance(site, q) < rho]
        pieces = dominating_pieces(site, competitors, area_pieces, k, eps)
        radius_used = max(
            (distance(site, v) for piece in pieces for v in piece), default=0.0
        )
        if radius_used <= rho / 2.0 + eps:
            return DominatingRegion(
                site=site,
                k=k,
                pieces=pieces,
                competitors_used=len(competitors),
                search_radius=rho,
            )
        if rho >= max_needed:
            # The whole network is already included; the result is exact.
            return DominatingRegion(
                site=site,
                k=k,
                pieces=pieces,
                competitors_used=len(competitors),
                search_radius=rho,
            )
        rho *= 2.0
