"""Assembly of the full k-order Voronoi diagram (Figure 1 of the paper).

A k-order Voronoi cell is associated with a *set* of k generators: it is
the locus of points whose k nearest sites are exactly that set.  The
number of non-empty cells is O(k (N - k)).  We enumerate candidate
generator sets by sampling the area on a grid and reading off the k
nearest sites at every sample (the raster oracle), then build each
candidate cell exactly by half-plane clipping:

    cell(T) = A  ∩  ⋂_{a ∈ T, b ∉ T}  H_ab

where ``H_ab`` is the half-plane of points at least as close to ``a`` as
to ``b``.  Cells missed by the sampling are necessarily smaller than the
grid spacing; the test-suite checks that the recovered cells tile the
target area up to a small relative error.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.geometry.bisector import perpendicular_bisector_halfplane
from repro.geometry.clipping import clip_polygon_halfplane
from repro.geometry.polygon import polygon_area
from repro.geometry.primitives import Point
from repro.regions.region import Region
from repro.voronoi.dominating import DominatingRegion, compute_dominating_region
from repro.voronoi.raster import RasterOracle

Polygon = List[Point]
GeneratorSet = FrozenSet[int]


class KOrderVoronoiDiagram:
    """The k-order Voronoi diagram of a set of sites within a region."""

    def __init__(
        self,
        sites: Sequence[Point],
        region: Region,
        k: int,
        seed_resolution: int = 60,
    ) -> None:
        if k < 1:
            raise ValueError("coverage order k must be >= 1")
        if len(sites) < k:
            raise ValueError("the diagram needs at least k sites")
        self.sites: List[Point] = [(float(x), float(y)) for x, y in sites]
        self.region = region
        self.k = k
        self.seed_resolution = seed_resolution
        self._cells: Optional[Dict[GeneratorSet, List[Polygon]]] = None

    # ------------------------------------------------------------------
    # Cell construction
    # ------------------------------------------------------------------
    def _candidate_sets(self) -> List[GeneratorSet]:
        oracle = RasterOracle(self.sites, self.region, resolution=self.seed_resolution)
        return sorted(set(oracle.k_nearest_sets(self.k)), key=sorted)

    def _build_cell(self, generators: GeneratorSet) -> List[Polygon]:
        inside = sorted(generators)
        outside = [i for i in range(len(self.sites)) if i not in generators]
        pieces: List[Polygon] = []
        for area_piece in self.region.convex_pieces():
            poly = list(area_piece)
            for a in inside:
                if len(poly) < 3:
                    break
                for b in outside:
                    if len(poly) < 3:
                        break
                    hp = perpendicular_bisector_halfplane(self.sites[a], self.sites[b])
                    if hp is None:
                        continue
                    poly = clip_polygon_halfplane(poly, hp)
            if len(poly) >= 3 and polygon_area(poly) > 1e-12:
                pieces.append(poly)
        return pieces

    def cells(self) -> Dict[GeneratorSet, List[Polygon]]:
        """All non-empty cells, keyed by their generator set (cached)."""
        if self._cells is None:
            cells: Dict[GeneratorSet, List[Polygon]] = {}
            for generators in self._candidate_sets():
                pieces = self._build_cell(generators)
                if pieces:
                    cells[generators] = pieces
            self._cells = cells
        return self._cells

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def total_cell_area(self) -> float:
        """Sum of all cell areas (should tile the region's free area)."""
        return sum(
            polygon_area(piece) for pieces in self.cells().values() for piece in pieces
        )

    def num_cells(self) -> int:
        """Number of non-empty cells recovered."""
        return len(self.cells())

    def dominating_region_from_cells(self, site_index: int) -> List[Polygon]:
        """Union (as a piece list) of all cells having ``site_index`` as a generator."""
        if not 0 <= site_index < len(self.sites):
            raise IndexError("site index out of range")
        pieces: List[Polygon] = []
        for generators, cell_pieces in self.cells().items():
            if site_index in generators:
                pieces.extend(cell_pieces)
        return pieces

    def dominating_region(self, site_index: int) -> DominatingRegion:
        """Dominating region of one site computed by the exact clipping engine."""
        if not 0 <= site_index < len(self.sites):
            raise IndexError("site index out of range")
        others = [s for j, s in enumerate(self.sites) if j != site_index]
        return compute_dominating_region(
            self.sites[site_index], others, self.region, self.k
        )

    def cell_count_bound(self) -> int:
        """The O(k(N-k)) upper bound on the number of cells quoted by the paper."""
        n = len(self.sites)
        return max(1, 2 * self.k * (n - self.k))
