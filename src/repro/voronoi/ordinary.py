"""Classical (1-order) Voronoi cells.

Only needed as a baseline and for the ``k = 1`` sanity checks: the
1-order dominating region of a site is exactly its ordinary Voronoi cell,
so this module computes the cell directly by half-plane clipping and the
tests assert the equivalence with the budgeted sweep of
:mod:`repro.voronoi.dominating`.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.geometry.bisector import perpendicular_bisector_halfplane
from repro.geometry.clipping import clip_polygon_halfplane
from repro.geometry.polygon import polygon_area
from repro.geometry.primitives import Point
from repro.regions.region import Region

Polygon = List[Point]


def voronoi_cell(
    site: Point, others: Sequence[Point], region: Region
) -> List[Polygon]:
    """Ordinary Voronoi cell of ``site`` clipped to the region's free area.

    Returns a list of convex pieces (one per convex piece of the region
    that the cell intersects).
    """
    pieces: List[Polygon] = []
    for area_piece in region.convex_pieces():
        cell = list(area_piece)
        for other in others:
            if len(cell) < 3:
                break
            halfplane = perpendicular_bisector_halfplane(site, other)
            if halfplane is None:
                continue
            cell = clip_polygon_halfplane(cell, halfplane)
        if len(cell) >= 3 and polygon_area(cell) > 1e-14:
            pieces.append(cell)
    return pieces


def voronoi_partition(
    sites: Sequence[Point], region: Region
) -> List[List[Polygon]]:
    """Ordinary Voronoi cells for all sites (index-aligned with ``sites``)."""
    cells: List[List[Polygon]] = []
    for i, site in enumerate(sites):
        others = [s for j, s in enumerate(sites) if j != i]
        cells.append(voronoi_cell(site, others, region))
    return cells
