"""Brute-force raster oracle for k-order Voronoi queries.

For every sample point of a grid over the target area the oracle knows
the distance to every site.  This gives an independent, trivially
correct (up to sampling) implementation of:

* "how many sites are strictly closer than site i at point v" (the
  quantity of Proposition 1),
* membership of v in the dominating region of site i,
* the distance to the k-th nearest site (which determines whether v is
  k-covered by ranges of a given size).

The exact clipping engine (:mod:`repro.voronoi.dominating`) is validated
against this oracle in the test suite.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.engine.kernels import cross_distances
from repro.geometry.primitives import Point
from repro.regions.grid import GridSampler
from repro.regions.region import Region

#: Row-block size for the sample-to-site distance matrix; bounds the
#: peak memory of the oracle construction for dense grids.
_DISTANCE_CHUNK = 8192


class RasterOracle:
    """Dense-sampling oracle for high-order Voronoi membership queries."""

    def __init__(
        self,
        sites: Sequence[Point],
        region: Region,
        resolution: int = 60,
        samples: Optional[np.ndarray] = None,
    ) -> None:
        if not sites:
            raise ValueError("the raster oracle requires at least one site")
        self.region = region
        self.sites = np.asarray(sites, dtype=float)
        if samples is not None:
            self.samples = np.asarray(samples, dtype=float)
        else:
            self.samples = GridSampler(region, resolution).points
        # Pairwise distances: (num_samples, num_sites), via the shared
        # chunked kernel (identical arithmetic to the dense broadcast).
        self.distances = cross_distances(
            self.samples, self.sites, chunk_size=_DISTANCE_CHUNK
        )

    @property
    def num_samples(self) -> int:
        return int(self.samples.shape[0])

    @property
    def num_sites(self) -> int:
        return int(self.sites.shape[0])

    def closer_counts(self, site_index: int, strict_margin: float = 1e-12) -> np.ndarray:
        """For every sample, the number of *other* sites strictly closer than ``site_index``."""
        if not 0 <= site_index < self.num_sites:
            raise IndexError("site index out of range")
        own = self.distances[:, site_index][:, None]
        strictly_closer = self.distances < (own - strict_margin)
        counts = strictly_closer.sum(axis=1)
        return counts

    def dominating_mask(self, site_index: int, k: int) -> np.ndarray:
        """Boolean mask over samples: is the sample in site ``i``'s k-order dominating region."""
        if k < 1:
            raise ValueError("coverage order k must be >= 1")
        return self.closer_counts(site_index) <= k - 1

    def dominating_area(self, site_index: int, k: int) -> float:
        """Approximate area of the dominating region (sample fraction times region area)."""
        mask = self.dominating_mask(site_index, k)
        return float(mask.mean()) * self.region.area

    def kth_nearest_distance(self, k: int) -> np.ndarray:
        """Distance from every sample to its k-th nearest site."""
        if not 1 <= k <= self.num_sites:
            raise ValueError("k must be between 1 and the number of sites")
        part = np.partition(self.distances, k - 1, axis=1)
        return part[:, k - 1]

    def k_nearest_sets(self, k: int) -> List[frozenset]:
        """For every sample, the set of indices of its k nearest sites."""
        if not 1 <= k <= self.num_sites:
            raise ValueError("k must be between 1 and the number of sites")
        order = np.argsort(self.distances, axis=1)[:, :k]
        return [frozenset(int(idx) for idx in row) for row in order]

    def coverage_counts(self, ranges: Sequence[float]) -> np.ndarray:
        """Number of sites covering each sample given per-site sensing ranges."""
        ranges_arr = np.asarray(ranges, dtype=float)
        if ranges_arr.shape[0] != self.num_sites:
            raise ValueError("one sensing range per site is required")
        covered = self.distances <= ranges_arr[None, :] + 1e-12
        return covered.sum(axis=1)

    def is_k_covered(self, ranges: Sequence[float], k: int) -> bool:
        """True when every sample point is covered by at least ``k`` sites."""
        return bool(np.all(self.coverage_counts(ranges) >= k))
