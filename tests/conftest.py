"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LaacadConfig
from repro.network.network import SensorNetwork
from repro.regions.shapes import (
    figure8_region_one,
    figure8_region_two,
    l_shaped_region,
    unit_square,
)


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def square():
    """The canonical unit-square target area."""
    return unit_square()


@pytest.fixture
def l_region():
    """A non-convex (L-shaped) target area."""
    return l_shaped_region()


@pytest.fixture
def holed_region():
    """A unit square with one rectangular obstacle."""
    return figure8_region_one()


@pytest.fixture
def complex_region():
    """An L-shaped area with two obstacles (the harder Figure 8 region)."""
    return figure8_region_two()


@pytest.fixture
def random_sites(square, rng):
    """Twenty random sites in the unit square."""
    return square.random_points(20, rng=rng)


@pytest.fixture
def small_network(square, rng):
    """A small random network used across integration tests."""
    return SensorNetwork.from_random(square, 18, comm_range=0.3, rng=rng)


@pytest.fixture
def corner_network(square):
    """A corner-clustered network (the Figure 5 initial condition)."""
    return SensorNetwork.from_corner_cluster(
        square, 20, cluster_fraction=0.2, comm_range=0.3, rng=np.random.default_rng(3)
    )


@pytest.fixture
def fast_config():
    """A LAACAD configuration small enough for unit tests."""
    return LaacadConfig(k=2, alpha=1.0, epsilon=2e-3, max_rounds=60, seed=0)
