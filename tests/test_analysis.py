"""Unit tests for the analysis package (coverage, energy, fairness, connectivity, traces)."""

import math

import numpy as np
import pytest

from repro.analysis.connectivity import build_graph, connectivity_report
from repro.analysis.coverage import (
    coverage_counts,
    coverage_fraction,
    evaluate_coverage,
    is_k_covered,
)
from repro.analysis.energy import energy_report
from repro.analysis.fairness import jain_index, min_max_ratio, range_spread
from repro.analysis.traces import is_monotone_nonincreasing, relative_gap, rounds_to_threshold
from repro.regions.grid import GridSampler
from repro.regions.shapes import unit_square


class TestCoverageCounts:
    def test_counts_shape_and_values(self, square):
        sampler = GridSampler(square, 11)
        counts = coverage_counts([(0.5, 0.5)], [1.0], sampler.points)
        assert counts.shape == (121,)
        assert np.all(counts == 1)  # radius 1 covers the whole unit square from the center

    def test_zero_range_covers_nothing(self, square):
        sampler = GridSampler(square, 11)
        counts = coverage_counts([(0.5, 0.5)], [0.0], sampler.points)
        assert counts.sum() <= 1  # only the exact center sample, if present

    def test_length_mismatch_rejected(self, square):
        sampler = GridSampler(square, 5)
        with pytest.raises(ValueError):
            coverage_counts([(0.5, 0.5)], [0.1, 0.2], sampler.points)

    def test_empty_samples(self):
        counts = coverage_counts([(0.5, 0.5)], [0.1], np.zeros((0, 2)))
        assert counts.size == 0


class TestCoverageEvaluation:
    def test_full_coverage_with_large_ranges(self, square):
        positions = [(0.25, 0.25), (0.75, 0.75)]
        ranges = [1.5, 1.5]
        assert is_k_covered(positions, ranges, square, 2, resolution=25)
        report = evaluate_coverage(positions, ranges, square, 2, resolution=25)
        assert report.fully_covered
        assert report.min_coverage == 2
        assert report.mean_coverage == pytest.approx(2.0)

    def test_partial_coverage_fraction(self, square):
        fraction = coverage_fraction([(0.0, 0.0)], [0.5], square, 1, resolution=41)
        # A quarter disk of radius 0.5 covers ~pi/16 of the unit square.
        assert fraction == pytest.approx(math.pi / 16.0, abs=0.03)

    def test_invalid_k_rejected(self, square):
        with pytest.raises(ValueError):
            evaluate_coverage([(0.5, 0.5)], [1.0], square, 0)

    def test_report_metadata(self, square):
        report = evaluate_coverage([(0.5, 0.5)], [1.0], square, 1, resolution=21)
        assert report.samples == 441
        assert report.grid_spacing == pytest.approx(0.05)


class TestEnergyReport:
    def test_report_values(self):
        report = energy_report([1.0, 2.0])
        assert report.max_load == pytest.approx(4 * math.pi)
        assert report.min_load == pytest.approx(math.pi)
        assert report.total_load == pytest.approx(5 * math.pi)
        assert report.mean_load == pytest.approx(2.5 * math.pi)
        assert report.imbalance == pytest.approx(4.0)
        assert report.node_count == 2

    def test_empty_report(self):
        report = energy_report([])
        assert report.total_load == 0.0 and report.node_count == 0


class TestFairness:
    def test_min_max_ratio(self):
        assert min_max_ratio([2.0, 2.0]) == 1.0
        assert min_max_ratio([1.0, 2.0]) == 0.5
        assert min_max_ratio([]) == 1.0
        assert min_max_ratio([0.0, 1.0]) == 0.0
        assert min_max_ratio([0.0, 0.0]) == 1.0

    def test_jain_index(self):
        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_range_spread(self):
        assert range_spread([0.2, 0.5, 0.3]) == pytest.approx(0.3)
        assert range_spread([]) == 0.0


class TestConnectivity:
    def test_build_graph_edges(self):
        graph = build_graph([(0.0, 0.0), (0.1, 0.0), (1.0, 1.0)], comm_range=0.2)
        assert graph.has_edge(0, 1) and not graph.has_edge(0, 2)

    def test_build_graph_validation(self):
        with pytest.raises(ValueError):
            build_graph([(0.0, 0.0)], comm_range=0.0)

    def test_report_connected(self):
        positions = [(0.0, 0.0), (0.1, 0.0), (0.2, 0.0)]
        report = connectivity_report(positions, comm_range=0.15)
        assert report.connected
        assert report.components == 1
        assert report.min_degree == 1
        assert report.node_connectivity >= 1

    def test_report_disconnected(self):
        report = connectivity_report([(0.0, 0.0), (1.0, 1.0)], comm_range=0.1)
        assert not report.connected
        assert report.components == 2
        assert report.node_connectivity == 0

    def test_report_empty(self):
        report = connectivity_report([], comm_range=0.1)
        assert report.connected and report.components == 0


class TestTraces:
    def test_monotone_nonincreasing(self):
        assert is_monotone_nonincreasing([3.0, 2.0, 2.0, 1.0])
        assert not is_monotone_nonincreasing([3.0, 2.0, 2.5])
        assert is_monotone_nonincreasing([3.0, 3.0 + 1e-12])
        assert is_monotone_nonincreasing([])

    def test_rounds_to_threshold(self):
        assert rounds_to_threshold([5.0, 3.0, 1.0], 2.0) == 2
        assert rounds_to_threshold([5.0, 3.0], 1.0) is None
        assert rounds_to_threshold([], 1.0) is None

    def test_relative_gap(self):
        assert relative_gap([1.0, 0.5], [0.1, 0.4]) == pytest.approx(0.2)
        assert relative_gap([], []) == 0.0
        assert relative_gap([0.0], [0.0]) == 0.0
