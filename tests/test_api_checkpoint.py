"""Checkpoint/resume determinism: a restored run is bitwise-identical.

The acceptance bar of the API redesign: checkpoint at round r, restore
(through actual JSON), run to convergence, and every output — positions,
sensing ranges, full history, communication totals — equals the
uninterrupted run exactly (``==`` on floats, no tolerances), across both
round engines and both region back-ends, for centralized and distributed
(lossy, failing) runs alike.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.api import Simulation, SimulationCheckpoint
from repro.api.checkpoint import checkpoint_path_for
from repro.core.config import LaacadConfig
from repro.network.network import SensorNetwork
from repro.runtime.failures import FailureInjector
from repro.scenarios import SweepRunner, make_scenario


def _assert_bitwise_equal(resumed, baseline):
    assert resumed.final_positions == baseline.final_positions
    assert resumed.sensing_ranges == baseline.sensing_ranges
    assert resumed.converged == baseline.converged
    assert resumed.rounds_executed == baseline.rounds_executed
    assert [dataclasses.asdict(s) for s in resumed.history] == [
        dataclasses.asdict(s) for s in baseline.history
    ]
    assert resumed.position_history == baseline.position_history
    assert resumed.communication == baseline.communication
    assert resumed.killed_nodes == baseline.killed_nodes


class TestCentralizedResumeDeterminism:
    @pytest.mark.parametrize("engine", ["legacy", "batched"])
    @pytest.mark.parametrize("use_localized", [False, True])
    def test_mid_run_restore_is_bitwise_identical(self, square, engine, use_localized):
        config = LaacadConfig(
            k=2,
            epsilon=2e-3,
            max_rounds=18,
            engine=engine,
            use_localized=use_localized,
            record_positions=True,
        )

        def session():
            return Simulation(
                network=SensorNetwork.from_corner_cluster(
                    square, 10, comm_range=0.3, rng=np.random.default_rng(3)
                ),
                config=config,
            )

        baseline = session().run()
        interrupted = session()
        interrupted.run(until=5)
        # The checkpoint crosses a real JSON round-trip, like a file would.
        payload = json.loads(json.dumps(interrupted.checkpoint().to_dict()))
        resumed = Simulation.restore(payload).run()
        _assert_bitwise_equal(resumed, baseline)

    def test_restore_at_round_cap_matches(self, square):
        config = LaacadConfig(k=2, epsilon=1e-6, max_rounds=6)

        def session():
            return Simulation(
                network=SensorNetwork.from_corner_cluster(
                    square, 8, comm_range=0.3, rng=np.random.default_rng(4)
                ),
                config=config,
            )

        baseline = session().run()
        assert not baseline.converged  # the cap binds
        interrupted = session()
        interrupted.run(until=3)
        resumed = Simulation.restore(interrupted.checkpoint().to_dict()).run()
        _assert_bitwise_equal(resumed, baseline)


class TestDistributedResumeDeterminism:
    def _session(self, square):
        return Simulation(
            network=SensorNetwork.from_random(
                square, 10, comm_range=0.4, rng=np.random.default_rng(7)
            ),
            config=LaacadConfig(k=1, epsilon=3e-3, max_rounds=16),
            kind="distributed",
            drop_probability=0.05,
            failure_injector=FailureInjector(
                scheduled={3: [0]}, random_failure_rate=0.01
            ),
        )

    def test_rng_streams_survive_the_checkpoint(self, square):
        baseline = self._session(square).run()
        interrupted = self._session(square)
        interrupted.run(until=6)
        payload = json.loads(json.dumps(interrupted.checkpoint().to_dict()))
        resumed = Simulation.restore(payload).run()
        _assert_bitwise_equal(resumed, baseline)

    def test_killed_list_restored(self, square):
        interrupted = self._session(square)
        interrupted.run(until=6)
        restored = Simulation.restore(interrupted.checkpoint().to_dict())
        assert 0 in restored.deployer.failure_injector.killed
        assert not restored.network.node(0).alive


class TestCheckpointFiles:
    def test_save_and_restore_from_path(self, square, tmp_path):
        sim = Simulation(
            network=SensorNetwork.from_corner_cluster(
                square, 8, comm_range=0.3, rng=np.random.default_rng(5)
            ),
            config=LaacadConfig(k=1, epsilon=2e-3, max_rounds=20),
        )
        sim.run(until=3)
        path = sim.save_checkpoint(tmp_path / "nested" / "run.ckpt.json")
        assert path.exists()
        loaded = SimulationCheckpoint.load(path)
        assert loaded.kind == "laacad"
        assert loaded.rounds_executed == 3
        resumed = Simulation.restore(path)
        assert resumed.state.rounds_executed == 3

    def test_completed_checkpoint_carries_result(self, square):
        sim = Simulation(
            network=SensorNetwork.from_corner_cluster(
                square, 8, comm_range=0.3, rng=np.random.default_rng(5)
            ),
            config=LaacadConfig(k=1, epsilon=2e-3, max_rounds=40),
        )
        result = sim.run()
        restored = Simulation.restore(json.loads(json.dumps(sim.checkpoint().to_dict())))
        assert restored.done
        assert restored.result() == result

    def test_done_checkpoint_finalizes_before_snapshotting_nodes(self, square):
        # Stepping to completion without calling result() must not leak
        # zero sensing ranges into the checkpoint's node snapshot.
        sim = Simulation(
            network=SensorNetwork.from_corner_cluster(
                square, 8, comm_range=0.3, rng=np.random.default_rng(5)
            ),
            config=LaacadConfig(k=1, epsilon=2e-3, max_rounds=40),
        )
        while not sim.done:
            sim.step()
        restored = Simulation.restore(json.loads(json.dumps(sim.checkpoint().to_dict())))
        assert restored.network.sensing_ranges() == restored.result().sensing_ranges
        assert all(r > 0 for r in restored.network.sensing_ranges())

    def test_non_default_bit_generator_survives_checkpoint(self, square):
        def session():
            return Simulation(
                network=SensorNetwork.from_random(
                    square, 8, comm_range=0.4, rng=np.random.default_rng(9)
                ),
                config=LaacadConfig(k=1, epsilon=3e-3, max_rounds=12),
                kind="distributed",
                drop_probability=0.1,
                rng=np.random.Generator(np.random.Philox(42)),
            )

        baseline = session().run()
        interrupted = session()
        interrupted.run(until=4)
        payload = json.loads(json.dumps(interrupted.checkpoint().to_dict()))
        resumed = Simulation.restore(payload).run()
        _assert_bitwise_equal(resumed, baseline)

    def test_unknown_checkpoint_version_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_version"):
            SimulationCheckpoint.from_dict({"checkpoint_version": 999})

    def test_spec_round_trips_through_checkpoint(self):
        spec = make_scenario("corner_cluster", node_count=8, k=1, max_rounds=10)
        sim = Simulation.from_spec(spec)
        sim.run(until=2)
        restored = Simulation.restore(sim.checkpoint().to_dict())
        assert restored.spec == spec

    def test_resume_or_start_ignores_foreign_checkpoint(self, tmp_path):
        spec_a = make_scenario("corner_cluster", node_count=8, k=1, max_rounds=10)
        spec_b = spec_a.replace(seed=spec_a.seed + 1)
        sim = Simulation.from_spec(spec_a)
        sim.run(until=2)
        path = tmp_path / "cell.ckpt.json"
        sim.save_checkpoint(path)
        resumed = Simulation.resume_or_start(spec_a, path)
        assert resumed.state.rounds_executed == 2
        with pytest.warns(UserWarning, match="ignoring checkpoint"):
            fresh = Simulation.resume_or_start(spec_b, path)
        assert fresh.state.rounds_executed == 0


class TestSweepCheckpointing:
    def _spec(self):
        return make_scenario("corner_cluster", node_count=8, k=1, max_rounds=12)

    def test_interrupted_cell_resumes_from_checkpoint_dir(self, tmp_path):
        spec = self._spec()
        baseline = SweepRunner().run([spec]).results[0]

        # Simulate preemption: a mid-run checkpoint exists for the cell.
        checkpoint_dir = tmp_path / "ckpt"
        interrupted = Simulation.from_spec(spec)
        interrupted.run(until=4)
        interrupted.save_checkpoint(checkpoint_path_for(checkpoint_dir, spec.digest()))

        runner = SweepRunner(
            cache_dir=tmp_path / "cache",
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=3,
        )
        report = runner.run([spec])
        assert report.misses == 1
        assert report.results[0] == baseline
        # The finished cell cleans its checkpoint up.
        assert not checkpoint_path_for(checkpoint_dir, spec.digest()).exists()

    def test_checkpointed_sweep_equals_plain_sweep(self, tmp_path):
        spec = self._spec()
        plain = SweepRunner().run([spec]).results[0]
        checkpointed = SweepRunner(
            checkpoint_dir=tmp_path / "ckpt", checkpoint_every=2
        ).run([spec]).results[0]
        assert checkpointed == plain

    def test_checkpoint_env_restored_after_run(self, tmp_path, monkeypatch):
        from repro.api.checkpoint import CHECKPOINT_DIR_ENV, CHECKPOINT_EVERY_ENV

        monkeypatch.delenv(CHECKPOINT_DIR_ENV, raising=False)
        monkeypatch.delenv(CHECKPOINT_EVERY_ENV, raising=False)
        SweepRunner(checkpoint_dir=tmp_path, checkpoint_every=5).run([self._spec()])
        import os

        assert CHECKPOINT_DIR_ENV not in os.environ
        assert CHECKPOINT_EVERY_ENV not in os.environ


class TestCliCheckpointFlags:
    def test_resume_from_file_completes_the_run(self, tmp_path, capsys):
        from repro.experiments.cli import main

        spec = make_scenario("corner_cluster", node_count=8, k=1, max_rounds=12)
        baseline = Simulation.from_spec(spec).run()
        sim = Simulation.from_spec(spec)
        sim.run(until=4)
        path = tmp_path / "cell.ckpt.json"
        sim.save_checkpoint(path)

        out_dir = tmp_path / "results"
        code = main(["run", "--resume-from", str(path), "--output-dir", str(out_dir)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "resuming laacad session" in captured
        result_files = list(out_dir.glob("*.result.json"))
        assert len(result_files) == 1
        payload = json.loads(result_files[0].read_text())
        assert payload["final_positions"] == baseline.to_dict()["final_positions"]

    def test_resume_from_missing_path_errors(self, tmp_path):
        from repro.experiments.cli import main

        code = main(
            ["run", "fig2_rings", "--resume-from", str(tmp_path / "nope"), "--no-files"]
        )
        assert code == 2

    def test_run_without_experiment_or_resume_errors(self):
        from repro.experiments.cli import main

        assert main(["run", "--no-files"]) == 2

    def test_checkpoint_flags_thread_into_environment(self, tmp_path, monkeypatch):
        from repro.api.checkpoint import CHECKPOINT_DIR_ENV, CHECKPOINT_EVERY_ENV
        from repro.experiments.cli import _apply_sweep_options, build_parser

        monkeypatch.delenv(CHECKPOINT_DIR_ENV, raising=False)
        monkeypatch.delenv(CHECKPOINT_EVERY_ENV, raising=False)
        args = build_parser().parse_args(
            [
                "run",
                "fig2_rings",
                "--checkpoint-every",
                "7",
                "--checkpoint-dir",
                str(tmp_path / "ck"),
            ]
        )
        _apply_sweep_options(args)
        import os

        assert os.environ[CHECKPOINT_EVERY_ENV] == "7"
        assert os.environ[CHECKPOINT_DIR_ENV] == str(tmp_path / "ck")
        monkeypatch.delenv(CHECKPOINT_DIR_ENV, raising=False)
        monkeypatch.delenv(CHECKPOINT_EVERY_ENV, raising=False)
