"""The legacy entry points are shims: they warn and delegate to repro.api.

The tier-1 suite runs with ``filterwarnings = error:repro\\.`` (see
pyproject.toml), so any *internal* code path still constructing the old
runners fails loudly; these tests are the only place the shims are
exercised, under ``pytest.warns``.
"""

import numpy as np
import pytest

from repro.api import Simulation, deploy
from repro.core.config import LaacadConfig
from repro.network.network import SensorNetwork
from repro.scenarios import make_scenario


def _net(square, seed=3):
    return SensorNetwork.from_corner_cluster(
        square, 10, comm_range=0.3, rng=np.random.default_rng(seed)
    )


class TestCentralizedShims:
    def test_laacad_runner_warns_and_matches_api(self, square, fast_config):
        from repro.core.laacad import LaacadRunner

        baseline = Simulation(network=_net(square), config=fast_config).run()
        with pytest.warns(DeprecationWarning, match="repro.core.laacad.LaacadRunner"):
            runner = LaacadRunner(_net(square), fast_config)
        shimmed = runner.run()
        assert shimmed.final_positions == baseline.final_positions
        assert shimmed.sensing_ranges == baseline.sensing_ranges
        assert shimmed.history == baseline.history

    def test_runner_exposes_legacy_attributes(self, square, fast_config):
        from repro.core.laacad import LaacadRunner
        from repro.engine import BatchedRoundEngine

        net = _net(square)
        with pytest.warns(DeprecationWarning):
            runner = LaacadRunner(net, fast_config)
        assert runner.network is net
        assert runner.config is fast_config
        assert isinstance(runner.engine, BatchedRoundEngine)

    def test_run_laacad_warns_and_matches_deploy(self, square):
        from repro.core.laacad import run_laacad

        positions = square.random_points(8, rng=np.random.default_rng(1))
        config = LaacadConfig(k=1, max_rounds=15)
        baseline = deploy(square, positions, config)
        with pytest.warns(DeprecationWarning, match="run_laacad is deprecated"):
            shimmed = run_laacad(square, positions, config)
        assert shimmed.final_positions == baseline.final_positions

    def test_laacad_result_is_simulation_result(self):
        from repro.api import SimulationResult
        from repro.core.laacad import LaacadResult

        assert LaacadResult is SimulationResult

    def test_spec_build_runner_goes_through_the_shim(self):
        spec = make_scenario("corner_cluster", node_count=8, k=1, max_rounds=5)
        with pytest.warns(DeprecationWarning, match="LaacadRunner"):
            runner = spec.build_runner()
        assert runner.run().rounds_executed >= 1


class TestDistributedShim:
    def test_runner_warns_and_matches_api(self, square):
        from repro.runtime.protocol import DistributedLaacadRunner

        config = LaacadConfig(k=1, epsilon=3e-3, max_rounds=10)
        baseline = Simulation(
            network=_net(square, seed=5), config=config, kind="distributed"
        ).run()
        with pytest.warns(
            DeprecationWarning, match="DistributedLaacadRunner is deprecated"
        ):
            runner = DistributedLaacadRunner(_net(square, seed=5), config)
        result, stats = runner.run()
        assert result.final_positions == baseline.final_positions
        assert stats.messages == baseline.communication.messages
        assert runner.scheduler is runner._deployer.scheduler
        assert set(runner.agents) == set(range(10))

    def test_spec_build_distributed_runner_goes_through_the_shim(self):
        spec = make_scenario("node_failures", node_count=8, k=1, max_rounds=5)
        with pytest.warns(DeprecationWarning, match="DistributedLaacadRunner"):
            runner = spec.build_distributed_runner()
        result, stats = runner.run()
        assert stats.messages > 0
        assert result.kind == "distributed"
