"""Lossless result serialization: ``from_dict(to_dict(x)) == x`` for every run kind."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    CommunicationSummary,
    DistributedRoundStats,
    RoundStats,
    Simulation,
    SimulationResult,
)
from repro.api.results import round_stats_from_dict
from repro.core.config import LaacadConfig
from repro.network.network import SensorNetwork
from repro.scenarios import make_scenario


def _roundtrip(result: SimulationResult) -> None:
    payload = result.to_dict()
    assert SimulationResult.from_dict(payload) == result
    # ... and through actual JSON text (what the sweep cache stores).
    assert SimulationResult.from_dict(json.loads(json.dumps(payload))) == result


class TestEndToEndRoundTrips:
    def test_centralized_with_position_history(self, square):
        net = SensorNetwork.from_corner_cluster(
            square, 10, comm_range=0.3, rng=np.random.default_rng(2)
        )
        config = LaacadConfig(k=2, epsilon=2e-3, max_rounds=12, record_positions=True)
        result = Simulation(network=net, config=config).run()
        assert result.position_history is not None
        _roundtrip(result)

    @pytest.mark.parametrize("use_localized", [False, True])
    def test_centralized_both_region_backends(self, square, use_localized):
        net = SensorNetwork.from_random(
            square, 8, comm_range=0.35, rng=np.random.default_rng(5)
        )
        config = LaacadConfig(
            k=1, epsilon=2e-3, max_rounds=6, use_localized=use_localized
        )
        result = Simulation(network=net, config=config).run()
        if use_localized:
            assert any(s.max_ring_hops > 0 for s in result.history)
        _roundtrip(result)

    def test_distributed_with_failures_and_drops(self):
        spec = make_scenario(
            "node_failures", node_count=12, k=2, max_rounds=15
        ).replace(drop_probability=0.02)
        result = Simulation.from_spec(spec).run()
        assert result.kind == "distributed"
        assert result.communication is not None
        assert result.killed_nodes
        assert all(isinstance(s, DistributedRoundStats) for s in result.history)
        _roundtrip(result)

    def test_static(self):
        result = Simulation.from_spec(
            make_scenario("static_blueprint", node_count=6, k=1)
        ).run()
        _roundtrip(result)


class TestPayloadCompatibility:
    """The unified serializer keeps the historical pipeline payload shape."""

    LEGACY_KEYS = {
        "node_count",
        "converged",
        "rounds_executed",
        "initial_positions",
        "final_positions",
        "sensing_ranges",
        "max_sensing_range",
        "min_sensing_range",
        "total_movement",
        "history",
    }

    def test_laacad_payload_superset(self):
        payload = make_scenario("open_field", node_count=6, k=1, max_rounds=4).run()
        assert self.LEGACY_KEYS <= set(payload)

    def test_distributed_payload_superset(self):
        payload = make_scenario("node_failures", node_count=8, k=1, max_rounds=5).run()
        assert self.LEGACY_KEYS | {"communication", "killed_nodes"} <= set(payload)
        assert set(payload["communication"]) == {
            "messages",
            "transmissions",
            "bytes_sent",
            "dropped",
        }

    def test_derived_scalars_consistent(self):
        payload = make_scenario("open_field", node_count=6, k=1, max_rounds=4).run()
        rebuilt = SimulationResult.from_dict(payload)
        assert payload["max_sensing_range"] == rebuilt.max_sensing_range
        assert payload["min_sensing_range"] == rebuilt.min_sensing_range
        assert payload["total_movement"] == rebuilt.total_distance_traveled()
        assert payload["node_count"] == len(rebuilt.final_positions)

    def test_unknown_schema_version_rejected(self):
        payload = make_scenario("open_field", node_count=6, k=1, max_rounds=4).run()
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            SimulationResult.from_dict(payload)


# ----------------------------------------------------------------------
# Property tests: arbitrary histories and positions survive the trip
# ----------------------------------------------------------------------
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
points = st.tuples(finite, finite)


def stats_strategy():
    base = dict(
        round_index=st.integers(0, 10_000),
        max_circumradius=finite,
        min_circumradius=finite,
        max_range_from_position=finite,
        min_range_from_position=finite,
        max_displacement=finite,
        mean_displacement=finite,
        max_ring_hops=st.integers(0, 100),
    )
    plain = st.builds(RoundStats, **base)
    distributed = st.builds(
        DistributedRoundStats,
        messages=st.integers(0, 10**9),
        transmissions=st.integers(0, 10**9),
        bytes_sent=st.integers(0, 10**12),
        **base,
    )
    return st.one_of(plain, distributed)


@settings(max_examples=60, deadline=None)
@given(stats=stats_strategy())
def test_round_stats_roundtrip_preserves_type_and_values(stats):
    import dataclasses

    rebuilt = round_stats_from_dict(json.loads(json.dumps(dataclasses.asdict(stats))))
    assert type(rebuilt) is type(stats)
    assert rebuilt == stats


@settings(max_examples=25, deadline=None)
@given(
    initial=st.lists(points, min_size=1, max_size=6),
    history=st.lists(stats_strategy(), max_size=4),
    ranges=st.lists(finite, min_size=1, max_size=6),
    converged=st.booleans(),
    rounds=st.integers(0, 500),
    kind=st.sampled_from(["laacad", "distributed", "static"]),
    comm=st.one_of(
        st.none(),
        st.builds(
            CommunicationSummary,
            messages=st.integers(0, 10**9),
            transmissions=st.integers(0, 10**9),
            bytes_sent=st.integers(0, 10**12),
            dropped=st.integers(0, 10**9),
        ),
    ),
    killed=st.one_of(st.none(), st.lists(st.integers(0, 100), max_size=5)),
)
def test_simulation_result_roundtrip_property(
    initial, history, ranges, converged, rounds, kind, comm, killed
):
    result = SimulationResult(
        config=LaacadConfig(k=1, seed=3),
        initial_positions=initial,
        final_positions=list(reversed(initial)),
        sensing_ranges=ranges,
        converged=converged,
        rounds_executed=rounds,
        history=history,
        kind=kind,
        communication=comm,
        killed_nodes=killed,
    )
    payload = json.loads(json.dumps(result.to_dict()))
    assert SimulationResult.from_dict(payload) == result
